"""Legacy setup shim so ``pip install -e .`` works without network.

All metadata lives in ``pyproject.toml``; this file only exists so pip
takes the non-isolated build path (build isolation would try to download
setuptools, which offline environments cannot).
"""

from setuptools import setup

setup()
