"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one paper table or figure. The
rendered tables are printed through ``show`` (bypassing pytest capture so
they appear in ``pytest benchmarks/ --benchmark-only`` output) and also
appended to ``benchmarks/results.txt`` for later inspection.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture()
def show(capsys):
    """Print a rendered table through the capture barrier and log it."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
        with RESULTS_PATH.open("a") as fh:
            fh.write(text + "\n\n")

    return _show
