"""CI gate: compare a fresh kernel micro-bench against the baseline.

Usage::

    python benchmarks/bench_kernels_micro.py --json current.json
    python benchmarks/check_regression.py \
        benchmarks/BENCH_kernels.json current.json

Both inputs are ``bench-kernels/v1`` documents. The gate's policy
(documented in ``docs/benchmarks.md``) is deliberately
machine-portable: absolute times on a CI runner tell you little, but
the *ratio* between the two tiers measured back-to-back on the same
machine is stable, so the primary assertions are speedup-based:

* every kernel in the baseline must be measured in the current run
  (a kernel silently dropped from the bench is a gate bypass);
* ``gather_quantize_int8`` — the fused chokepoint the accelerator
  trainers ride — must keep a **hard >= 2.0x** speedup over the
  reference tier (the PR's acceptance floor, machine-independent);
* every kernel's speedup must stay within ``--speedup-slack`` (default
  0.6) of its baseline speedup — a fast-tier regression shows up as
  the ratio collapsing even when both absolute times drift;
* every kernel's absolute fast-tier time must stay under
  ``--time-slack`` (default 3.0) times the baseline's — a generous
  cross-machine allowance that still catches order-of-magnitude
  accidents (e.g. a fallback to the reference implementation).

Exit status 0 when every check passes, 1 with a per-kernel report
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The kernels whose speedup has a hard floor regardless of baseline
#: (name -> minimum acceptable fast-vs-reference ratio).
HARD_FLOORS = {"gather_quantize_int8": 2.0}


def compare(baseline: dict, current: dict, *,
            speedup_slack: float = 0.6,
            time_slack: float = 3.0) -> list[str]:
    """All gate violations of ``current`` vs ``baseline`` (empty list
    when the gate passes)."""
    problems: list[str] = []
    for doc, label in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema") != "bench-kernels/v1":
            problems.append(
                f"{label}: unknown schema {doc.get('schema')!r} "
                "(expected bench-kernels/v1)")
    if problems:
        return problems

    base_kernels = baseline["kernels"]
    cur_kernels = current["kernels"]
    for name, base in base_kernels.items():
        cur = cur_kernels.get(name)
        if cur is None:
            problems.append(f"{name}: missing from the current run "
                            "(baseline kernels must all be measured)")
            continue
        floor = HARD_FLOORS.get(name)
        if floor is not None and cur["speedup"] < floor:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x below the "
                f"hard floor {floor:.1f}x")
        want = base["speedup"] * speedup_slack
        if cur["speedup"] < want:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x below "
                f"{speedup_slack:.0%} of baseline "
                f"{base['speedup']:.2f}x")
        limit = base["fast_s"] * time_slack
        if cur["fast_s"] > limit:
            problems.append(
                f"{name}: fast tier {cur['fast_s'] * 1e3:.3f} ms "
                f"exceeds {time_slack:.1f}x baseline "
                f"{base['fast_s'] * 1e3:.3f} ms")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a bench-kernels/v1 run against the committed "
                    "baseline (see docs/benchmarks.md for the policy)")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--speedup-slack", type=float, default=0.6,
                        help="minimum fraction of the baseline speedup "
                             "each kernel must retain (default 0.6)")
    parser.add_argument("--time-slack", type=float, default=3.0,
                        help="maximum multiple of the baseline "
                             "fast-tier time allowed (default 3.0)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    problems = compare(baseline, current,
                       speedup_slack=args.speedup_slack,
                       time_slack=args.time_slack)
    for name in sorted(baseline.get("kernels", {})):
        cur = current.get("kernels", {}).get(name)
        if cur:
            print(f"{name:>22}: fast {cur['fast_s'] * 1e3:8.3f} ms  "
                  f"speedup {cur['speedup']:5.2f}x")
    if problems:
        print("\nkernel-bench gate FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("\nkernel-bench gate passed "
          f"({len(baseline['kernels'])} kernels)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
