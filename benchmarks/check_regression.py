"""CI gate: compare a fresh bench run against its committed baseline.

Usage::

    python benchmarks/bench_kernels_micro.py --json current.json
    python benchmarks/check_regression.py \
        benchmarks/BENCH_kernels.json current.json

    python benchmarks/bench_serving.py --json current.json
    python benchmarks/check_regression.py \
        benchmarks/BENCH_serving.json current.json

The gate dispatches on the document's ``schema`` field; both inputs
must carry the same one. Two schemas are gated today.

``bench-kernels/v1``. The policy (documented in
``docs/benchmarks.md``) is deliberately machine-portable: absolute
times on a CI runner tell you little, but the *ratio* between the two
tiers measured back-to-back on the same machine is stable, so the
primary assertions are speedup-based:

* every kernel in the baseline must be measured in the current run
  (a kernel silently dropped from the bench is a gate bypass);
* ``gather_quantize_int8`` — the fused chokepoint the accelerator
  trainers ride — must keep a **hard >= 2.0x** speedup over the
  reference tier (the PR's acceptance floor, machine-independent);
* every kernel's speedup must stay within ``--speedup-slack`` (default
  0.6) of its baseline speedup — a fast-tier regression shows up as
  the ratio collapsing even when both absolute times drift;
* every kernel's absolute fast-tier time must stay under
  ``--time-slack`` (default 3.0) times the baseline's — a generous
  cross-machine allowance that still catches order-of-magnitude
  accidents (e.g. a fallback to the reference implementation).

``bench-serving/v1``. Again machine-portable by construction: the
latency budget, the coalesce window, and the admission bound are all
*configured*, so "accepted p99 within the budget" holds on any
machine unless the serving plane itself regresses. The assertions:

* every baseline scenario must be measured in the current run;
* every scenario's accepted p99 must stay within the document's
  configured latency budget (hard, machine-independent);
* every scenario must complete every request it accepted, and shed
  only typed reasons;
* scenarios the baseline sheds in (rate > 5%) must still shed in the
  current run — an overload scenario that stops shedding means the
  bounded queue or credit gate silently stopped gating;
* every scenario's completed-request throughput must retain
  ``--throughput-slack`` (default 0.2) of the baseline's — generous
  enough for any CI runner, tight enough to catch the serving loop
  degrading to one request per batch.

Exit status 0 when every check passes, 1 with a report otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The kernels whose speedup has a hard floor regardless of baseline
#: (name -> minimum acceptable fast-vs-reference ratio).
HARD_FLOORS = {"gather_quantize_int8": 2.0}


def compare(baseline: dict, current: dict, *,
            speedup_slack: float = 0.6,
            time_slack: float = 3.0) -> list[str]:
    """All gate violations of ``current`` vs ``baseline`` (empty list
    when the gate passes)."""
    problems: list[str] = []
    for doc, label in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema") != "bench-kernels/v1":
            problems.append(
                f"{label}: unknown schema {doc.get('schema')!r} "
                "(expected bench-kernels/v1)")
    if problems:
        return problems

    base_kernels = baseline["kernels"]
    cur_kernels = current["kernels"]
    for name, base in base_kernels.items():
        cur = cur_kernels.get(name)
        if cur is None:
            problems.append(f"{name}: missing from the current run "
                            "(baseline kernels must all be measured)")
            continue
        floor = HARD_FLOORS.get(name)
        if floor is not None and cur["speedup"] < floor:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x below the "
                f"hard floor {floor:.1f}x")
        want = base["speedup"] * speedup_slack
        if cur["speedup"] < want:
            problems.append(
                f"{name}: speedup {cur['speedup']:.2f}x below "
                f"{speedup_slack:.0%} of baseline "
                f"{base['speedup']:.2f}x")
        limit = base["fast_s"] * time_slack
        if cur["fast_s"] > limit:
            problems.append(
                f"{name}: fast tier {cur['fast_s'] * 1e3:.3f} ms "
                f"exceeds {time_slack:.1f}x baseline "
                f"{base['fast_s'] * 1e3:.3f} ms")
    return problems


#: Shed reasons the serving plane is allowed to emit (mirrors
#: ``repro.serving.SHED_REASONS``; duplicated so the gate stays a
#: dependency-free script).
SERVING_SHED_REASONS = ("queue_full", "no_credit", "closed")

#: Baseline shed rate above which a scenario counts as an overload
#: scenario whose shedding must reproduce.
SERVING_SHED_FLOOR = 0.05


def compare_serving(baseline: dict, current: dict, *,
                    throughput_slack: float = 0.2) -> list[str]:
    """All serving-gate violations of ``current`` vs ``baseline``
    (empty list when the gate passes)."""
    problems: list[str] = []
    for doc, label in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema") != "bench-serving/v1":
            problems.append(
                f"{label}: unknown schema {doc.get('schema')!r} "
                "(expected bench-serving/v1)")
    if problems:
        return problems

    budget_ms = current["latency_budget_s"] * 1e3
    for name, base in baseline["scenarios"].items():
        cur = current["scenarios"].get(name)
        if cur is None:
            problems.append(f"{name}: missing from the current run "
                            "(baseline scenarios must all be measured)")
            continue
        if cur["latency_p99_ms"] > budget_ms:
            problems.append(
                f"{name}: accepted p99 {cur['latency_p99_ms']:.1f} ms "
                f"exceeds the {budget_ms:.0f} ms latency budget")
        if cur["completed"] != cur["accepted"]:
            problems.append(
                f"{name}: {cur['accepted'] - cur['completed']} "
                "accepted requests never completed")
        untyped = sorted(set(cur["shed"]) - set(SERVING_SHED_REASONS))
        if untyped:
            problems.append(f"{name}: untyped shed reasons {untyped}")
        if base["shed_rate"] > SERVING_SHED_FLOOR \
                and sum(cur["shed"].values()) == 0:
            problems.append(
                f"{name}: baseline sheds {base['shed_rate']:.0%} but "
                "the current run sheds nothing — the admission/credit "
                "gate stopped gating")
        want = base["throughput_rps"] * throughput_slack
        if cur["throughput_rps"] < want:
            problems.append(
                f"{name}: throughput {cur['throughput_rps']:.0f} rps "
                f"below {throughput_slack:.0%} of baseline "
                f"{base['throughput_rps']:.0f} rps")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a bench JSON run (bench-kernels/v1 or "
                    "bench-serving/v1) against the committed baseline "
                    "(see docs/benchmarks.md for the policy)")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--speedup-slack", type=float, default=0.6,
                        help="minimum fraction of the baseline speedup "
                             "each kernel must retain (default 0.6)")
    parser.add_argument("--time-slack", type=float, default=3.0,
                        help="maximum multiple of the baseline "
                             "fast-tier time allowed (default 3.0)")
    parser.add_argument("--throughput-slack", type=float, default=0.2,
                        help="minimum fraction of the baseline serving "
                             "throughput each scenario must retain "
                             "(default 0.2)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    schema = baseline.get("schema")
    if schema == "bench-serving/v1":
        problems = compare_serving(
            baseline, current, throughput_slack=args.throughput_slack)
        for name in sorted(baseline.get("scenarios", {})):
            cur = current.get("scenarios", {}).get(name)
            if cur:
                shed = sum(cur["shed"].values())
                print(f"{name:>10}: p99 {cur['latency_p99_ms']:7.2f} ms"
                      f"  {cur['throughput_rps']:7.0f} rps"
                      f"  shed {shed}")
        label = "serving-bench"
        count = f"{len(baseline.get('scenarios', {}))} scenarios"
    else:
        problems = compare(baseline, current,
                           speedup_slack=args.speedup_slack,
                           time_slack=args.time_slack)
        for name in sorted(baseline.get("kernels", {})):
            cur = current.get("kernels", {}).get(name)
            if cur:
                print(f"{name:>22}: fast {cur['fast_s'] * 1e3:8.3f} ms"
                      f"  speedup {cur['speedup']:5.2f}x")
        label = "kernel-bench"
        count = f"{len(baseline.get('kernels', {}))} kernels"
    if problems:
        print(f"\n{label} gate FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(f"\n{label} gate passed ({count})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
