"""Micro-benchmarks of the hot numeric paths.

These are genuine pytest-benchmark measurements of the library's own
compute kernels (sampling, aggregation, forward/backward) — the
quantities that bound functional-mode throughput of the reproduction
itself.
"""

import numpy as np
import pytest

from repro.config import layer_dims
from repro.graph.datasets import load_dataset
from repro.nn.aggregators import SparseAggregator, segment_sum_aggregate
from repro.nn.loss import softmax_cross_entropy
from repro.nn.models import build_model
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture(scope="module")
def ds():
    return load_dataset("ogbn-products", scale=1 / 512, seed=0)


@pytest.fixture(scope="module")
def sampler(ds):
    return NeighborSampler(ds.graph, np.arange(ds.graph.num_vertices),
                           (15, 10), ds.spec.feature_dim, seed=1)


@pytest.fixture(scope="module")
def batch(sampler):
    return sampler.sample(np.arange(512))


def test_bench_neighbor_sampling(benchmark, sampler):
    rng = np.random.default_rng(0)

    def draw():
        targets = rng.choice(4000, size=512, replace=False)
        return sampler.sample(targets)

    mb = benchmark(draw)
    assert mb.targets.size == 512


def test_bench_sparse_aggregation(benchmark, batch):
    blk = batch.blocks[0]
    h = np.random.default_rng(1).standard_normal((blk.num_src, 100))
    agg = SparseAggregator(blk)
    out = benchmark(lambda: agg.forward(h))
    assert out.shape == (blk.num_dst, 100)


def test_bench_segment_sum_path(benchmark, batch):
    blk = batch.blocks[0]
    h = np.random.default_rng(1).standard_normal((blk.num_src, 100))
    out = benchmark(lambda: segment_sum_aggregate(blk, h))
    assert out.shape == (blk.num_dst, 100)


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
def test_bench_forward_backward(benchmark, ds, batch, model_name):
    dims = layer_dims(ds.spec.feature_dim, 128, ds.spec.num_classes, 2)
    model = build_model(model_name, dims, seed=0)
    x0 = ds.features[batch.input_nodes].astype(np.float64)
    labels = ds.labels[batch.targets]
    deg = ds.graph.out_degrees

    def step():
        model.zero_grad()
        logits = model.forward(batch, x0, deg)
        loss, dl = softmax_cross_entropy(logits, labels)
        model.backward(dl)
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)
