"""Micro-benchmarks of the hot numeric paths.

These are genuine pytest-benchmark measurements of the library's own
compute kernels (sampling, aggregation, forward/backward) — the
quantities that bound functional-mode throughput of the reproduction
itself.

Since the kernel registry (:mod:`repro.kernels`) landed, the file also
measures the **fast tier against the reference oracle** on the same
products-scale fixture, two ways:

* pytest-benchmark tests parametrized by tier (interactive numbers);
* a script mode (``python benchmarks/bench_kernels_micro.py --json
  out.json``) that emits the machine-readable ``bench-kernels/v1``
  document the CI regression gate compares against the committed
  ``benchmarks/BENCH_kernels.json`` baseline via
  ``benchmarks/check_regression.py`` (policy in
  ``docs/benchmarks.md``).
"""

import time

import numpy as np
import pytest

from repro.config import layer_dims
from repro.graph.datasets import load_dataset
from repro.kernels import BufferPool, fast, reference
from repro.nn.aggregators import SparseAggregator, segment_sum_aggregate
from repro.nn.loss import softmax_cross_entropy
from repro.nn.models import build_model
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture(scope="module")
def ds():
    return load_dataset("ogbn-products", scale=1 / 512, seed=0)


@pytest.fixture(scope="module")
def sampler(ds):
    return NeighborSampler(ds.graph, np.arange(ds.graph.num_vertices),
                           (15, 10), ds.spec.feature_dim, seed=1)


@pytest.fixture(scope="module")
def batch(sampler):
    return sampler.sample(np.arange(512))


def test_bench_neighbor_sampling(benchmark, sampler):
    rng = np.random.default_rng(0)

    def draw():
        targets = rng.choice(4000, size=512, replace=False)
        return sampler.sample(targets)

    mb = benchmark(draw)
    assert mb.targets.size == 512


def test_bench_sparse_aggregation(benchmark, batch):
    blk = batch.blocks[0]
    h = np.random.default_rng(1).standard_normal((blk.num_src, 100))
    agg = SparseAggregator(blk)
    out = benchmark(lambda: agg.forward(h))
    assert out.shape == (blk.num_dst, 100)


def test_bench_segment_sum_path(benchmark, batch):
    blk = batch.blocks[0]
    h = np.random.default_rng(1).standard_normal((blk.num_src, 100))
    out = benchmark(lambda: segment_sum_aggregate(blk, h))
    assert out.shape == (blk.num_dst, 100)


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
def test_bench_forward_backward(benchmark, ds, batch, model_name):
    dims = layer_dims(ds.spec.feature_dim, 128, ds.spec.num_classes, 2)
    model = build_model(model_name, dims, seed=0)
    x0 = ds.features[batch.input_nodes].astype(np.float64)
    labels = ds.labels[batch.targets]
    deg = ds.graph.out_degrees

    def step():
        model.zero_grad()
        logits = model.forward(batch, x0, deg)
        loss, dl = softmax_cross_entropy(logits, labels)
        model.backward(dl)
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)


# ---------------------------------------------------------------------------
# Kernel tiers: fast vs the reference oracle (the regression-gated set)
# ---------------------------------------------------------------------------

def _kernel_cases(feats, idx, blk, h_src):
    """The gated kernel set: ``name -> (reference_fn, fast_fn)``.

    The fast variants run with a warm :class:`BufferPool`, which is the
    configuration the wired backends use in steady state — the
    comparison measures the deployed hot path, not a cold start.
    """
    pool = BufferPool()
    x64 = reference.gather(feats, idx)
    src, dst, num_dst = blk.src_local, blk.dst_local, blk.num_dst
    return {
        "gather": (
            lambda: reference.gather(feats, idx),
            lambda: fast.gather(feats, idx, pool=pool)),
        "gather_quantize_int8": (
            lambda: reference.gather_quantize(feats, idx, "int8"),
            lambda: fast.gather_quantize(feats, idx, "int8",
                                         pool=pool)),
        "gather_quantize_fp16": (
            lambda: reference.gather_quantize(feats, idx, "fp16"),
            lambda: fast.gather_quantize(feats, idx, "fp16",
                                         pool=pool)),
        "quantize_int8": (
            lambda: reference.quantize(x64, "int8"),
            lambda: fast.quantize(x64, "int8", pool=pool)),
        "segment_sum": (
            lambda: reference.segment_sum(src, dst, h_src, num_dst),
            lambda: fast.segment_sum(src, dst, h_src, num_dst)),
    }


@pytest.fixture(scope="module")
def kernel_cases(ds, batch):
    blk = batch.blocks[0]
    h = np.random.default_rng(2).standard_normal((blk.num_src, 100))
    return _kernel_cases(ds.features, batch.input_nodes, blk, h)


@pytest.mark.parametrize("tier", ["reference", "fast"])
def test_bench_gather_tier(benchmark, kernel_cases, tier):
    ref_fn, fast_fn = kernel_cases["gather"]
    fn = ref_fn if tier == "reference" else fast_fn
    out = benchmark(fn)
    np.testing.assert_array_equal(ref_fn(), out)


@pytest.mark.parametrize("tier", ["reference", "fast"])
def test_bench_fused_gather_quantize_int8_tier(benchmark, kernel_cases,
                                               tier):
    ref_fn, fast_fn = kernel_cases["gather_quantize_int8"]
    fn = ref_fn if tier == "reference" else fast_fn
    out = benchmark(fn)
    np.testing.assert_array_equal(ref_fn(), out)


@pytest.mark.parametrize("tier", ["reference", "fast"])
def test_bench_segment_sum_tier(benchmark, kernel_cases, tier):
    ref_fn, fast_fn = kernel_cases["segment_sum"]
    fn = ref_fn if tier == "reference" else fast_fn
    out = benchmark(fn)
    np.testing.assert_allclose(ref_fn(), out, rtol=1e-12, atol=1e-12)


# ---------------------------------------------------------------------------
# Script mode: the bench-kernels/v1 document the CI gate consumes
# ---------------------------------------------------------------------------

def _best_of(fn, number: int, repeats: int) -> float:
    """Per-call seconds, best of ``repeats`` timed loops of ``number``
    calls (min is the standard noise-robust micro-bench statistic)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def run_kernel_bench(number: int = 20, repeats: int = 5) -> dict:
    """Measure every gated kernel on the products-scale fixture and
    return the ``bench-kernels/v1`` document (schema in
    ``docs/benchmarks.md``)."""
    ds = load_dataset("ogbn-products", scale=1 / 512, seed=0)
    sampler = NeighborSampler(ds.graph,
                              np.arange(ds.graph.num_vertices),
                              (15, 10), ds.spec.feature_dim, seed=1)
    batch = sampler.sample(np.arange(512))
    blk = batch.blocks[0]
    h = np.random.default_rng(2).standard_normal((blk.num_src, 100))
    cases = _kernel_cases(ds.features, batch.input_nodes, blk, h)

    doc = {
        "schema": "bench-kernels/v1",
        "fixture": {
            "dataset": "ogbn-products",
            "scale": "1/512",
            "store_rows": int(ds.features.shape[0]),
            "store_cols": int(ds.features.shape[1]),
            "store_dtype": str(ds.features.dtype),
            "batch_rows": int(batch.input_nodes.size),
            "block_edges": int(blk.num_edges),
        },
        "timing": {"number": number, "repeats": repeats,
                   "statistic": "best-of"},
        "kernels": {},
    }
    for name, (ref_fn, fast_fn) in cases.items():
        ref_fn(), fast_fn()                      # warm caches + pool
        ref_s = _best_of(ref_fn, number, repeats)
        fast_s = _best_of(fast_fn, number, repeats)
        doc["kernels"][name] = {
            "reference_s": ref_s,
            "fast_s": fast_s,
            "speedup": ref_s / fast_s,
        }
    return doc


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Kernel-tier micro-bench (fast vs reference); "
                    "emits the bench-kernels/v1 JSON the CI gate "
                    "compares against benchmarks/BENCH_kernels.json")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the bench-kernels/v1 document here "
                             "(default: stdout only)")
    parser.add_argument("--number", type=int, default=20,
                        help="calls per timed loop (default 20)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed loops per kernel; the best is "
                             "kept (default 5)")
    args = parser.parse_args()

    doc = run_kernel_bench(number=args.number, repeats=args.repeats)
    for kname, row in doc["kernels"].items():
        print(f"{kname:>22}: reference {row['reference_s'] * 1e3:8.3f} ms"
              f"  fast {row['fast_s'] * 1e3:8.3f} ms"
              f"  speedup {row['speedup']:5.2f}x")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
