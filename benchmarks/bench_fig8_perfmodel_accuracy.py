"""Fig. 8 — predicted vs actual epoch time (performance model accuracy).

MAG240M, 1-4 FPGAs, GCN and GraphSAGE. The paper reports 5-14% average
error, attributed to kernel-launch and pipeline-flush overheads — the
exact effects our event simulator adds on top of the analytic model.
"""

import functools

import numpy as np
import pytest

from repro.bench.experiments import run_perfmodel_accuracy


@functools.lru_cache(maxsize=1)
def _result():
    return run_perfmodel_accuracy()


def test_fig8_prediction_error_within_paper_band(show, benchmark):
    res = benchmark.pedantic(_result, iterations=1, rounds=1)
    show(res.render())

    errors = [abs(e) for e in res.column("error %")]
    # Paper band: 5-14% average; accept anything under 20% per point.
    assert np.mean(errors) < 15.0
    assert max(errors) < 25.0


def test_fig8_prediction_is_optimistic(show, benchmark):
    benchmark(_result)
    """The analytic model omits only overheads, so it underpredicts."""
    res = _result()
    signed = res.column("error %")
    # Strictly negative error would mean prediction > actual.
    assert np.mean(signed) > 0.0


def test_fig8_epoch_time_decreases_with_more_fpgas(benchmark):
    benchmark(_result)
    res = _result()
    for model in ("gcn", "sage"):
        rows = [r for r in res.rows if r[0] == model]
        actuals = [r[2] for r in sorted(rows, key=lambda r: r[1])]
        assert actuals == sorted(actuals, reverse=True)
