"""Fig. 10 — cross-platform comparison.

Epoch times of the multi-GPU PyG baseline, the hybrid CPU-GPU design and
the hybrid CPU-FPGA design on all three datasets and both models.
Paper: CPU+GPU up to 2.08x, CPU+FPGA up to 12.6x over the baseline, and
the FPGA design 5-6x faster than the GPU design.
"""

import functools

import pytest

from repro.bench.experiments import run_cross_platform
from repro.bench.harness import geomean


@functools.lru_cache(maxsize=1)
def _result():
    return run_cross_platform()


def test_fig10_cross_platform_table(show, benchmark):
    res = benchmark.pedantic(_result, iterations=1, rounds=1)
    show(res.render())

    gpu_speedups = res.column("speedup")          # first speedup column
    fpga_speedups = [r[6] for r in res.rows]
    # Both hybrid designs beat the baseline on every configuration.
    assert min(gpu_speedups) > 1.0
    assert min(fpga_speedups) > 1.0


def test_fig10_fpga_beats_gpu_on_products_and_papers(benchmark):
    """FPGA wins outright on products/papers100M; on MAG240M the
    756-dim features make the 2048-MAC systolic array compute-bound and
    our mechanistic model gives FPGA≈GPU (the paper reports a larger
    FPGA win there — see EXPERIMENTS.md divergence analysis)."""
    benchmark(_result)
    res = _result()
    for row in res.rows:
        ds_name, _, t_base, t_gpu, _, t_fpga, _ = row
        if ds_name == "mag240m":
            assert t_fpga < t_gpu * 1.15, row
        else:
            assert t_fpga < t_gpu, row


def test_fig10_speedup_magnitudes_in_paper_band(benchmark):
    benchmark(_result)
    """Shape check: CPU+GPU lands near the paper's 1.45-2.08x band and
    CPU+FPGA clearly separates from it (paper 8.87-12.6x; our
    mechanistic substrate reproduces the ordering with a smaller gap —
    see EXPERIMENTS.md for the divergence analysis)."""
    res = _result()
    gpu = geomean([r[4] for r in res.rows])
    fpga = geomean([r[6] for r in res.rows])
    assert 1.2 < gpu < 8.0
    assert fpga > 2.0
    assert fpga > gpu
