"""§VIII future-work extension: feature quantization over PCIe.

The paper's conclusion names data quantization as the planned remedy for
PCIe-bound configurations ("the DRM engine would reduce the workload
assigned to the accelerator, which limits the achievable speedup").
This bench measures both sides of the trade on the transfer-bound
papers100M CPU-FPGA configuration:

* timing — fp16/int8 transfers shrink the Data Transfer stage 2x/4x;
* accuracy — the real quantize-dequantize round trip's effect on
  functional training loss.
"""

import functools

import numpy as np
import pytest

from repro.bench.experiments import dataset, paper_config
from repro.bench.harness import format_table
from repro.config import SystemConfig, TrainingConfig
from repro.graph.datasets import tiny_dataset
from repro.hw import hyscale_cpu_fpga_platform
from repro.runtime import HyScaleGNN
from repro.runtime.quantize import quantization_rmse

MODES = ("fp32", "fp16", "int8")


@functools.lru_cache(maxsize=1)
def _timing_sweep():
    ds = dataset("ogbn-papers100M")
    cfg = paper_config("gcn")
    rows = []
    for mode in MODES:
        sys_cfg = SystemConfig(transfer_precision=mode)
        system = HyScaleGNN(ds, hyscale_cpu_fpga_platform(4), cfg,
                            sys_cfg, full_scale=True, profile_probes=2)
        rep = system.simulate_epoch()
        accel_share = sum(system.split.accel_targets) / \
            system.split.total_targets
        rows.append((mode, rep.epoch_time_s, accel_share * 100,
                     rep.bottleneck_stage()))
    return rows


def test_quantized_transfer_timing(show, benchmark):
    rows = benchmark.pedantic(_timing_sweep, iterations=1, rounds=1)
    show(format_table(
        "Extension (paper SVIII) - transfer precision "
        "(papers100M, GCN, 4 FPGAs)",
        ["precision", "epoch time (s)", "accel share %",
         "bottleneck"], rows,
        notes=["cheaper transfers let DRM hand the accelerators more "
               "work - the remedy for the PCIe bound the paper's "
               "SVIII names as its limitation"]))
    times = {r[0]: r[1] for r in rows}
    share = {r[0]: r[2] for r in rows}
    # Quantization strictly improves the PCIe-bound epoch...
    assert times["fp16"] < times["fp32"]
    assert times["int8"] <= times["fp16"] * 1.02
    # ...and DRM keeps at least as much work on the accelerators.
    assert share["int8"] >= share["fp32"] - 1.0


def test_quantized_training_accuracy(show, benchmark):
    """Functional cost of quantization: fp16 training is numerically
    indistinguishable; int8 degrades mildly but still learns."""
    ds = tiny_dataset(num_vertices=600, feature_dim=16, num_classes=4,
                      avg_degree=10.0, seed=1)
    cfg = TrainingConfig(model="sage", minibatch_size=48,
                         fanouts=(5, 4), hidden_dim=24,
                         learning_rate=0.05, seed=3)

    def run_all():
        out = {}
        for mode in MODES:
            sys_cfg = SystemConfig(transfer_precision=mode)
            system = HyScaleGNN(ds, hyscale_cpu_fpga_platform(2), cfg,
                                sys_cfg, profile_probes=2)
            reports = system.train(epochs=4)
            out[mode] = float(np.mean(reports[-1].losses))
        return out

    finals = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rmse = {m: quantization_rmse(ds.features[:256].astype(np.float64),
                                 m) for m in MODES}
    show(format_table(
        "Extension - functional cost of quantized transfers "
        "(tiny dataset, 4 epochs)",
        ["precision", "final loss", "feature RMSE"],
        [(m, finals[m], rmse[m]) for m in MODES]))

    assert rmse["fp32"] == 0.0
    assert abs(finals["fp16"] - finals["fp32"]) < 0.05
    assert abs(finals["int8"] - finals["fp32"]) < 0.25
