"""Table II — specifications of the platforms.

Prints the device table with the exact paper values and benchmarks the
hot path those specs feed (link transfer-time evaluation).
"""

import pytest

from repro.bench.harness import format_table
from repro.hw.specs import (
    AMD_EPYC_7763,
    LINK_PCIE4_X16,
    NVIDIA_A5000,
    XILINX_U250,
)


def test_table2_platform_specs(benchmark, show):
    devices = (AMD_EPYC_7763, NVIDIA_A5000, XILINX_U250)
    rows = [(d.name, d.kind, d.peak_tflops, d.frequency_ghz * 1000,
             d.onchip_memory_mb, d.mem_bandwidth_gbps)
            for d in devices]
    show(format_table(
        "Table II - Specifications of the platforms",
        ["device", "kind", "peak TFLOPS", "freq (MHz)",
         "on-chip (MB)", "mem BW (GB/s)"], rows,
        notes=["values match paper Table II exactly"]))

    # Paper values are load-bearing for every other experiment.
    assert AMD_EPYC_7763.peak_tflops == 3.6
    assert NVIDIA_A5000.peak_tflops == 27.8
    assert XILINX_U250.peak_tflops == 0.6

    def transfer_sweep():
        total = 0.0
        for nbytes in range(0, 64 * 1024 * 1024, 1024 * 1024):
            total += LINK_PCIE4_X16.transfer_time(nbytes)
        return total

    assert benchmark(transfer_sweep) > 0
