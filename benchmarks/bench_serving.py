"""Open-loop serving benchmark — latency, throughput, typed shedding.

Three scenarios against one :class:`~repro.serving.ServingSession`
configuration (paper-stack sampler + fused gather/quantize kernels +
int8 transfer policy over the scaled ogbn-products workload):

* ``nominal`` — an offered rate comfortably inside capacity: nothing
  sheds, every request completes, accepted p99 stays inside the
  latency budget;
* ``overload`` — an offered rate far beyond capacity against a small
  bounded queue: the session **sheds typed** (``queue_full``) rather
  than queueing unboundedly, and — the property the admission bound
  exists to buy — the requests it *does* accept still finish inside
  the latency budget;
* ``credits`` — two tenants, one throttled by a tight credit bucket:
  the throttled tenant sheds ``no_credit`` while the other is
  unaffected, and the credit ledger conserves (admitted work never
  exceeds burst + refill).

Script mode (``--json PATH``) writes a ``bench-serving/v1`` document;
``benchmarks/check_regression.py`` gates a fresh run against the
committed ``benchmarks/BENCH_serving.json`` baseline (policy in
``docs/benchmarks.md``). The run's own hard assertions (shedding is
typed, accepted p99 within budget, accepted == completed) execute on
every invocation — the CI leg is additionally wrapped in a hard
timeout, and the load generator's drain phase carries its own grace
deadline, so a wedged run fails loudly.
"""

from __future__ import annotations

import json

from repro.bench.experiments import dataset, paper_config
from repro.bench.harness import ExperimentResult
from repro.config import SystemConfig
from repro.runtime.resctl import NodeAllocator
from repro.serving import (
    SHED_REASONS,
    LoadSpec,
    ServingConfig,
    ServingSession,
    run_open_loop,
)

#: The latency contract every scenario is held to (generous on
#: purpose: the gate must hold on a loaded CI runner, and the
#: coalesce window — budget/10 — plus the bounded backlog keep
#: realized p99 an order of magnitude under it on any machine).
LATENCY_BUDGET_S = 0.25

SCHEMA = "bench-serving/v1"

#: name -> (serving-config overrides, load spec). Rates are requests/s
#: of 4-target requests; the nominal rate is ~10x under what one
#: micro-batch pipeline sustains on a slow runner, the overload rate
#: ~10x over it relative to the 16-request pending bound.
SCENARIOS: dict[str, tuple[dict, LoadSpec]] = {
    "nominal": (
        dict(max_pending_requests=64),
        LoadSpec(rate_rps=150.0, duration_s=1.0,
                 targets_per_request=4, seed=5),
    ),
    "overload": (
        dict(max_pending_requests=8),
        LoadSpec(rate_rps=6000.0, duration_s=0.5,
                 targets_per_request=4, seed=6),
    ),
    "credits": (
        dict(max_pending_requests=64,
             credit_rate_targets_per_s=120.0,
             credit_burst_targets=16),
        LoadSpec(rate_rps=300.0, duration_s=0.75,
                 targets_per_request=4,
                 tenants=("paid", "throttled"), seed=7),
    ),
}


def _serve(overrides: dict, spec: LoadSpec):
    cfg = paper_config("sage", minibatch_size=64, fanouts=(4, 3),
                       hidden_dim=16, seed=7)
    config = ServingConfig(latency_budget_s=LATENCY_BUDGET_S,
                           coalesce_window_s=LATENCY_BUDGET_S / 10.0,
                           max_batch_targets=32, max_depth=2,
                           device="accel", **overrides)
    with ServingSession(dataset("ogbn-products"), cfg,
                        SystemConfig(transfer_precision="int8"),
                        config=config,
                        allocator=NodeAllocator(depth_budget=8)
                        ) as session:
        result = run_open_loop(session, spec)
    return result


def run_bench() -> tuple[ExperimentResult, dict]:
    results = {}
    for name, (overrides, spec) in SCENARIOS.items():
        results[name] = _serve(overrides, spec)

    budget_ms = LATENCY_BUDGET_S * 1e3
    # --- the assertions the CI leg gates on -------------------------
    for name, res in results.items():
        rep = res.report
        assert rep.completed == rep.accepted, \
            f"{name}: {rep.accepted - rep.completed} accepted " \
            f"requests never completed"
        assert set(rep.shed) <= set(SHED_REASONS), \
            f"{name}: untyped shed reasons {sorted(rep.shed)}"
        p99 = rep.latency_percentile(99)
        assert p99 <= LATENCY_BUDGET_S, \
            f"{name}: accepted p99 {p99 * 1e3:.1f} ms blows the " \
            f"{budget_ms:.0f} ms budget"
    assert results["nominal"].report.shed_total == 0, \
        "nominal load must not shed"
    assert results["overload"].report.shed.get("queue_full", 0) > 0, \
        "overload must shed queue_full"
    credits = results["credits"].report
    assert credits.shed.get("no_credit", 0) > 0, \
        "throttled tenant must shed no_credit"
    for tenant, row in credits.credit_ledger.items():
        assert row["spent_targets"] <= row["burst_targets"] \
            + row["refilled_targets"] + 1e-6, \
            f"credit conservation violated for tenant {tenant!r}"

    table = ExperimentResult(
        title=f"open-loop serving - budget {budget_ms:.0f} ms, "
              "ogbn-products (scaled), int8 transfer",
        columns=["scenario", "offered", "accepted", "completed",
                 "shed", "p50 (ms)", "p99 (ms)", "req/s", "targets/s"])
    doc = {"schema": SCHEMA, "latency_budget_s": LATENCY_BUDGET_S,
           "scenarios": {}}
    for name, res in results.items():
        rep = res.report
        shed = ", ".join(f"{r}:{n}" for r, n in sorted(rep.shed.items())) \
            or "-"
        table.add_row(name, rep.offered, rep.accepted, rep.completed,
                      shed, rep.latency_percentile(50) * 1e3,
                      rep.latency_percentile(99) * 1e3,
                      res.throughput_rps, res.targets_per_s)
        doc["scenarios"][name] = res.to_dict()
    table.notes.append(
        "every scenario asserts: typed shed only, accepted == "
        "completed, accepted p99 within the budget")
    return table, doc


def test_serving_smoke(show, benchmark):
    table, doc = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    show(table.render())
    # run_bench's internal assertions are the gate; re-check the
    # rendered evidence made it into the artifact.
    assert set(doc["scenarios"]) == set(SCENARIOS)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Open-loop serving benchmark (micro-batched "
                    "inference: latency percentiles, throughput, "
                    "typed shedding)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the bench-serving/v1 document "
                             "(CI gates it via check_regression.py)")
    args = parser.parse_args()
    table, doc = run_bench()
    print(table.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
