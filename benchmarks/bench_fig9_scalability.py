"""Fig. 9 — scalability of the hybrid training system.

Normalized speedup for 1-16 accelerators on all three datasets and both
models, produced with the performance model exactly as the paper does.
Paper observations reproduced as assertions: good scaling to ~12
accelerators, host-DDR saturation beyond, and the PCIe-bound
products+GCN configuration scaling worst.

Run as a script for the *wall-clock* variant: ``--backend process``
sweeps live trainer replicas (one worker process each, shared-memory
feature store — GIL-free) and reports measured speedup;
``--backend pipelined`` runs the overlapped producer/consumer pipeline
and adds the per-stage overlap report (adaptive look-ahead range,
buffer high-water / occupancy per stage); ``--backend threaded`` gives
the GIL-bound reference curve and ``--backend virtual`` prints the
paper's perf-model projection.
"""

import functools

import pytest

from repro.bench.experiments import (
    run_scalability,
    run_wallclock_scalability,
)

COUNTS = (1, 2, 4, 8, 16)


@functools.lru_cache(maxsize=1)
def _result():
    return run_scalability(accel_counts=COUNTS)


def test_fig9_scalability_series(show, benchmark):
    res = benchmark.pedantic(_result, iterations=1, rounds=1)
    show(res.render())

    for row in res.rows:
        speedups = list(row[2:])
        # Monotone non-decreasing in accelerator count.
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a * 0.98
        # Normalization anchor.
        assert speedups[0] == pytest.approx(1.0)


def test_fig9_sublinear_at_16_accelerators(benchmark):
    benchmark(_result)
    """Bandwidth saturation: 16 accelerators < 16x speedup."""
    res = _result()
    for row in res.rows:
        assert row[-1] < 16.0


def test_fig9_scaling_efficiency_drops_past_8(benchmark):
    benchmark(_result)
    """Per-accelerator efficiency at 16 is lower than at 4 — the host
    memory/PCIe walls the paper describes."""
    res = _result()
    for row in res.rows:
        eff4 = row[2 + COUNTS.index(4)] / 4
        eff16 = row[2 + COUNTS.index(16)] / 16
        assert eff16 <= eff4 + 1e-9


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Fig. 9 scalability (see pytest for the perf-model "
                    "figure; script mode sweeps live backends on "
                    "wall-clock time)")
    parser.add_argument("--backend",
                        choices=("virtual", "threaded", "process",
                                 "process_sampling", "pipelined",
                                 "process_pipelined", "sharded"),
                        default="virtual",
                        help="'virtual' prints the perf-model "
                             "projection; live backends measure "
                             "wall time ('process_sampling' samples "
                             "worker-side; 'pipelined' and "
                             "'process_pipelined' add the per-stage "
                             "overlap report; 'sharded' partitions "
                             "the graph and reports the shard io "
                             "column)")
    parser.add_argument("--trainers", type=int, nargs="+",
                        default=(1, 2, 4),
                        help="trainer replica counts for live sweeps")
    parser.add_argument("--iterations", type=int, default=4,
                        help="synchronized iterations per live point")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="additionally write the result table as "
                             "JSON (CI archives these as artifacts)")
    args = parser.parse_args()
    if args.backend == "virtual":
        res = run_scalability()
    else:
        res = run_wallclock_scalability(
            trainer_counts=tuple(args.trainers),
            backend=args.backend,
            iterations=args.iterations)
    print(res.render())
    if args.json:
        res.write_json(args.json)
