"""Fig. 11 — impact of optimizations (ablation).

Baseline → hybrid(static) → +DRM → +TFP on the CPU-FPGA platform (as in
the paper) and additionally on the CPU-GPU platform, where the
propagation-bound regime gives DRM more room.
Paper (CPU-FPGA): up to 1.13x / 1.33x / 1.79x cumulative.
"""

import functools

import pytest

from repro.bench.experiments import run_ablation


@functools.lru_cache(maxsize=2)
def _result(kind: str):
    return run_ablation(platform_kind=kind)


def test_fig11_ablation_fpga(show, benchmark):
    res = benchmark.pedantic(lambda: _result("fpga"), iterations=1,
                             rounds=1)
    show(res.render())
    for row in res.rows:
        _, _, base, static, drm, tfp = row
        # TFP is the dominant optimization and the full stack always
        # beats the baseline (paper's headline).
        assert tfp > max(base, static, drm) * 0.999
        assert tfp > 1.2
        # The DRM revert guard bounds any regression vs static.
        assert drm > static * 0.90


def test_fig11_ablation_gpu(show, benchmark):
    benchmark(lambda: _result("gpu"))
    res = _result("gpu")
    show(res.render())
    for row in res.rows:
        _, _, base, static, drm, tfp = row
        assert tfp >= max(static, drm) * 0.999
        # Propagation-bound platform: hybrid training itself pays.
        assert static > 0.95


def test_fig11_tfp_gain_is_largest_single_step(benchmark):
    benchmark(lambda: _result("fpga"))
    """The paper attributes the largest jump to TFP when loading or
    transfer bottlenecks — verify on the FPGA platform."""
    res = _result("fpga")
    gains = []
    for row in res.rows:
        _, _, base, static, drm, tfp = row
        gains.append(tfp / drm)
    assert max(gains) > 1.5


def _smoke(backend: str):
    """Quick ablation pass on one dataset — the CI backend smoke.

    The virtual backend sweeps a shortened timing simulation; live
    backends (threaded, process, process_sampling, pipelined,
    process_pipelined, sharded) run the same four preset sessions
    functionally —
    threads behind the GIL, worker processes over the shared-memory
    feature store (sampling in the parent or, for ``process_sampling``
    and ``process_pipelined``, in the workers), the overlapped
    producer/consumer pipeline, or the fused worker-local overlap (a
    scaled-down config keeps each within seconds).
    """
    overrides = dict(minibatch_size=128, fanouts=(5, 5), hidden_dim=32)
    return run_ablation(platform_kind="fpga", num_accels=2,
                        datasets=("ogbn-products",), backend=backend,
                        iterations=4,
                        config_overrides=None
                        if backend == "virtual" else overrides)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Fig. 11 ablation smoke (see pytest for the full "
                    "figure reproduction)")
    parser.add_argument("--backend",
                        choices=("virtual", "threaded", "process",
                                 "process_sampling", "pipelined",
                                 "process_pipelined", "sharded"),
                        default="virtual",
                        help="execution backend the presets run on")
    parser.add_argument("--smoke", action="store_true",
                        help="short single-dataset pass")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="additionally write the result table as "
                             "JSON (CI archives these as artifacts)")
    args = parser.parse_args()
    res = _smoke(args.backend) if args.smoke \
        else run_ablation(backend=args.backend)
    print(res.render())
    if args.json:
        res.write_json(args.json)
