"""Table IV — FPGA hardware parameters and resource utilization.

Reproduces the paper's design point (n=8, m=2048) and sweeps neighboring
configurations to show the DSP wall the paper's sizing sits against.
"""

import pytest

from repro.bench.harness import format_table
from repro.hw.kernels import fpga_resource_utilization


def test_table4_fpga_resource_utilization(show, benchmark):
    points = [(4, 1024), (8, 1024), (8, 2048), (16, 2048), (8, 4096)]
    rows = []
    for n, m in points:
        u = fpga_resource_utilization(n, m)
        rows.append((f"({n}, {m})", f"{u.luts:.0%}", f"{u.dsps:.0%}",
                     f"{u.uram:.0%}", f"{u.bram:.0%}",
                     "yes" if u.feasible() else "NO"))
    show(format_table(
        "Table IV - FPGA parallelism and resource utilization (U250)",
        ["(n, m)", "LUTs", "DSPs", "URAM", "BRAM", "fits"], rows,
        notes=["paper design point (8, 2048): 72% / 90% / 48% / 40%"]))

    u = fpga_resource_utilization(8, 2048)
    assert abs(u.luts - 0.72) < 0.03
    assert abs(u.dsps - 0.90) < 0.03
    assert abs(u.uram - 0.48) < 0.03
    assert abs(u.bram - 0.40) < 0.03
    # Doubling the systolic array must blow the DSP budget.
    assert not fpga_resource_utilization(8, 4096).feasible()

    benchmark(lambda: fpga_resource_utilization(8, 2048))
