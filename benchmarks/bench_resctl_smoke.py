"""Multi-session resource-control smoke — the allocator under contention.

Two :class:`~repro.runtime.PipelinedBackend` sessions run concurrently
on one shared :class:`~repro.runtime.NodeAllocator` with a deliberately
tight depth budget. The short session finishes first; the smoke proves
the arbitration end to end:

* both sessions hold grants **simultaneously** (a barrier start plus a
  lopsided iteration split forces the overlap; the main thread samples
  allocator snapshots throughout and the register/release event order
  is asserted post-hoc);
* while contending, each session's cap is the equal share
  ``budget // 2``, not its configured ``max_depth``;
* the moment the short session finishes its share is **released**: the
  survivor's live cap rises, and after both finish the allocator is
  clean — zero active sessions, full budget available, a balanced
  register/release audit trail.

Script mode (`--json PATH`) is the CI leg (hard-timeout-guarded in the
workflow; every blocking join below also carries its own deadline so a
wedged run fails loudly rather than hanging the runner).
"""

import threading
import time

import numpy as np

from repro.bench.experiments import dataset, paper_config
from repro.bench.harness import ExperimentResult
from repro.config import SystemConfig
from repro.errors import ProtocolError
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.runtime import (
    NodeAllocator,
    PipelinedBackend,
    TrainingSession,
    summarize_calibration,
)

#: Tight on purpose: two sessions wanting ``max_depth=4`` each must
#: contend — the fair share under overlap is 2, half of what either
#: would get alone.
DEPTH_BUDGET = 4

#: Lopsided split: the long session is still mid-run when the short one
#: finishes, which is exactly the release-while-running moment the
#: smoke exists to observe.
LONG_ITERS, SHORT_ITERS = 12, 3

JOIN_TIMEOUT_S = 90.0


def _session(seed: int) -> TrainingSession:
    cfg = paper_config("sage", minibatch_size=64, fanouts=(4, 3),
                      hidden_dim=16, seed=seed)
    return TrainingSession(
        dataset("ogbn-products"), cfg,
        SystemConfig(hybrid=True, drm=False, prefetch=True),
        hyscale_cpu_fpga_platform(num_fpgas=1), profile_probes=2)


def run_smoke() -> ExperimentResult:
    alloc = NodeAllocator(depth_budget=DEPTH_BUDGET)
    backends = {
        "long": PipelinedBackend(_session(seed=7), initial_depth=2,
                                 max_depth=DEPTH_BUDGET,
                                 allocator=alloc),
        "short": PipelinedBackend(_session(seed=8), initial_depth=2,
                                  max_depth=DEPTH_BUDGET,
                                  allocator=alloc),
    }
    iters = {"long": LONG_ITERS, "short": SHORT_ITERS}
    reports: dict[str, object] = {}
    walls: dict[str, float] = {}
    errors: list[BaseException] = []
    start = threading.Barrier(2, timeout=JOIN_TIMEOUT_S)

    def runner(label: str) -> None:
        try:
            start.wait()
            t0 = time.perf_counter()
            reports[label] = backends[label].run(iters[label])
            walls[label] = time.perf_counter() - t0
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(label,),
                                name=f"resctl-smoke-{label}")
               for label in backends]
    for t in threads:
        t.start()

    # Sample the allocator while the sessions run: the contended and
    # post-release states must both be observed live, not just inferred
    # from the audit trail afterwards.
    observed: list[dict] = []
    while any(t.is_alive() for t in threads):
        observed.append(alloc.snapshot())
        time.sleep(0.002)
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT_S)
        if t.is_alive():
            raise ProtocolError(f"{t.name} wedged past the deadline")
    if errors:
        raise errors[0]

    # --- the assertions the CI leg gates on -------------------------
    contended = [s for s in observed if s["active_sessions"] == 2]
    assert contended, "sessions never overlapped"
    for snap in contended:
        assert snap["fair_share"] == DEPTH_BUDGET // 2
        assert all(cap == DEPTH_BUDGET // 2
                   for cap in snap["sessions"].values())
    events = alloc.events
    kinds = [kind for kind, _ in events]
    assert kinds.count("register") == 2 and kinds.count("release") == 2
    assert max(i for i, k in enumerate(kinds) if k == "register") < \
        min(i for i, k in enumerate(kinds) if k == "release"), \
        "registers did not all precede releases: no temporal overlap"
    # Release discipline: the survivor saw its cap rise after the short
    # session returned its share...
    solo = [s for s in observed if s["active_sessions"] == 1]
    for snap in solo:
        assert snap["fair_share"] == DEPTH_BUDGET
    # ...and the allocator ends clean, full budget back in the pool.
    assert alloc.active_count == 0
    assert alloc.available_depth == DEPTH_BUDGET
    for label, backend in backends.items():
        assert backend._grant is None
        rep = reports[label]
        assert rep.iterations == iters[label]
        assert np.all(np.isfinite(rep.losses))

    res = ExperimentResult(
        title=f"resctl smoke - {len(backends)} concurrent sessions, "
              f"depth budget {DEPTH_BUDGET}",
        columns=["session", "iterations", "wall time (s)", "mean loss",
                 "depth range", "calib", "released"])
    for label, backend in backends.items():
        rep = reports[label]
        depths = [d for _, d in rep.depth_history]
        res.add_row(label, iters[label], walls[label],
                    float(np.mean(rep.losses)),
                    f"{min(depths)}-{max(depths)}",
                    summarize_calibration(
                        getattr(rep, "calibration", {})
                        or backend.estimator.summary()),
                    backend._grant is None)
    res.notes.append(
        f"contended snapshots observed: {len(contended)} (fair share "
        f"{DEPTH_BUDGET // 2} each); solo snapshots after release: "
        f"{len(solo)}; final allocator state: active=0, "
        f"available={alloc.available_depth}/{DEPTH_BUDGET}")
    res.notes.append(
        "events: " + ", ".join(f"{kind} {name}"
                               for kind, name in events))
    return res


def test_resctl_multi_session_smoke(show, benchmark):
    res = benchmark.pedantic(run_smoke, iterations=1, rounds=1)
    show(res.render())
    # run_smoke's internal assertions are the gate; re-check the
    # rendered evidence made it into the artifact.
    assert res.column("released") == [True, True]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Multi-session look-ahead arbitration smoke "
                    "(two concurrent pipelined sessions, one tight "
                    "depth budget)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="additionally write the result table as "
                             "JSON (CI archives these as artifacts)")
    args = parser.parse_args()
    res = run_smoke()
    print(res.render())
    if args.json:
        res.write_json(args.json)
