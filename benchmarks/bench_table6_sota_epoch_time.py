"""Table VI — epoch time comparison with state-of-the-art.

Ours (single node, 4 FPGAs) vs mechanistic models of PaGraph, P3 and
DistDGLv2 on their published platforms with matched model configs.
Paper geo-mean speedups: 1.76x vs PaGraph, 4.57x vs P3, 0.45x vs
DistDGLv2 (which uses 64 GPUs on 8 nodes).
"""

import functools

import pytest

from repro.bench.experiments import run_sota_comparison
from repro.bench.harness import geomean


@functools.lru_cache(maxsize=1)
def _tables():
    return run_sota_comparison()


def test_table6_epoch_time_vs_sota(show, benchmark):
    t6, _ = benchmark.pedantic(_tables, iterations=1, rounds=1)
    show(t6.render())

    by_comp = {}
    for row in t6.rows:
        by_comp.setdefault(row[0], []).append(row[5])
    # Orderings from the paper: we beat the single-node and the 4-node
    # systems, and lose to the 64-GPU 8-node system.
    assert geomean(by_comp["vs PaGraph"]) > 1.0
    assert geomean(by_comp["vs P3"]) > 1.0
    assert geomean(by_comp["vs DistDGLv2"]) < 1.0
    # P3 margin exceeds the PaGraph margin (paper: 4.57x vs 1.76x).
    assert geomean(by_comp["vs P3"]) > geomean(by_comp["vs PaGraph"])


def test_table6_distdgl_ratio_near_paper(benchmark):
    benchmark(_tables)
    """The DistDGLv2 ratio is the sharpest quantitative anchor in the
    paper (0.45x); our mechanistic model should land in its vicinity."""
    t6, _ = _tables()
    ratios = [r[5] for r in t6.rows if r[0] == "vs DistDGLv2"]
    g = geomean(ratios)
    assert 0.2 < g < 0.9
