"""Design-choice ablations beyond the paper's Fig. 11.

* prefetch depth sweep — DESIGN.md calls out the two-deep look-ahead
  (paper Fig. 7 shows depth 2); deeper buffers trade memory for nothing
  once the pipeline is saturated;
* compile-time mapping quality — coarse (design-phase) vs fine grid, the
  gap DRM exists to close.
"""

import functools

import pytest

from repro.bench.experiments import dataset, paper_config
from repro.bench.harness import format_table
from repro.config import SystemConfig
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.perfmodel.mapping import initial_mapping
from repro.runtime.hybrid import HyScaleGNN


@functools.lru_cache(maxsize=1)
def _prefetch_sweep():
    ds = dataset("ogbn-papers100M")
    cfg = paper_config("gcn")
    rows = []
    for depth in (0, 1, 2, 3, 4):
        if depth == 0:
            sys_cfg = SystemConfig(hybrid=True, drm=False,
                                   prefetch=False)
        else:
            sys_cfg = SystemConfig(hybrid=True, drm=False,
                                   prefetch=True,
                                   prefetch_depth=depth)
        system = HyScaleGNN(ds, hyscale_cpu_fpga_platform(4), cfg,
                            sys_cfg, full_scale=True, profile_probes=2)
        t = system.simulate_epoch().epoch_time_s
        label = "0 (serialized)" if depth == 0 else str(depth)
        rows.append((label, t))
    return rows


def test_prefetch_depth_sweep(show, benchmark):
    rows = benchmark.pedantic(_prefetch_sweep, iterations=1, rounds=1)
    show(format_table(
        "Ablation - two-stage prefetch look-ahead depth "
        "(papers100M, GCN, 4 FPGAs)",
        ["prefetch depth", "epoch time (s)"], rows,
        notes=["the serialized->pipelined step is the win; depth 2 "
               "(the paper's Fig. 7 scheme) already saturates"]))
    times = [t for _, t in rows]
    # Any pipelining beats serialized execution decisively...
    assert times[1] < times[0] * 0.8
    # ...and depth 2 is already within 5% of depth 4.
    assert times[2] <= times[4] * 1.05


def test_mapping_quality_gap(show, benchmark):
    """Fine-grid mapping beats the coarse design-phase mapping — the
    headroom the DRM engine closes at runtime."""
    ds = dataset("ogbn-papers100M")
    cfg = paper_config("gcn")
    system = HyScaleGNN(ds, hyscale_cpu_fpga_platform(4), cfg,
                        full_scale=True, profile_probes=2)
    coarse = initial_mapping(system.perfmodel, cfg.minibatch_size,
                             coarse=True)
    fine = benchmark.pedantic(
        lambda: initial_mapping(system.perfmodel, cfg.minibatch_size,
                                coarse=False),
        iterations=1, rounds=1)
    per_t = lambda r: r.predicted_iteration_s / r.split.total_targets
    rows = [
        ("coarse (design phase)", coarse.candidates_evaluated,
         per_t(coarse) * 1e6),
        ("fine grid", fine.candidates_evaluated, per_t(fine) * 1e6),
    ]
    show(format_table(
        "Ablation - compile-time mapping quality (papers100M, GCN)",
        ["mapping", "candidates", "us per target"], rows))
    assert per_t(fine) <= per_t(coarse) * 1.001
