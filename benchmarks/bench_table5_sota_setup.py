"""Table V — platform setup of the state-of-the-art comparators."""

import pytest

from repro.bench.harness import format_table
from repro.hw.topology import (
    distdgl_node,
    hyscale_cpu_fpga_platform,
    p3_node,
    pagraph_node,
)


def test_table5_sota_platform_setup(show, benchmark):
    systems = [
        ("PaGraph", pagraph_node(), "(25, 10)", 256),
        ("P3", p3_node(), "(25, 10)", 32),
        ("DistDGLv2", distdgl_node(), "(15, 10, 5)", 256),
        ("This work", hyscale_cpu_fpga_platform(4), "-", "-"),
    ]
    rows = []
    for name, plat, sample, hidden in systems:
        rows.append((name, plat.num_nodes,
                     f"{plat.num_sockets}x {plat.cpu.name}",
                     f"{plat.num_accelerators}x "
                     f"{plat.accelerator.name}",
                     sample, hidden,
                     round(plat.total_peak_tflops, 1)))
    show(format_table(
        "Table V - Platform setup of state-of-the-art",
        ["system", "nodes", "CPUs / node", "accels / node",
         "sample size", "hidden", "total TFLOPS"], rows))

    # Table V structure checks.
    assert pagraph_node().num_nodes == 1
    assert p3_node().num_nodes == 4
    assert distdgl_node().num_nodes == 8
    assert distdgl_node().num_accelerators * distdgl_node().num_nodes \
        == 64

    benchmark(lambda: hyscale_cpu_fpga_platform(4).total_peak_tflops)
