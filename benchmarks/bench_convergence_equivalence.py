"""Convergence equivalence (paper §I/§IV claim).

"These optimizations do not alter the semantics of the GNN training
algorithm; thus, the convergence rate and model accuracy remain the same
as the original sequential algorithm." Verified functionally: hybrid
multi-trainer training reaches the same loss trajectory as equivalent
large-batch single-trainer SGD, and the full system's loss decreases.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.config import SystemConfig, TrainingConfig
from repro.graph.datasets import tiny_dataset
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.runtime.hybrid import HyScaleGNN


def _make_system(num_accels, seed=3):
    ds = tiny_dataset(num_vertices=600, feature_dim=16, num_classes=4,
                      avg_degree=10.0, seed=1)
    cfg = TrainingConfig(model="sage", minibatch_size=48,
                         fanouts=(5, 4), hidden_dim=24,
                         learning_rate=0.05, seed=seed)
    return HyScaleGNN(ds, hyscale_cpu_fpga_platform(num_accels), cfg,
                      profile_probes=2)


def test_convergence_loss_decreases(show, benchmark):
    system = _make_system(2)
    reports = benchmark.pedantic(lambda: system.train(epochs=8),
                                 iterations=1, rounds=1)
    rows = [(i, float(np.mean(r.losses)), float(np.mean(r.accuracies)))
            for i, r in enumerate(reports)]
    show(format_table(
        "Convergence - hybrid functional training (tiny dataset)",
        ["epoch", "mean loss", "mean accuracy"], rows,
        notes=["optimizations are timing-only: losses must decrease "
               "as in sequential training"]))
    losses = [r[1] for r in rows]
    assert np.mean(losses[-2:]) < losses[0]
    assert system.synchronizer.replicas_consistent()


def test_convergence_independent_of_trainer_count(show, benchmark):
    """More trainers = bigger effective batch, same semantics: final
    losses land in the same range."""
    def sweep():
        finals = {}
        for n in (1, 2, 4):
            system = _make_system(n)
            reports = system.train(epochs=4)
            finals[n] = float(np.mean(reports[-1].losses))
        return finals

    finals = benchmark.pedantic(sweep, iterations=1, rounds=1)
    show(format_table(
        "Convergence vs trainer count (4 epochs)",
        ["accelerators", "final mean loss"],
        [(k, v) for k, v in finals.items()]))
    vals = list(finals.values())
    assert max(vals) - min(vals) < 0.5
