"""Table VII — TFLOPS-normalized epoch time comparison.

Normalizing epoch time by platform peak compute shows system-design
efficiency rather than raw hardware strength. Paper geo-means: 21x vs
PaGraph, 71x vs P3, 25x vs DistDGLv2 — all heavily in HyScale-GNN's
favour because the comparators hold 100+ TFLOPS of GPUs while HyScale
holds 9.6 TFLOPS of CPU+FPGA.
"""

import functools

import pytest

from repro.bench.experiments import run_sota_comparison
from repro.bench.harness import geomean


@functools.lru_cache(maxsize=1)
def _tables():
    return run_sota_comparison()


def test_table7_normalized_epoch_time(show, benchmark):
    _, t7 = benchmark.pedantic(_tables, iterations=1, rounds=1)
    show(t7.render())

    by_comp = {}
    for row in t7.rows:
        by_comp.setdefault(row[0], []).append(row[5])

    # After normalization every comparison flips decisively our way —
    # including DistDGLv2, which beat us on raw epoch time.
    for comp, ratios in by_comp.items():
        assert geomean(ratios) > 3.0, comp
    assert geomean(by_comp["vs DistDGLv2"]) > 1.0


def test_table7_normalization_flips_distdgl(benchmark):
    benchmark(_tables)
    t6, t7 = _tables()
    raw = geomean([r[5] for r in t6.rows if r[0] == "vs DistDGLv2"])
    norm = geomean([r[5] for r in t7.rows if r[0] == "vs DistDGLv2"])
    assert raw < 1.0 < norm
