"""Table III — dataset statistics and GNN-layer dimensions.

Prints the full-scale registry values (exactly Table III) alongside the
scaled instances actually materialized, and benchmarks scaled dataset
construction.
"""

import pytest

from repro.bench.experiments import dataset
from repro.bench.harness import format_table
from repro.graph.datasets import DATASET_REGISTRY, load_dataset


def test_table3_dataset_statistics(show, benchmark):
    rows = []
    for spec in DATASET_REGISTRY.values():
        ds = dataset(spec.name)
        rows.append((spec.name, spec.num_vertices, spec.num_edges,
                     spec.feature_dim, spec.hidden_dim,
                     spec.num_classes,
                     f"1/{round(1 / ds.scale)}",
                     ds.graph.num_vertices, ds.graph.num_edges))
    show(format_table(
        "Table III - Statistics of the datasets and GNN-layer dims",
        ["dataset", "#vertices", "#edges", "f0", "f1", "f2",
         "scale", "scaled #V", "scaled #E"], rows,
        notes=["full-scale columns are the exact Table III values; "
               "scaled instances preserve density and degree shape"]))

    # Scaled density must track the paper's density within 30%.
    for spec in DATASET_REGISTRY.values():
        ds = dataset(spec.name)
        assert abs(ds.graph.avg_degree - spec.avg_degree) / \
            spec.avg_degree < 0.3

    benchmark.pedantic(
        lambda: load_dataset("ogbn-products", scale=1 / 2048, seed=1),
        iterations=1, rounds=3)
