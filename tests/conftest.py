"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig, TrainingConfig
from repro.graph.csr import CSRGraph
from repro.graph.datasets import tiny_dataset
from repro.graph.generators import power_law_graph
from repro.hw.topology import (
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
)
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture(scope="session")
def tiny_ds():
    """Small learnable dataset shared across tests (read-only)."""
    return tiny_dataset(num_vertices=400, feature_dim=12, num_classes=4,
                        avg_degree=8.0, seed=7)


@pytest.fixture(scope="session")
def medium_graph():
    """Mid-size power-law graph for sampler/statistics tests."""
    return power_law_graph(4000, 10.0, seed=3).symmetrize()


@pytest.fixture()
def line_graph():
    """Deterministic path graph 0 -> 1 -> 2 -> 3 (plus reverse)."""
    src = np.array([0, 1, 2, 1, 2, 3])
    dst = np.array([1, 2, 3, 0, 1, 2])
    return CSRGraph.from_edges(src, dst, 4)


@pytest.fixture()
def small_cfg():
    """Small training config usable on tiny_ds."""
    return TrainingConfig(model="sage", minibatch_size=32,
                          fanouts=(4, 3), hidden_dim=16,
                          learning_rate=0.05, seed=11)


@pytest.fixture()
def fpga_platform():
    return hyscale_cpu_fpga_platform(2)


@pytest.fixture()
def gpu_platform():
    return hyscale_cpu_gpu_platform(2)


@pytest.fixture(scope="session")
def tiny_sampler(tiny_ds):
    return NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (4, 3),
                           tiny_ds.spec.feature_dim, seed=5)
