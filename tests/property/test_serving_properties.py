"""Property-based tests (hypothesis) on the serving front door.

The micro-batcher and the admission gates are the pieces of the
serving plane with real invariants rather than tuning: whatever the
arrival pattern,

* every accepted request lands in **exactly one** flushed batch
  (coalescing may reorder work across batch boundaries, never lose or
  duplicate a request);
* a batch's flush deadline is its open time plus the coalesce window,
  which the config bounds by the latency budget — so no accepted
  request waits in the batcher longer than the budget allows;
* a shed request never reaches the sampler: shedding happens entirely
  in the front door, so the sampler is invoked exactly once per
  *flushed batch*, never for refused work.

All three are exercised on a hand-cranked virtual clock, so deadline
behavior is deterministic under hypothesis shrinking.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TrainingConfig
from repro.graph.datasets import tiny_dataset
from repro.serving import (
    InferenceRequest,
    MicroBatcher,
    ServingConfig,
    ServingSession,
    VirtualClock,
)

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

session_settings = settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large])


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: One arrival: (gap since the previous arrival in ms, target count).
arrivals = st.lists(
    st.tuples(st.floats(0.0, 40.0, allow_nan=False),
              st.integers(1, 12)),
    min_size=1, max_size=60)


def _drive(batcher: MicroBatcher, clock: VirtualClock,
           schedule) -> list:
    """Offer the schedule, polling as the clock advances; returns all
    flushed batches (tail force-flushed)."""
    batches = list(batcher.take(len(schedule)))
    for rid, (gap_ms, num_targets) in enumerate(schedule):
        clock.advance(gap_ms / 1e3)
        batcher.poll()
        batches.extend(batcher.take(len(schedule)))
        targets = np.arange(num_targets, dtype=np.int64)
        batcher.offer(InferenceRequest(
            request_id=rid, tenant="t", targets=targets,
            arrival_s=clock()))
        batches.extend(batcher.take(len(schedule)))
    batcher.flush()
    batches.extend(batcher.take(len(schedule)))
    return batches


class TestMicroBatcherProperties:
    @common_settings
    @given(schedule=arrivals,
           window_ms=st.floats(1.0, 100.0, allow_nan=False),
           max_batch_targets=st.integers(1, 48))
    def test_every_accepted_request_in_exactly_one_batch(
            self, schedule, window_ms, max_batch_targets):
        clock = VirtualClock()
        batcher = MicroBatcher(window_ms / 1e3, max_batch_targets,
                               clock=clock)
        batches = _drive(batcher, clock, schedule)
        served = [r.request_id for b in batches for r in b.requests]
        assert sorted(served) == list(range(len(schedule)))
        assert batcher.pending_requests == 0
        assert batcher.flushed_requests == len(schedule)
        assert batcher.flushed_batches == len(batches)

    @common_settings
    @given(schedule=arrivals,
           window_ms=st.floats(1.0, 100.0, allow_nan=False),
           max_batch_targets=st.integers(1, 48))
    def test_flush_deadline_within_coalesce_window(
            self, schedule, window_ms, max_batch_targets):
        window_s = window_ms / 1e3
        clock = VirtualClock()
        batcher = MicroBatcher(window_s, max_batch_targets,
                               clock=clock)
        eps = 1e-12
        for b in _drive(batcher, clock, schedule):
            # The deadline contract: window after open, never more.
            assert b.deadline_s - b.opened_s <= window_s + eps
            # Deadline-driven flushes land at most one poll gap past
            # the deadline; size- and force-flushes land earlier.
            gap_bound = max((g for g, _ in schedule), default=0.0) / 1e3
            assert b.flushed_s <= b.deadline_s + gap_bound + eps

    def test_window_bounded_by_latency_budget(self):
        # The config is where "deadline <= budget" is enforced; the
        # batcher then never sets a deadline beyond it.
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ServingConfig(latency_budget_s=0.1, coalesce_window_s=0.2)
        cfg = ServingConfig(latency_budget_s=0.1)
        assert cfg.window_s <= cfg.latency_budget_s


# ---------------------------------------------------------------------------
# Shed requests never reach the sampler
# ---------------------------------------------------------------------------

_DS = tiny_dataset(num_vertices=200, feature_dim=8, num_classes=3,
                   avg_degree=6.0, seed=13)
_CFG = TrainingConfig(model="sage", minibatch_size=16, fanouts=(3, 2),
                      hidden_dim=8, learning_rate=0.05, seed=11)


class TestShedNeverSamples:
    @session_settings
    @given(num_requests=st.integers(1, 30),
           max_pending=st.integers(1, 4),
           step_every=st.integers(1, 8))
    def test_sampler_called_once_per_flushed_batch_only(
            self, num_requests, max_pending, step_every):
        clock = VirtualClock()
        session = ServingSession(
            _DS, _CFG,
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=8,
                                 max_pending_requests=max_pending),
            clock=clock)
        sampler = session.pipeline.sampler
        calls = []
        inner = sampler.sample
        sampler.sample = lambda targets: (
            calls.append(np.asarray(targets).size), inner(targets))[1]

        rng = np.random.default_rng(5)
        shed = 0
        for _ in range(num_requests):
            targets = rng.choice(_DS.train_ids, size=4, replace=False)
            if session.submit(targets) is not None:
                shed += 1
            clock.advance(0.001)
            if (len(calls) + 1) % step_every == 0:
                session.step()
        clock.advance(1.0)
        session.drain()
        report = session.close()

        assert report.accepted + shed == num_requests
        # Exactly one sampler invocation per flushed batch — shed
        # requests did no stage work at all.
        assert len(calls) == session.batcher.flushed_batches
        assert report.completed == report.accepted
