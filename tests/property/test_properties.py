"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.coo import sort_edges_by_src, source_run_lengths
from repro.graph.csr import CSRGraph
from repro.nn.aggregators import SparseAggregator, segment_sum_aggregate
from repro.nn.loss import softmax_cross_entropy
from repro.runtime.core import BatchPlan
from repro.sampling.base import LayerBlock, MiniBatchStats
from repro.sim.engine import PipelineSimulator

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def edge_lists(draw, max_vertices=30, max_edges=120):
    n = draw(st.integers(2, max_vertices))
    m = draw(st.integers(0, max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst,
                                                      dtype=np.int64)


@st.composite
def layer_blocks(draw, max_src=20, max_edges=60):
    num_src = draw(st.integers(1, max_src))
    num_dst = draw(st.integers(1, num_src))
    m = draw(st.integers(0, max_edges))
    src = draw(st.lists(st.integers(0, num_src - 1), min_size=m,
                        max_size=m))
    dst = draw(st.lists(st.integers(0, num_dst - 1), min_size=m,
                        max_size=m))
    return LayerBlock(np.array(src, dtype=np.int64),
                      np.array(dst, dtype=np.int64), num_src, num_dst)


# ---------------------------------------------------------------------------
# CSR invariants
# ---------------------------------------------------------------------------

class TestCSRProperties:
    @common_settings
    @given(edge_lists())
    def test_from_edges_preserves_multiset(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(src, dst, n)
        s2, d2 = g.edges()
        want = sorted(zip(src.tolist(), dst.tolist()))
        got = sorted(zip(s2.tolist(), d2.tolist()))
        assert want == got

    @common_settings
    @given(edge_lists())
    def test_degree_sum_equals_edges(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(src, dst, n)
        assert g.out_degrees.sum() == g.num_edges

    @common_settings
    @given(edge_lists())
    def test_transpose_involution(self, data):
        """Double transpose preserves the edge multiset (within-row
        ordering of parallel edges may legally differ)."""
        n, src, dst = data
        g = CSRGraph.from_edges(src, dst, n)
        tt = g.transpose().transpose()
        assert sorted(zip(*[a.tolist() for a in g.edges()])) == \
            sorted(zip(*[a.tolist() for a in tt.edges()]))

    @common_settings
    @given(edge_lists())
    def test_symmetrize_is_symmetric_and_superset(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(src, dst, n, dedup=True)
        s = g.symmetrize()
        # Every original edge survives.
        orig = set(zip(*[a.tolist() for a in g.edges()]))
        symm = set(zip(*[a.tolist() for a in s.edges()]))
        assert orig <= symm
        assert {(b, a) for a, b in symm} == symm


# ---------------------------------------------------------------------------
# COO helpers
# ---------------------------------------------------------------------------

class TestCOOProperties:
    @common_settings
    @given(edge_lists())
    def test_sort_preserves_pairs(self, data):
        n, src, dst = data
        s, d = sort_edges_by_src(src, dst)
        assert sorted(zip(src.tolist(), dst.tolist())) == \
            sorted(zip(s.tolist(), d.tolist()))
        assert (np.diff(s) >= 0).all()

    @common_settings
    @given(edge_lists())
    def test_run_lengths_partition_edges(self, data):
        n, src, dst = data
        s, _ = sort_edges_by_src(src, dst)
        runs = source_run_lengths(s)
        assert runs.sum() == s.size
        assert (runs > 0).all()


# ---------------------------------------------------------------------------
# Aggregation equivalence (sparse-matmul path vs FPGA-style scatter path)
# ---------------------------------------------------------------------------

class TestAggregationProperties:
    @common_settings
    @given(layer_blocks(), st.integers(1, 8), st.integers(0, 10**6))
    def test_two_paths_agree(self, blk, feat, seed):
        rng = np.random.default_rng(seed)
        h = rng.standard_normal((blk.num_src, feat))
        w = rng.random(blk.num_edges)
        a = SparseAggregator(blk, w).forward(h)
        b = segment_sum_aggregate(blk, h, w)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-9)

    @common_settings
    @given(layer_blocks(), st.integers(1, 6), st.integers(0, 10**6))
    def test_adjoint_identity(self, blk, feat, seed):
        """<S h, g> == <h, S^T g> for arbitrary blocks."""
        rng = np.random.default_rng(seed)
        agg = SparseAggregator(blk)
        h = rng.standard_normal((blk.num_src, feat))
        g = rng.standard_normal((blk.num_dst, feat))
        assert np.isclose(np.sum(agg.forward(h) * g),
                          np.sum(h * agg.backward(g)))

    @common_settings
    @given(layer_blocks(), st.integers(1, 6))
    def test_linearity(self, blk, feat):
        rng = np.random.default_rng(0)
        agg = SparseAggregator(blk)
        h1 = rng.standard_normal((blk.num_src, feat))
        h2 = rng.standard_normal((blk.num_src, feat))
        assert np.allclose(agg.forward(h1 + h2),
                           agg.forward(h1) + agg.forward(h2))


# ---------------------------------------------------------------------------
# Loss properties
# ---------------------------------------------------------------------------

class TestLossProperties:
    @common_settings
    @given(st.integers(1, 16), st.integers(2, 10),
           st.integers(0, 10**6))
    def test_loss_nonnegative_and_grad_mean_zero(self, batch, classes,
                                                 seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((batch, classes)) * 5
        labels = rng.integers(0, classes, batch)
        loss, dl = softmax_cross_entropy(logits, labels)
        assert loss >= 0
        assert np.allclose(dl.sum(axis=1), 0, atol=1e-12)
        # Gradient row norms are bounded by 2/batch for CE-softmax.
        assert (np.abs(dl) <= 1.0 / batch + 1e-12).all()

    @common_settings
    @given(st.integers(1, 16), st.integers(2, 10),
           st.floats(-3, 3), st.integers(0, 10**6))
    def test_shift_invariance(self, batch, classes, shift, seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((batch, classes))
        labels = rng.integers(0, classes, batch)
        l1, _ = softmax_cross_entropy(logits, labels)
        l2, _ = softmax_cross_entropy(logits + shift, labels)
        assert np.isclose(l1, l2, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Pipeline schedule invariants
# ---------------------------------------------------------------------------

class TestPipelineProperties:
    @common_settings
    @given(st.lists(st.lists(st.floats(0.0, 5.0), min_size=3,
                             max_size=3),
                    min_size=1, max_size=12),
           st.integers(0, 4))
    def test_schedule_respects_all_constraints(self, rows, depth):
        sim = PipelineSimulator(["a", "b", "c"], prefetch_depth=depth)
        scheds = sim.schedules(rows)
        a, b, c = scheds
        for k_prev, k_next in ((a, b), (b, c)):
            assert (k_next.start >= k_prev.finish - 1e-9).all()
        for s in scheds:
            if len(rows) > 1:
                assert (s.start[1:] >= s.finish[:-1] - 1e-9).all()

    @common_settings
    @given(st.lists(st.lists(st.floats(0.01, 5.0), min_size=3,
                             max_size=3),
                    min_size=1, max_size=10))
    def test_deeper_prefetch_never_slower(self, rows):
        m = [PipelineSimulator(["a", "b", "c"], d).makespan(rows)
             for d in (0, 1, 2, 4)]
        for earlier, later in zip(m, m[1:]):
            assert later <= earlier + 1e-9

    @common_settings
    @given(st.lists(st.lists(st.floats(0.01, 5.0), min_size=2,
                             max_size=2),
                    min_size=1, max_size=10))
    def test_makespan_bounds(self, rows):
        """max-stage lower bound; sum-of-everything upper bound."""
        sim = PipelineSimulator(["a", "b"], 2)
        mk = sim.makespan(rows)
        lower = max(sum(r[k] for r in rows) for k in range(2))
        upper = sum(sum(r) for r in rows)
        assert lower - 1e-9 <= mk <= upper + 1e-9


# ---------------------------------------------------------------------------
# BatchPlan invariants (the quota / permutation-cursor logic every
# execution backend shares)
# ---------------------------------------------------------------------------

@st.composite
def plan_inputs(draw, max_train=200, max_trainers=4, max_quota=50):
    """(train_ids, quotas, seed): sparse distinct ids, >=1 positive quota."""
    n = draw(st.integers(1, max_train))
    start = draw(st.integers(0, 1000))
    stride = draw(st.integers(1, 5))
    train_ids = start + stride * np.arange(n, dtype=np.int64)
    k = draw(st.integers(1, max_trainers))
    quotas = draw(st.lists(st.integers(0, max_quota), min_size=k,
                           max_size=k).filter(lambda q: sum(q) > 0))
    seed = draw(st.integers(0, 10**6))
    return train_ids, quotas, seed


def _materialize_epoch(train_ids, quotas, seed):
    plan = BatchPlan(train_ids, lambda: quotas,
                     np.random.default_rng(seed))
    return list(plan.start_epoch())


class TestBatchPlanProperties:
    @common_settings
    @given(plan_inputs())
    def test_epoch_is_exact_permutation_of_train_set(self, data):
        """Concatenating every assignment reproduces the train set:
        every id exactly once — no repeats, no gaps."""
        train_ids, quotas, seed = data
        chunks = [a for it in _materialize_epoch(train_ids, quotas, seed)
                  for a in it.assignments if a is not None]
        flat = np.concatenate(chunks)
        assert flat.size == train_ids.size
        np.testing.assert_array_equal(np.sort(flat), train_ids)
        assert np.unique(flat).size == flat.size

    @common_settings
    @given(plan_inputs())
    def test_assignments_respect_per_trainer_quotas(self, data):
        """Each trainer never receives more than its quota, and every
        non-tail iteration hands out exactly the quota sum."""
        train_ids, quotas, seed = data
        epoch = _materialize_epoch(train_ids, quotas, seed)
        total = sum(quotas)
        for it in epoch:
            assert len(it.assignments) == len(quotas)
            for size, want in zip(it.batch_sizes, quotas):
                assert size <= want
            assert it.total_targets <= total
        for it in epoch[:-1]:
            assert it.total_targets == total

    @common_settings
    @given(plan_inputs())
    def test_iteration_count_matches_quota_arithmetic(self, data):
        train_ids, quotas, seed = data
        epoch = _materialize_epoch(train_ids, quotas, seed)
        assert len(epoch) == -(-train_ids.size // sum(quotas))
        assert [it.index for it in epoch] == list(range(len(epoch)))

    @common_settings
    @given(plan_inputs())
    def test_deterministic_under_fixed_seed(self, data):
        """Same seed → bit-identical assignments; this is the
        cross-backend reproducibility contract."""
        train_ids, quotas, seed = data
        a = _materialize_epoch(train_ids, quotas, seed)
        b = _materialize_epoch(train_ids, quotas, seed)
        assert len(a) == len(b)
        for ia, ib in zip(a, b):
            assert ia.batch_sizes == ib.batch_sizes
            for xa, xb in zip(ia.assignments, ib.assignments):
                if xa is None:
                    assert xb is None
                else:
                    np.testing.assert_array_equal(xa, xb)

    @common_settings
    @given(plan_inputs(), st.integers(1, 30))
    def test_iterate_yields_exact_count_rolling_epochs(self, data,
                                                       n_iters):
        """iterate(N) — the shared epoch-rolling loop of every live
        backend — yields exactly N sequentially-numbered iterations
        and starts ceil(N / per_epoch) epoch permutations."""
        train_ids, quotas, seed = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        out = list(plan.iterate(n_iters))
        assert [i for i, _ in out] == list(range(n_iters))
        per_epoch = -(-train_ids.size // sum(quotas))
        assert plan.epochs_started == -(-n_iters // per_epoch)

    @common_settings
    @given(plan_inputs(), st.integers(1, 4))
    def test_epochs_draw_independent_permutations(self, data, epochs):
        """Each epoch re-covers the train set exactly, advancing the
        shared RNG stream (epochs_started counts them)."""
        train_ids, quotas, seed = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        for _ in range(epochs):
            flat = np.concatenate(
                [a for it in plan.start_epoch()
                 for a in it.assignments if a is not None])
            np.testing.assert_array_equal(np.sort(flat), train_ids)
        assert plan.epochs_started == epochs


# ---------------------------------------------------------------------------
# MiniBatchStats scaling
# ---------------------------------------------------------------------------

class TestStatsProperties:
    @common_settings
    @given(st.integers(1, 10**5), st.integers(1, 10**5),
           st.integers(1, 512),
           st.floats(0.01, 10.0))
    def test_scaled_stays_positive_and_monotone(self, v, e, f, factor):
        st_ = MiniBatchStats((v, max(1, v // 2)), (e,), f)
        scaled = st_.scaled(factor)
        assert min(scaled.num_nodes_per_layer) >= 1
        assert min(scaled.num_edges_per_layer) >= 1
        if factor >= 1.0:
            assert scaled.total_edges >= st_.total_edges * 0.9
