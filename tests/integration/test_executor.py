"""Integration tests for the threaded executor (paper Listing 1)."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.errors import ProtocolError
from repro.runtime.executor import ThreadedExecutor
from repro.runtime.protocol import Signal, validate_protocol


@pytest.fixture()
def exec_cfg():
    return TrainingConfig(model="gcn", minibatch_size=24,
                          fanouts=(4, 3), hidden_dim=12,
                          learning_rate=0.05, seed=13)


class TestThreadedExecutor:
    def test_protocol_invariants_hold(self, tiny_ds, exec_cfg):
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=3,
                              prefetch_depth=2, timeout_s=30)
        rep = ex.run(5)
        validate_protocol(rep.protocol_log, 3)
        assert rep.protocol_log.count(0, Signal.DONE) == 3
        assert rep.protocol_log.count(0, Signal.SYNC) == 1

    def test_replicas_consistent_after_run(self, tiny_ds, exec_cfg):
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=2,
                              timeout_s=30)
        rep = ex.run(4)
        assert rep.replicas_consistent

    def test_losses_recorded_per_iteration(self, tiny_ds, exec_cfg):
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=2,
                              timeout_s=30)
        rep = ex.run(6)
        assert len(rep.losses) == 6
        assert all(np.isfinite(l) for l in rep.losses)

    def test_prefetch_bounded(self, tiny_ds, exec_cfg):
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=2,
                              prefetch_depth=2, timeout_s=30)
        rep = ex.run(5)
        assert 1 <= rep.prefetch_high_water <= 2

    def test_single_trainer_works(self, tiny_ds, exec_cfg):
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=1,
                              timeout_s=30)
        rep = ex.run(3)
        validate_protocol(rep.protocol_log, 1)

    def test_invalid_args(self, tiny_ds, exec_cfg):
        with pytest.raises(ProtocolError):
            ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=0)
        ex = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=1,
                              timeout_s=30)
        with pytest.raises(ProtocolError):
            ex.run(0)

    def test_threaded_matches_single_threaded_loss_trajectory(
            self, tiny_ds, exec_cfg):
        """Same seeds, same batches → threaded == sequential training.

        The executor's producer draws batches with a deterministic RNG
        and trainers apply synchronized updates, so a re-run must give
        the identical loss sequence (no data races on model state).
        """
        r1 = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=2,
                              timeout_s=30).run(5)
        r2 = ThreadedExecutor(tiny_ds, exec_cfg, num_trainers=2,
                              timeout_s=30).run(5)
        assert np.allclose(r1.losses, r2.losses)
