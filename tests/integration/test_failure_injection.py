"""Failure-injection tests: the system must fail fast and loudly, never
hang or silently corrupt state."""

import threading

import numpy as np
import pytest

from repro.config import SystemConfig, TrainingConfig
from repro.errors import ProtocolError, ReproError, ShapeError
from repro.graph.datasets import tiny_dataset
from repro.nn.models import build_model
from repro.runtime.executor import ThreadedExecutor
from repro.runtime.prefetch import PrefetchBuffer
from repro.runtime.synchronizer import GradientSynchronizer


class TestExecutorFaults:
    def test_trainer_exception_propagates(self, tiny_ds, small_cfg):
        """A crash inside a trainer thread surfaces in run(), not a
        deadlock."""
        ex = ThreadedExecutor(tiny_ds, small_cfg, num_trainers=2,
                              timeout_s=10)

        # Sabotage one replica so forward raises a shape error.
        bad = ex.trainers[1].model
        bad.layers[0].linear.W = np.zeros((3, 3))
        with pytest.raises((ReproError, ValueError)):
            ex.run(3)

    def test_watchdog_timeout_configured(self, tiny_ds, small_cfg):
        """Timeouts are plumbed; a tiny timeout may trip on slow CI but
        never hang (the wait loops all take the timeout)."""
        ex = ThreadedExecutor(tiny_ds, small_cfg, num_trainers=1,
                              timeout_s=15)
        rep = ex.run(2)   # should complete comfortably
        assert len(rep.losses) == 2


class TestPrefetchFaults:
    def test_get_timeout_raises(self):
        buf = PrefetchBuffer(1)
        with pytest.raises(ProtocolError):
            buf.get(timeout=0.05)

    def test_producer_blocked_by_closed_consumer(self):
        buf = PrefetchBuffer(1)
        buf.put("a")

        def close_soon():
            buf.close()

        t = threading.Timer(0.05, close_soon)
        t.start()
        with pytest.raises(ProtocolError):
            buf.put("b", timeout=5)
        t.join()


class TestSynchronizerFaults:
    def test_diverged_replica_detected(self):
        models = [build_model("gcn", (4, 2), seed=0) for _ in range(2)]
        sync = GradientSynchronizer(models)
        models[1].layers[0].linear.W += 1.0
        assert not sync.replicas_consistent()

    def test_allreduce_with_wrong_grad_shape(self):
        models = [build_model("gcn", (4, 2), seed=0) for _ in range(2)]
        sync = GradientSynchronizer(models)
        with pytest.raises(ShapeError):
            models[0].set_flat_grads(np.zeros(3))


class TestConfigFaults:
    def test_system_rejects_inconsistent_flags(self):
        with pytest.raises(ReproError):
            SystemConfig(hybrid=False, drm=True)

    def test_training_rejects_nonsense(self):
        with pytest.raises(ReproError):
            TrainingConfig(fanouts=(0,))


class TestHybridFaults:
    def test_split_mutation_validated(self, tiny_ds, small_cfg,
                                      fpga_platform):
        from repro.runtime.hybrid import HyScaleGNN
        from repro.perfmodel.model import WorkloadSplit
        system = HyScaleGNN(tiny_ds, fpga_platform, small_cfg,
                            profile_probes=2)
        # A split with the wrong accelerator arity must be rejected at
        # the next stage-time computation.
        system.split = WorkloadSplit(cpu_targets=8,
                                     accel_targets=(32,),
                                     sample_threads=64,
                                     load_threads=64,
                                     train_threads=64)
        with pytest.raises(ReproError):
            system.perfmodel.stage_times(system.split)
