"""Exactness of mini-batch computation against direct dense reference.

For small graphs we can evaluate GCN/SAGE layers directly with dense
matrix algebra over the *full* graph and compare against the mini-batch
block computation — verifying the sampler's local-index bookkeeping and
the layers' aggregation semantics end-to-end.
"""

import numpy as np
import pytest

from repro.config import layer_dims
from repro.graph.csr import CSRGraph
from repro.nn.models import build_model
from repro.sampling.full import FullBatchSampler
from repro.sampling.neighbor import NeighborSampler


def _dense_adj(graph: CSRGraph) -> np.ndarray:
    A = np.zeros((graph.num_vertices, graph.num_vertices))
    src, dst = graph.edges()
    np.add.at(A, (dst, src), 1.0)
    return A


def _dense_gcn_layer(A, deg, H, W, b, act=True):
    Ahat = A + np.eye(A.shape[0])
    d = deg + 1.0
    norm = 1.0 / np.sqrt(np.outer(d, d))
    Z = (Ahat * norm) @ H @ W + b
    return np.maximum(Z, 0) if act else Z


def _dense_sage_layer(A, H, W, b, act=True):
    deg = A.sum(axis=1, keepdims=True)
    mean = (A @ H) / np.maximum(deg, 1.0)
    Z = np.concatenate([H, mean], axis=1) @ W + b
    return np.maximum(Z, 0) if act else Z


@pytest.fixture()
def small_graph():
    rng = np.random.default_rng(5)
    src = rng.integers(0, 30, 150)
    dst = rng.integers(0, 30, 150)
    keep = src != dst
    return CSRGraph.from_edges(src[keep], dst[keep], 30,
                               dedup=True).symmetrize()


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
def test_full_batch_matches_dense_reference(small_graph, model_name):
    n = small_graph.num_vertices
    f0, f1, classes = 6, 10, 3
    rng = np.random.default_rng(1)
    X = rng.standard_normal((n, f0))

    model = build_model(model_name, (f0, f1, classes), seed=9)
    sampler = FullBatchSampler(small_graph, np.arange(n), 2, f0)
    mb = sampler.sample()
    logits = model.forward(mb, X, small_graph.out_degrees)

    A = _dense_adj(small_graph)
    deg = small_graph.out_degrees.astype(np.float64)
    W0, b0 = model.layers[0].linear.W, model.layers[0].linear.b
    W1, b1 = model.layers[1].linear.W, model.layers[1].linear.b
    if model_name == "gcn":
        H1 = _dense_gcn_layer(A, deg, X, W0, b0, act=True)
        ref = _dense_gcn_layer(A, deg, H1, W1, b1, act=False)
    else:
        H1 = _dense_sage_layer(A, X, W0, b0, act=True)
        ref = _dense_sage_layer(A, H1, W1, b1, act=False)

    assert np.allclose(logits, ref, rtol=1e-9, atol=1e-9)


def test_neighbor_sampler_with_huge_fanout_matches_full(small_graph):
    """Fanout >= max degree ⇒ sampling degenerates to the exact 2-hop
    computation for SAGE mean aggregation."""
    n = small_graph.num_vertices
    f0, f1, classes = 5, 8, 3
    rng = np.random.default_rng(2)
    X = rng.standard_normal((n, f0))
    model = build_model("sage", (f0, f1, classes), seed=4)

    big = int(small_graph.out_degrees.max()) + 1
    sampler = NeighborSampler(small_graph, np.arange(n), (big, big),
                              f0, seed=0)
    targets = np.arange(10)
    mb = sampler.sample(targets)
    logits = model.forward(mb, X[mb.input_nodes],
                           small_graph.out_degrees)

    A = _dense_adj(small_graph)
    W0, b0 = model.layers[0].linear.W, model.layers[0].linear.b
    W1, b1 = model.layers[1].linear.W, model.layers[1].linear.b
    H1 = _dense_sage_layer(A, X, W0, b0, act=True)
    ref = _dense_sage_layer(A, H1, W1, b1, act=False)[targets]

    assert np.allclose(logits, ref, rtol=1e-9, atol=1e-9)
