"""Backend results are invariant to the kernel tier.

The kernel registry's exactness contract (``docs/kernels.md``) says the
``fast`` tier is bit-identical to the ``reference`` oracle on every
training-path op. These tests hold the *backends* to it: the same
session run under either tier — on the flagship hybrid + DRM + int8
conformance case, where the fused gather+quantize chokepoint actually
engages — must produce the same trajectory bit for bit. This is what
licenses shipping ``fast`` as the default without perturbing any
previously recorded result.

The tier is selected through the ``REPRO_KERNELS`` environment variable
(not the programmatic override) so process-plane workers inherit it
under any start method, exercising the same selection path CI's
``REPRO_KERNELS=numba`` matrix leg uses.
"""

import numpy as np
import pytest

from backend_conformance import CONFORMANCE_CASES, run_backend
from repro import kernels

#: The flagship case: hybrid CPU+accel split, DRM, int8 PCIe transfer
#: — every kernel op (gather, fused gather+quantize) on the hot path.
_FLAGSHIP = CONFORMANCE_CASES[0]

#: Lock-step backends owing bit-parity; the statistical-tier planes are
#: covered transitively (their conformance suite already runs under the
#: default fast tier against the virtual reference).
_STRICT_BACKENDS = ("virtual", "threaded", "process")


def _run_under_tier(name, tier, dataset, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", tier)
    assert kernels.active_tier("gather") == tier
    session, report = run_backend(name, _FLAGSHIP, dataset)
    params = [t.model.get_flat_params() for t in session.trainers]
    return report, params


@pytest.mark.parametrize("backend_name", _STRICT_BACKENDS)
def test_fast_tier_is_bit_identical_to_reference(backend_name, tiny_ds,
                                                 monkeypatch):
    ref, ref_params = _run_under_tier(backend_name, "reference",
                                      tiny_ds, monkeypatch)
    fast, fast_params = _run_under_tier(backend_name, "fast",
                                        tiny_ds, monkeypatch)
    assert fast.iterations == ref.iterations
    np.testing.assert_array_equal(ref.losses, fast.losses)
    np.testing.assert_array_equal(ref.accuracies, fast.accuracies)
    assert fast.total_edges == ref.total_edges
    assert ref.split_history == fast.split_history
    for rp, fp in zip(ref_params, fast_params):
        np.testing.assert_array_equal(rp, fp)


def test_fast_tier_conformance_against_reference_tier_oracle(
        tiny_ds, monkeypatch):
    """Cross-tier cross-backend: a process run under the default fast
    tier reproduces the virtual reference run under the reference
    tier — the full conformance claim in one assertion path."""
    ref, ref_params = _run_under_tier("virtual", "reference", tiny_ds,
                                      monkeypatch)
    cand, cand_params = _run_under_tier("process", "fast", tiny_ds,
                                        monkeypatch)
    np.testing.assert_array_equal(ref.losses, cand.losses)
    for rp, cp in zip(ref_params, cand_params):
        np.testing.assert_array_equal(rp, cp)


def test_kernel_stats_reported_across_planes(tiny_ds, monkeypatch):
    """Every plane's report carries the kernel-traffic delta, and the
    process plane's totals come from the workers (nonzero gather
    traffic with a zero parent-side delta)."""
    monkeypatch.setenv("REPRO_KERNELS", "fast")
    parent_before = kernels.COUNTERS.snapshot()
    _, report = run_backend("process", _FLAGSHIP, tiny_ds)
    parent_delta = kernels.COUNTERS.delta(parent_before)
    # The accel replicas take the fused int8 chokepoint; DRM may zero
    # the CPU trainer's quota, so plain gather_calls are not promised.
    assert report.kernel_stats.get("gather_rows", 0) > 0
    assert report.kernel_stats.get("fused_calls", 0) > 0  # int8 accel
    assert report.kernel_stats.get("payload_bytes", 0) > 0
    # The parent gathered nothing itself: stats crossed the pipe.
    assert parent_delta.get("gather_rows", 0) == 0
