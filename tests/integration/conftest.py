"""Integration-suite fixtures: loud failure on leaked runtime resources.

The live backends own real OS resources — worker processes and a
``/dev/shm`` segment on the process plane, stage threads on the
threaded/pipelined planes. Their contract is that nothing outlives a
``run()``, clean or failed. The autouse fixture below re-checks that
contract after *every* integration test, so a shutdown regression fails
the offending test immediately in CI instead of silently leaking until
the machine runs out of shared memory.
"""

from __future__ import annotations

import glob
import multiprocessing as mp
import threading
import time

import pytest

#: The SharedFeatureStore segment name prefix (runtime/shm.py).
_SHM_PATTERN = "/dev/shm/repro_shm_*"

#: Thread-name prefixes owned by the live backends' stage threads.
_BACKEND_THREAD_PREFIXES = ("pipeline-", "producer", "trainer")


def _segments() -> set[str]:
    return set(glob.glob(_SHM_PATTERN))


def _worker_processes() -> list[mp.process.BaseProcess]:
    # active_children() also reaps finished children; backends join
    # their workers in a finally, so anything still alive here leaked.
    return [p for p in mp.active_children() if p.is_alive()]


def _backend_threads() -> list[str]:
    return sorted(t.name for t in threading.enumerate()
                  if t.is_alive() and
                  t.name.startswith(_BACKEND_THREAD_PREFIXES))


@pytest.fixture(autouse=True)
def no_leaked_runtime_resources():
    """Assert every test tears its execution substrate down fully.

    Checks, in order: no new ``/dev/shm`` segment survived (process
    plane), no live worker process survived (process plane), and no
    backend stage thread survived (threaded/pipelined planes). A short
    grace period absorbs threads that are mid-exit after their final
    join returned.
    """
    segments_before = _segments()
    yield
    leaked_segments = _segments() - segments_before
    assert not leaked_segments, \
        f"test leaked shared-memory segments: {sorted(leaked_segments)}"

    leaked_procs = _worker_processes()
    assert not leaked_procs, \
        (f"test leaked live worker processes: "
         f"{[p.name for p in leaked_procs]}")

    deadline = time.monotonic() + 2.0
    threads = _backend_threads()
    while threads and time.monotonic() < deadline:
        time.sleep(0.01)
        threads = _backend_threads()
    assert not threads, \
        f"test leaked live backend stage threads: {threads}"
