"""Backend equivalence: one runtime core, two execution strategies.

The refactor's central guarantee: the virtual-time backend and the
threaded backend execute the *same* :class:`TrainingSession` and
:class:`BatchPlan`, so for identical seed/config they must produce
bit-identical per-iteration losses, identical DRM split trajectories,
and identical final replica parameters — including configurations that
were previously impossible to express on threads (hybrid CPU+accelerator
split, DRM re-balancing, quantized PCIe transfer, non-neighbor
samplers).
"""

import numpy as np
import pytest

from repro.config import SystemConfig, TrainingConfig
from repro.errors import ConfigError
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.runtime import (
    HyScaleGNN,
    ThreadedBackend,
    ThreadedExecutor,
    TrainingSession,
    VirtualTimeBackend,
    available_backends,
    get_backend,
)


@pytest.fixture()
def eq_cfg():
    return TrainingConfig(model="sage", minibatch_size=32,
                          fanouts=(4, 3), hidden_dim=16,
                          learning_rate=0.05, seed=11)


def _param_sets(trainers):
    return [t.model.get_flat_params() for t in trainers]


class TestHybridDRMQuantizedEquivalence:
    """The flagship case: hybrid + DRM + int8 transfer on threads."""

    @pytest.fixture()
    def sys_cfg(self):
        return SystemConfig(hybrid=True, drm=True, prefetch=True,
                            transfer_precision="int8")

    def test_threads_match_virtual_plane(self, tiny_ds, eq_cfg, sys_cfg,
                                         fpga_platform):
        system = HyScaleGNN(tiny_ds, fpga_platform, eq_cfg, sys_cfg,
                            profile_probes=2)
        rep_v = system.train_epoch()

        ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                              platform=fpga_platform, profile_probes=2,
                              timeout_s=30)
        rep_t = ex.run_epoch()

        assert rep_t.iterations == rep_v.iterations
        # Identical losses, bit for bit (same batches, same gradients,
        # same all-reduce, same optimizer steps — threading must not
        # change the math).
        np.testing.assert_array_equal(rep_v.losses, rep_t.losses)
        np.testing.assert_array_equal(rep_v.accuracies, rep_t.accuracies)
        assert rep_t.replicas_consistent

        # The DRM trajectory is part of the contract: the producer
        # applies Algorithm 1 in virtual-plane order.
        assert rep_v.split_history == rep_t.split_history
        assert rep_v.stage_history == rep_t.stage_history
        assert rep_v.total_edges == rep_t.total_edges
        assert rep_t.virtual_time_s == pytest.approx(rep_v.epoch_time_s)

        # Final model replicas agree across planes, parameter for
        # parameter.
        for pv, pt in zip(_param_sets(system.trainers),
                          _param_sets(ex.trainers)):
            np.testing.assert_array_equal(pv, pt)

    def test_threaded_plane_runs_hybrid_trainer_set(self, tiny_ds,
                                                    eq_cfg, sys_cfg,
                                                    fpga_platform):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                              platform=fpga_platform, profile_probes=2,
                              timeout_s=30)
        assert [t.kind for t in ex.trainers] == ["cpu", "accel", "accel"]
        assert ex.drm is not None
        rep = ex.run(3)
        assert len(ex.drm.decisions) == 3
        assert ex.split.total_targets == ex.session.initial_split.total_targets

    def test_quantization_flag_is_live_on_threads(self, tiny_ds, eq_cfg,
                                                  fpga_platform):
        """int8 transfer must change accelerator inputs (and hence
        losses) relative to fp32 — proving the policy executes on the
        threaded plane rather than being silently ignored."""
        def run(precision):
            sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True,
                                   transfer_precision=precision)
            ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                                  platform=fpga_platform,
                                  profile_probes=2, timeout_s=30)
            return ex.run(3).losses

        assert run("int8") != run("fp32")


class TestFunctionalOnlyEquivalence:
    """Platform-less sessions: the two backends still agree."""

    def test_same_plan_same_losses(self, tiny_ds, eq_cfg):
        def session():
            return TrainingSession(tiny_ds, eq_cfg, SystemConfig(
                hybrid=True, drm=False, prefetch=True), num_trainers=3)

        rep_v = VirtualTimeBackend(session()).run_epoch()
        rep_t = ThreadedBackend(session(), timeout_s=30).run_epoch()
        assert rep_t.iterations == rep_v.iterations
        np.testing.assert_array_equal(rep_v.losses, rep_t.losses)
        assert rep_t.replicas_consistent

    def test_pluggable_sampler_equivalent_across_backends(self, tiny_ds,
                                                          eq_cfg):
        """A non-neighbor sampler (GraphSAINT random walk) — previously
        impossible on threads — behaves identically on both backends."""
        cfg = eq_cfg.with_updates(sampler="saint-rw")

        def session():
            return TrainingSession(tiny_ds, cfg, SystemConfig(
                hybrid=True, drm=False, prefetch=True), num_trainers=2)

        rep_v = VirtualTimeBackend(session()).run_epoch(max_iterations=3)
        rep_t = ThreadedBackend(session(), timeout_s=30).run(3)
        np.testing.assert_array_equal(rep_v.losses, rep_t.losses)
        assert rep_t.replicas_consistent


class TestEpochSemantics:
    """Satellite fix: a threaded epoch covers the train set exactly."""

    def test_plan_epoch_partitions_train_set(self, tiny_ds, eq_cfg):
        session = TrainingSession(tiny_ds, eq_cfg, SystemConfig(
            hybrid=True, drm=False, prefetch=True), num_trainers=3)
        seen = []
        for planned in session.plan.start_epoch():
            for targets in planned.assignments:
                if targets is not None:
                    seen.append(targets)
        flat = np.concatenate(seen)
        # Every train vertex exactly once — no repeats, no gaps.
        assert flat.size == tiny_ds.train_ids.size
        np.testing.assert_array_equal(np.sort(flat), tiny_ds.train_ids)

    def test_run_epoch_iteration_count(self, tiny_ds, eq_cfg):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, num_trainers=2,
                              timeout_s=30)
        rep = ex.run_epoch()
        assert rep.iterations == ex.session.iterations_per_epoch()

    def test_long_runs_roll_into_fresh_epochs(self, tiny_ds, eq_cfg):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, num_trainers=2,
                              timeout_s=30)
        per_epoch = ex.session.iterations_per_epoch()
        rep = ex.run(per_epoch + 2)
        assert len(rep.losses) == per_epoch + 2
        assert ex.session.plan.epochs_started == 2


class TestSessionValidation:
    def test_drm_without_platform_rejected_eagerly(self, tiny_ds,
                                                   eq_cfg):
        """DRM needs stage times; a platform-less session must refuse
        it loudly rather than silently dropping the feature."""
        with pytest.raises(ConfigError):
            TrainingSession(tiny_ds, eq_cfg,
                            SystemConfig(hybrid=True, drm=True),
                            platform=None)


class TestSamplerRegistry:
    def test_unknown_sampler_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            TrainingConfig(sampler="ladies")

    def test_registered_third_party_sampler_accepted(self, tiny_ds,
                                                     eq_cfg):
        """register_sampler names are valid config values and flow
        through the session into any backend."""
        from repro.sampling import (
            SAMPLER_REGISTRY,
            NeighborSampler,
            register_sampler,
        )
        register_sampler(
            "custom-neighbor",
            lambda graph, ids, cfg, fdim: NeighborSampler(
                graph, ids, cfg.fanouts, fdim, seed=cfg.seed))
        try:
            cfg = eq_cfg.with_updates(sampler="custom-neighbor")
            session = TrainingSession(tiny_ds, cfg, SystemConfig(
                hybrid=True, drm=False, prefetch=True), num_trainers=2)
            assert isinstance(session.sampler, NeighborSampler)
            rep = VirtualTimeBackend(session).run_epoch(max_iterations=2)
            assert rep.iterations == 2
        finally:
            SAMPLER_REGISTRY.pop("custom-neighbor", None)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("threaded", "virtual")
        assert get_backend("virtual") is VirtualTimeBackend
        assert get_backend("threaded") is ThreadedBackend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            get_backend("quantum")

    def test_backend_constructible_from_registry(self, tiny_ds, eq_cfg,
                                                 fpga_platform):
        session = TrainingSession(tiny_ds, eq_cfg, platform=fpga_platform,
                                  profile_probes=2)
        backend = get_backend("virtual")(session)
        rep = backend.run_epoch(max_iterations=2)
        assert rep.iterations == 2
        assert all(np.isfinite(l) for l in rep.losses)
