"""Backend equivalence: one runtime core, N execution strategies.

The refactor's central guarantee, now enforced through the reusable
conformance kit (``backend_conformance.py``): every registered execution
backend — live threads, worker processes, and any third-party backend
joining via ``register_backend`` — executes the *same*
:class:`TrainingSession` and :class:`BatchPlan` as the virtual-time
reference, so for identical seed/config it must produce bit-identical
per-iteration losses, identical DRM split trajectories, and identical
final replica parameters — including configurations that were
previously impossible off the virtual plane (hybrid CPU+accelerator
split, DRM re-balancing, quantized PCIe transfer, non-neighbor
samplers).
"""

import glob
import os
import threading

import numpy as np
import pytest

from backend_conformance import (
    CONFORMANCE_CASES,
    BACKEND_KWARGS,
    assert_backend_conforms,
    candidate_backends,
    run_backend,
)
from repro.config import SystemConfig, TrainingConfig
from repro.errors import ConfigError
from repro.runtime import (
    BACKENDS,
    HyScaleGNN,
    PipelinedBackend,
    ProcessPipelinedBackend,
    ProcessPoolBackend,
    ProcessSamplingBackend,
    ShardedBackend,
    ThreadedBackend,
    ThreadedExecutor,
    TrainingSession,
    VirtualTimeBackend,
    available_backends,
    get_backend,
    register_backend,
)

_CASE_IDS = [c.id for c in CONFORMANCE_CASES]


@pytest.fixture()
def eq_cfg():
    return TrainingConfig(model="sage", minibatch_size=32,
                          fanouts=(4, 3), hidden_dim=16,
                          learning_rate=0.05, seed=11)


def _param_sets(trainers):
    return [t.model.get_flat_params() for t in trainers]


class TestBackendConformance:
    """Every registered backend passes the full parity matrix.

    Parametrized over ``available_backends()`` (minus the virtual
    reference) — a backend registered before collection inherits this
    suite without any test changes.
    """

    @pytest.mark.parametrize("case", CONFORMANCE_CASES, ids=_CASE_IDS)
    @pytest.mark.parametrize("backend", candidate_backends())
    def test_backend_matches_virtual_reference(self, backend, case,
                                               tiny_ds):
        assert_backend_conforms(backend, case, tiny_ds)

    def test_third_party_backend_inherits_suite(self, tiny_ds):
        """A backend registered at runtime runs the same matrix — the
        kit reads the live registry, not a hardcoded pair."""

        @register_backend
        class MirrorBackend(VirtualTimeBackend):
            """Trivially conformant: virtual execution under a new name."""
            name = "mirror"

        try:
            assert "mirror" in candidate_backends()
            assert_backend_conforms("mirror", CONFORMANCE_CASES[0],
                                    tiny_ds)
        finally:
            BACKENDS.pop("mirror", None)

    @pytest.mark.parametrize("depth_source", ["realized", "model"])
    @pytest.mark.parametrize("backend", ["pipelined",
                                         "process_pipelined"])
    def test_overlapped_backends_conform_under_each_depth_source(
            self, backend, depth_source, tiny_ds):
        """The resctl knob sweep: both overlapped planes pass their
        statistical matrix whether the adaptive look-ahead and DRM are
        steered by calibrated realized times (the default) or by the
        pure analytic model (the regression-pinned mode)."""
        assert_backend_conforms(
            backend, CONFORMANCE_CASES[0], tiny_ds,
            extra_kwargs={"depth_source": depth_source})

    @pytest.mark.parametrize("backend", ["pipelined",
                                         "process_pipelined"])
    def test_overlapped_timing_run_reports_calibration(
            self, backend, tiny_ds):
        """A timing-plane run on an overlapped backend exposes the
        per-stage model-vs-realized calibration report: corrections
        stay positive and finite, errors non-negative, and at least
        one stage accumulated observations."""
        _, rep = run_backend(backend, CONFORMANCE_CASES[0], tiny_ds)
        assert rep.calibration, \
            f"{backend}: timing run produced no calibration report"
        total_obs = 0
        for stage, entry in rep.calibration.items():
            assert np.isfinite(entry["correction"])
            assert entry["correction"] > 0.0
            assert entry["observations"] >= 0
            total_obs += entry["observations"]
            if entry["error"] is not None:
                assert entry["error"] >= 0.0
        assert total_obs > 0


class TestProcessBackend:
    """Process-pool specifics the generic matrix cannot see."""

    def test_runs_multiple_worker_processes(self, tiny_ds):
        session, report = run_backend("process", CONFORMANCE_CASES[0],
                                      tiny_ds)
        assert report.num_workers == session.num_trainers
        assert report.num_workers >= 2
        assert report.wall_time_s > 0

    def test_clean_shared_memory_teardown(self, tiny_ds, eq_cfg):
        """No segment survives a run — clean or interrupted."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        pattern = "/dev/shm/repro_shm_*"
        before = set(glob.glob(pattern))
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        ProcessPoolBackend(session, timeout_s=60).run(2)
        assert set(glob.glob(pattern)) == before

    def test_teardown_survives_worker_failure(self, tiny_ds, eq_cfg):
        """A failing run still unlinks its segment (the finally path)."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        pattern = "/dev/shm/repro_shm_*"
        before = set(glob.glob(pattern))
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        backend = ProcessPoolBackend(session, timeout_s=60)
        # Sabotage the sampler so the first iteration raises in the
        # parent after workers and the store are already up.
        session.sampler.sample = None
        with pytest.raises(TypeError):
            backend.run(1)
        assert set(glob.glob(pattern)) == before

    def test_resumed_session_continues_bit_identically(self, tiny_ds,
                                                       eq_cfg):
        """A second run() on an already-trained session must continue
        from the trained weights (workers sync to the parent's current
        parameters at startup), matching the virtual plane's
        continuation — not silently restart from the init seed."""
        sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True)

        sv = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=2)
        vb = VirtualTimeBackend(sv)
        first_v = vb.run_epoch(max_iterations=2)
        second_v = vb.run_epoch(max_iterations=2)

        sp = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=2)
        pb = ProcessPoolBackend(sp, timeout_s=60)
        first_p = pb.run(2)
        second_p = pb.run(2)

        np.testing.assert_array_equal(first_v.losses, first_p.losses)
        np.testing.assert_array_equal(second_v.losses, second_p.losses)
        assert second_p.replicas_consistent
        for tv, tp in zip(sv.trainers, sp.trainers):
            np.testing.assert_array_equal(tv.model.get_flat_params(),
                                          tp.model.get_flat_params())

    def test_invalid_iterations_rejected(self, tiny_ds, eq_cfg):
        from repro.errors import ProtocolError
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        with pytest.raises(ProtocolError):
            ProcessPoolBackend(session).run(0)


class TestWorkerSamplingPlanes:
    """Properties shared by every worker-side-sampling plane (the
    lock-step ``process_sampling`` backend and the overlapped
    ``process_pipelined`` fusion), parametrized over both so a fix to
    one assertion can never silently miss the sibling plane: shard
    partitioning, seeded determinism, resume, epoch rollover, shm
    teardown, and infra-error typing."""

    @pytest.fixture(params=[ProcessSamplingBackend,
                            ProcessPipelinedBackend],
                    ids=["process_sampling", "process_pipelined"])
    def backend_cls(self, request):
        return request.param

    def _session(self, tiny_ds, eq_cfg, n=3):
        return TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=n)

    def test_worker_shards_partition_epoch(self, backend_cls, tiny_ds,
                                           eq_cfg):
        """Union of worker-trained targets == the epoch target set,
        with per-worker shards mutually disjoint (no double-training)."""
        session = self._session(tiny_ds, eq_cfg)
        rep = backend_cls(session, timeout_s=60).run_epoch()
        assert len(rep.worker_targets) == session.num_trainers
        per_worker = [np.concatenate(ts) if ts else
                      np.empty(0, dtype=np.int64)
                      for ts in rep.worker_targets]
        union = np.concatenate(per_worker)
        assert np.unique(union).size == union.size
        np.testing.assert_array_equal(np.sort(union),
                                      tiny_ds.train_ids)
        assert session.plan.epochs_started == 1

    def test_deterministic_across_runs(self, backend_cls, tiny_ds,
                                       eq_cfg):
        """Same seed/config ⇒ bit-identical losses and parameters run
        to run — per-worker streams are seeded, not wall-clock (and
        overlap changes *when* work happens, never which draws are
        made)."""
        r1 = backend_cls(self._session(tiny_ds, eq_cfg),
                         timeout_s=60).run(3)
        r2 = backend_cls(self._session(tiny_ds, eq_cfg),
                         timeout_s=60).run(3)
        np.testing.assert_array_equal(r1.losses, r2.losses)
        np.testing.assert_array_equal(r1.accuracies, r2.accuracies)
        assert r1.total_edges == r2.total_edges

    def test_resumed_session_keeps_training_same_replicas(
            self, backend_cls, tiny_ds, eq_cfg):
        """Back-to-back run() calls continue from the trained weights
        (workers re-sync to the parent's current parameters)."""
        session = self._session(tiny_ds, eq_cfg, n=2)
        backend = backend_cls(session, timeout_s=60)
        first = backend.run(2)
        params_after_first = [t.model.get_flat_params().copy()
                              for t in session.trainers]
        second = backend.run(2)
        assert second.replicas_consistent
        for before, t in zip(params_after_first, session.trainers):
            assert not np.array_equal(before,
                                      t.model.get_flat_params())
        assert first.losses != second.losses

    def test_long_runs_roll_into_fresh_epochs(self, backend_cls,
                                              tiny_ds, eq_cfg):
        session = self._session(tiny_ds, eq_cfg, n=2)
        per_epoch = session.iterations_per_epoch()
        rep = backend_cls(session, timeout_s=60).run(per_epoch + 2)
        assert len(rep.losses) == per_epoch + 2
        assert session.plan.epochs_started == 2

    def test_clean_shared_memory_teardown(self, backend_cls, tiny_ds,
                                          eq_cfg):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        pattern = "/dev/shm/repro_shm_*"
        before = set(glob.glob(pattern))
        session = self._session(tiny_ds, eq_cfg, n=2)
        backend_cls(session, timeout_s=60).run(2)
        assert set(glob.glob(pattern)) == before

    def test_worker_failure_raises_typed_error(self, backend_cls,
                                               tiny_ds):
        """A crash inside a worker (here: an unknown sampler family at
        rebuild time) surfaces as the typed WorkerError — infra
        failures must be distinguishable from conformance failures in
        CI logs — and still tears the segment down."""
        from repro.errors import WorkerError
        from repro.sampling import (
            SAMPLER_REGISTRY,
            NeighborSampler,
            register_sampler,
        )

        family = f"ephemeral-{backend_cls.name}"
        register_sampler(
            family,
            lambda graph, ids, c, fdim: NeighborSampler(
                graph, ids, c.fanouts, fdim, seed=c.seed))
        try:
            cfg = TrainingConfig(model="sage", minibatch_size=32,
                                 fanouts=(4, 3), hidden_dim=16,
                                 learning_rate=0.05, seed=11,
                                 sampler=family)
            session = TrainingSession(
                tiny_ds, cfg,
                SystemConfig(hybrid=True, drm=False, prefetch=True),
                num_trainers=2)
        finally:
            # Deregister before the workers spawn: their registries
            # (rebuilt at import) never see the family, so the rebuild
            # fails inside the worker process.
            SAMPLER_REGISTRY.pop(family, None)
        with pytest.raises(WorkerError):
            backend_cls(session, timeout_s=60).run(2)


class TestProcessSamplingBackend:
    """Worker-side-sampling specifics not shared with the fused plane
    (the shared matrix lives in TestWorkerSamplingPlanes)."""

    def _session(self, tiny_ds, eq_cfg, n=3):
        return TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=n)

    def test_worker_draws_differ_from_parent_stream(self, tiny_ds,
                                                    eq_cfg):
        """The sampling genuinely moved: worker-side neighbor draws
        come from per-worker streams, so sampled-edge totals differ
        from the parent-sampled process plane (coverage still exact)."""
        rp = ProcessPoolBackend(self._session(tiny_ds, eq_cfg),
                                timeout_s=60).run(3)
        rs = ProcessSamplingBackend(self._session(tiny_ds, eq_cfg),
                                    timeout_s=60).run(3)
        assert rs.total_edges != rp.total_edges


class TestPipelinedBackend:
    """Pipelined-plane specifics the generic tiered matrix cannot see."""

    def test_single_trainer_matches_virtual_bit_for_bit(self, tiny_ds,
                                                        eq_cfg):
        """With one trainer there is a single sample-stage thread, so
        the sampler stream is consumed in plan order and overlap cannot
        reorder any stochastic draw: the pipelined plane must be
        bit-identical to the virtual reference — losses, accuracies,
        and every final parameter."""
        sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True)

        sv = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=1)
        rep_v = VirtualTimeBackend(sv).run_epoch()

        sp = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=1)
        rep_p = PipelinedBackend(sp, timeout_s=30).run_epoch()

        assert rep_p.iterations == rep_v.iterations
        np.testing.assert_array_equal(rep_v.losses, rep_p.losses)
        np.testing.assert_array_equal(rep_v.accuracies,
                                      rep_p.accuracies)
        assert rep_p.total_edges == rep_v.total_edges
        for tv, tp in zip(sv.trainers, sp.trainers):
            np.testing.assert_array_equal(tv.model.get_flat_params(),
                                          tp.model.get_flat_params())

    def test_full_epoch_covers_train_set_exactly(self, tiny_ds, eq_cfg):
        """Overlap may run ahead, but never loses or duplicates work:
        one epoch's trained targets are exactly the train set."""
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=3)
        rep = PipelinedBackend(session, timeout_s=30).run_epoch()
        flat = np.concatenate(rep.trained_targets)
        assert np.unique(flat).size == flat.size
        np.testing.assert_array_equal(np.sort(flat),
                                      tiny_ds.train_ids)
        assert session.plan.epochs_started == 1

    def test_overlap_report_covers_every_stage(self, tiny_ds, eq_cfg,
                                               fpga_platform):
        """The per-stage overlap report accounts for every item that
        flowed through every stage of every trainer's pipeline."""
        sys_cfg = SystemConfig(hybrid=True, drm=True, prefetch=True,
                               transfer_precision="int8")
        session = TrainingSession(tiny_ds, eq_cfg, sys_cfg,
                                  fpga_platform, profile_probes=2)
        rep = PipelinedBackend(session, timeout_s=30).run_epoch()
        n = session.num_trainers
        assert set(rep.stage_stats) == {"sample", "gather", "transfer",
                                        "train"}
        for stats in rep.stage_stats.values():
            # Every iteration hands one item per trainer through each
            # stage (idle trainers get a pass-through marker).
            assert stats.items == rep.iterations * n
            assert stats.high_water >= 1
            assert stats.mean_occupancy >= 0.0
        assert rep.prefetch_high_water >= 1
        assert rep.wall_time_s > 0
        assert "depth=" in rep.overlap_summary()

    def test_pipeline_error_propagates_and_joins_threads(self, tiny_ds,
                                                         eq_cfg):
        """A stage-thread failure surfaces as the original exception in
        the caller, and no stage thread outlives the run."""
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        backend = PipelinedBackend(session, timeout_s=10)
        session.sampler.sample = None     # sabotage the sample stage
        with pytest.raises(TypeError):
            backend.run(2)
        lingering = [t.name for t in threading.enumerate()
                     if t.name.startswith("pipeline-")]
        assert lingering == []

    def test_resumed_session_continues_from_trained_weights(self,
                                                            tiny_ds,
                                                            eq_cfg):
        """Back-to-back run() calls on one session keep training the
        same replicas (single-trainer, so bit-comparable across
        planes)."""
        sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True)

        sv = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=1)
        vb = VirtualTimeBackend(sv)
        vb.run_epoch(max_iterations=2)
        second_v = vb.run_epoch(max_iterations=2)

        sp = TrainingSession(tiny_ds, eq_cfg, sys_cfg, num_trainers=1)
        pb = PipelinedBackend(sp, timeout_s=30)
        pb.run(2)
        second_p = pb.run(2)

        np.testing.assert_array_equal(second_v.losses, second_p.losses)
        for tv, tp in zip(sv.trainers, sp.trainers):
            np.testing.assert_array_equal(tv.model.get_flat_params(),
                                          tp.model.get_flat_params())

    def test_invalid_construction_rejected(self, tiny_ds, eq_cfg):
        from repro.errors import ProtocolError
        session = TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        with pytest.raises(ProtocolError):
            PipelinedBackend(session, initial_depth=0)
        with pytest.raises(ProtocolError):
            PipelinedBackend(session, initial_depth=4, max_depth=2)
        with pytest.raises(ProtocolError):
            PipelinedBackend(session, timeout_s=0)
        with pytest.raises(ProtocolError):
            PipelinedBackend(session).run(0)


class TestProcessPipelinedBackend:
    """Fused-plane specifics the generic tiered matrix cannot see:
    look-ahead dealing bounds, DRM lag semantics, the degenerate
    lock-step case, and the worker-side overlap report."""

    def _session(self, tiny_ds, eq_cfg, n=3):
        return TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=n)

    def _platform_session(self, tiny_ds, eq_cfg, fpga_platform):
        return TrainingSession(
            tiny_ds, eq_cfg,
            SystemConfig(hybrid=True, drm=True, prefetch=True,
                         transfer_precision="int8"),
            fpga_platform, profile_probes=2)

    def test_depth_one_matches_worker_sampling_bit_for_bit(
            self, tiny_ds, eq_cfg, fpga_platform):
        """With ``max_depth=1`` the look-ahead window degenerates to
        lock-step dealing: shards are dealt only after the previous
        iteration's DRM step, so the fused plane must reproduce the
        worker-sampling plane bit for bit — losses, DRM trajectory,
        sampled edges, and every final parameter. This is the DRM-lag
        regression pin's zero-lag anchor.

        Constructed with ``depth_source="model"`` — the regression pin
        for the pre-calibration trajectories: the worker-sampling
        plane never calibrates its timing step against realized wall
        clocks, so parity demands the fused plane's analytic mode.
        (``"realized"``, the default, intentionally diverges: it
        corrects the modelled stage times with monitored ones.)"""
        ss = self._platform_session(tiny_ds, eq_cfg, fpga_platform)
        rs = ProcessSamplingBackend(ss, timeout_s=60).run_epoch()

        sf = self._platform_session(tiny_ds, eq_cfg, fpga_platform)
        rf = ProcessPipelinedBackend(sf, timeout_s=60,
                                     initial_depth=1,
                                     max_depth=1,
                                     depth_source="model").run_epoch()

        assert rf.iterations == rs.iterations
        np.testing.assert_array_equal(rs.losses, rf.losses)
        np.testing.assert_array_equal(rs.accuracies, rf.accuracies)
        assert rf.total_edges == rs.total_edges
        assert rf.split_history == rs.split_history
        assert rf.stage_history == rs.stage_history
        for ts, tf in zip(ss.trainers, sf.trainers):
            np.testing.assert_array_equal(ts.model.get_flat_params(),
                                          tf.model.get_flat_params())

    def test_drm_adjustments_lag_the_dealt_window(
            self, tiny_ds, eq_cfg, fpga_platform):
        """Shards in the prefilled window are sliced with the split
        current at deal time: the first ``initial_depth`` iterations'
        dealt sizes must equal what the plan yields with *no* DRM
        adjustment applied — Algorithm 1 cannot reach work already
        dealt (the pipelined plane's documented one-window lag)."""
        depth = 3
        sf = self._platform_session(tiny_ds, eq_cfg, fpga_platform)
        assert sf.iterations_per_epoch() > depth
        rf = ProcessPipelinedBackend(sf, timeout_s=60,
                                     initial_depth=depth,
                                     max_depth=depth).run_epoch()

        # Reference: an identical session whose split is never
        # adjusted (plan iterated directly, no backend, no DRM).
        ref = self._platform_session(tiny_ds, eq_cfg, fpga_platform)
        ref_sizes = []
        for _, planned in ref.plan.iterate(depth):
            ref_sizes.append(planned.batch_sizes)
        assert rf.dealt_sizes[:depth] == ref_sizes
        # Work conservation at deal time: every dealt iteration still
        # carries the full target budget (tail iterations excepted).
        total = sf.initial_split.total_targets
        for sizes in rf.dealt_sizes[:-1]:
            assert sum(sizes) == total

    def test_lookahead_never_exceeds_adaptive_cap(self, tiny_ds,
                                                  eq_cfg,
                                                  fpga_platform):
        """The bounded-queue audit: in-flight dealt iterations never
        exceed ``max_depth``, the adaptive depth stays within
        ``[1, max_depth]``, and no worker stage buffer ever held more
        than the manifest capacity."""
        cap = 4
        sf = self._platform_session(tiny_ds, eq_cfg, fpga_platform)
        backend = ProcessPipelinedBackend(sf, timeout_s=60,
                                          initial_depth=2,
                                          max_depth=cap)
        rf = backend.run_epoch()
        assert len(rf.lookahead_history) == rf.iterations
        for in_flight, depth in rf.lookahead_history:
            assert 1 <= in_flight <= cap
            assert 1 <= depth <= cap
        for _, depth in rf.depth_history:
            assert 1 <= depth <= cap
        for stats in rf.stage_stats.values():
            assert stats.high_water <= cap

    def test_overlap_report_covers_every_stage(self, tiny_ds, eq_cfg):
        """Every iteration hands one item per worker through each
        worker-local stage (idle iterations as pass-through markers),
        and the aggregated report accounts for all of them."""
        session = self._session(tiny_ds, eq_cfg)
        rep = ProcessPipelinedBackend(session,
                                      timeout_s=60).run_epoch()
        n = session.num_trainers
        assert set(rep.stage_stats) == {"sample", "gather", "transfer",
                                        "train"}
        for stats in rep.stage_stats.values():
            assert stats.items == rep.iterations * n
            assert stats.high_water >= 1
            assert stats.mean_occupancy >= 0.0
        assert rep.prefetch_high_water >= 1
        assert rep.wall_time_s > 0
        assert "depth=" in rep.overlap_summary()

    def test_invalid_construction_rejected(self, tiny_ds, eq_cfg):
        from repro.errors import ProtocolError
        session = self._session(tiny_ds, eq_cfg, n=2)
        with pytest.raises(ProtocolError):
            ProcessPipelinedBackend(session, initial_depth=0)
        with pytest.raises(ProtocolError):
            ProcessPipelinedBackend(session, initial_depth=4,
                                    max_depth=2)
        with pytest.raises(ProtocolError):
            ProcessPipelinedBackend(session, timeout_s=0)
        with pytest.raises(ProtocolError):
            ProcessPipelinedBackend(session).run(0)


class TestHybridDRMQuantizedEquivalence:
    """The flagship case through the *facades* (HyScaleGNN vs
    ThreadedExecutor) — the public construction paths must preserve
    the parity the conformance kit proves for raw backends."""

    @pytest.fixture()
    def sys_cfg(self):
        return SystemConfig(hybrid=True, drm=True, prefetch=True,
                            transfer_precision="int8")

    def test_threads_match_virtual_plane(self, tiny_ds, eq_cfg, sys_cfg,
                                         fpga_platform):
        system = HyScaleGNN(tiny_ds, fpga_platform, eq_cfg, sys_cfg,
                            profile_probes=2)
        rep_v = system.train_epoch()

        ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                              platform=fpga_platform, profile_probes=2,
                              timeout_s=30)
        rep_t = ex.run_epoch()

        assert rep_t.iterations == rep_v.iterations
        # Identical losses, bit for bit (same batches, same gradients,
        # same all-reduce, same optimizer steps — threading must not
        # change the math).
        np.testing.assert_array_equal(rep_v.losses, rep_t.losses)
        np.testing.assert_array_equal(rep_v.accuracies, rep_t.accuracies)
        assert rep_t.replicas_consistent

        # The DRM trajectory is part of the contract: the producer
        # applies Algorithm 1 in virtual-plane order.
        assert rep_v.split_history == rep_t.split_history
        assert rep_v.stage_history == rep_t.stage_history
        assert rep_v.total_edges == rep_t.total_edges
        assert rep_t.virtual_time_s == pytest.approx(rep_v.epoch_time_s)

        # Final model replicas agree across planes, parameter for
        # parameter.
        for pv, pt in zip(_param_sets(system.trainers),
                          _param_sets(ex.trainers)):
            np.testing.assert_array_equal(pv, pt)

    def test_threaded_plane_runs_hybrid_trainer_set(self, tiny_ds,
                                                    eq_cfg, sys_cfg,
                                                    fpga_platform):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                              platform=fpga_platform, profile_probes=2,
                              timeout_s=30)
        assert [t.kind for t in ex.trainers] == ["cpu", "accel", "accel"]
        assert ex.drm is not None
        rep = ex.run(3)
        assert len(ex.drm.decisions) == 3
        assert ex.split.total_targets == ex.session.initial_split.total_targets

    def test_quantization_flag_is_live_on_threads(self, tiny_ds, eq_cfg,
                                                  fpga_platform):
        """int8 transfer must change accelerator inputs (and hence
        losses) relative to fp32 — proving the policy executes on the
        threaded plane rather than being silently ignored."""
        def run(precision):
            sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True,
                                   transfer_precision=precision)
            ex = ThreadedExecutor(tiny_ds, eq_cfg, sys_cfg=sys_cfg,
                                  platform=fpga_platform,
                                  profile_probes=2, timeout_s=30)
            return ex.run(3).losses

        assert run("int8") != run("fp32")


class TestEpochSemantics:
    """A live-plane epoch covers the train set exactly."""

    def test_plan_epoch_partitions_train_set(self, tiny_ds, eq_cfg):
        session = TrainingSession(tiny_ds, eq_cfg, SystemConfig(
            hybrid=True, drm=False, prefetch=True), num_trainers=3)
        seen = []
        for planned in session.plan.start_epoch():
            for targets in planned.assignments:
                if targets is not None:
                    seen.append(targets)
        flat = np.concatenate(seen)
        # Every train vertex exactly once — no repeats, no gaps.
        assert flat.size == tiny_ds.train_ids.size
        np.testing.assert_array_equal(np.sort(flat), tiny_ds.train_ids)

    def test_run_epoch_iteration_count(self, tiny_ds, eq_cfg):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, num_trainers=2,
                              timeout_s=30)
        rep = ex.run_epoch()
        assert rep.iterations == ex.session.iterations_per_epoch()

    def test_long_runs_roll_into_fresh_epochs(self, tiny_ds, eq_cfg):
        ex = ThreadedExecutor(tiny_ds, eq_cfg, num_trainers=2,
                              timeout_s=30)
        per_epoch = ex.session.iterations_per_epoch()
        rep = ex.run(per_epoch + 2)
        assert len(rep.losses) == per_epoch + 2
        assert ex.session.plan.epochs_started == 2

    def test_process_long_runs_roll_into_fresh_epochs(self, tiny_ds,
                                                      eq_cfg):
        session = TrainingSession(tiny_ds, eq_cfg, SystemConfig(
            hybrid=True, drm=False, prefetch=True), num_trainers=2)
        per_epoch = session.iterations_per_epoch()
        rep = ProcessPoolBackend(session, timeout_s=60).run(per_epoch + 2)
        assert len(rep.losses) == per_epoch + 2
        assert session.plan.epochs_started == 2


class TestSessionValidation:
    def test_drm_without_platform_rejected_eagerly(self, tiny_ds,
                                                   eq_cfg):
        """DRM needs stage times; a platform-less session must refuse
        it loudly rather than silently dropping the feature."""
        with pytest.raises(ConfigError):
            TrainingSession(tiny_ds, eq_cfg,
                            SystemConfig(hybrid=True, drm=True),
                            platform=None)


class TestSamplerRegistry:
    def test_unknown_sampler_rejected_eagerly(self):
        with pytest.raises(ConfigError):
            TrainingConfig(sampler="ladies")

    def test_registered_third_party_sampler_accepted(self, tiny_ds,
                                                     eq_cfg):
        """register_sampler names are valid config values and flow
        through the session into any backend."""
        from repro.sampling import (
            SAMPLER_REGISTRY,
            NeighborSampler,
            register_sampler,
        )
        register_sampler(
            "custom-neighbor",
            lambda graph, ids, cfg, fdim: NeighborSampler(
                graph, ids, cfg.fanouts, fdim, seed=cfg.seed))
        try:
            cfg = eq_cfg.with_updates(sampler="custom-neighbor")
            session = TrainingSession(tiny_ds, cfg, SystemConfig(
                hybrid=True, drm=False, prefetch=True), num_trainers=2)
            assert isinstance(session.sampler, NeighborSampler)
            rep = VirtualTimeBackend(session).run_epoch(max_iterations=2)
            assert rep.iterations == 2
        finally:
            SAMPLER_REGISTRY.pop("custom-neighbor", None)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("pipelined", "process",
                                        "process_pipelined",
                                        "process_sampling", "sharded",
                                        "threaded", "virtual")
        assert get_backend("virtual") is VirtualTimeBackend
        assert get_backend("threaded") is ThreadedBackend
        assert get_backend("process") is ProcessPoolBackend
        assert get_backend("process_sampling") is ProcessSamplingBackend
        assert get_backend("pipelined") is PipelinedBackend
        assert get_backend("process_pipelined") is \
            ProcessPipelinedBackend
        assert get_backend("sharded") is ShardedBackend

    def test_declared_conformance_tiers(self):
        """Lock-step backends are strict; the out-of-lock-step planes
        (overlapped pipeline, per-worker sampler streams, and their
        fusion) are statistical."""
        from backend_conformance import backend_tier
        assert backend_tier("threaded") == "strict"
        assert backend_tier("process") == "strict"
        assert backend_tier("pipelined") == "statistical"
        assert backend_tier("process_sampling") == "statistical"
        assert backend_tier("process_pipelined") == "statistical"
        assert backend_tier("sharded") == "statistical"

    def test_unknown_tier_rejected(self):
        """A backend declaring a bogus tier fails loudly in the kit,
        not silently against the wrong matrix."""
        from backend_conformance import backend_tier

        @register_backend
        class BogusTierBackend(VirtualTimeBackend):
            name = "bogus-tier"
            conformance_tier = "vibes"

        try:
            with pytest.raises(ConfigError):
                backend_tier("bogus-tier")
        finally:
            BACKENDS.pop("bogus-tier", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            get_backend("quantum")

    def test_backend_constructible_from_registry(self, tiny_ds, eq_cfg,
                                                 fpga_platform):
        session = TrainingSession(tiny_ds, eq_cfg, platform=fpga_platform,
                                  profile_probes=2)
        backend = get_backend("virtual")(session)
        rep = backend.run_epoch(max_iterations=2)
        assert rep.iterations == 2
        assert all(np.isfinite(l) for l in rep.losses)

    def test_kit_can_construct_every_candidate_backend(self, tiny_ds):
        """The kit's construction kwargs actually fit each registered
        backend's constructor — a BACKEND_KWARGS entry going stale (or
        a new backend needing kwargs without one) fails here, not
        deep inside a conformance run."""
        from backend_conformance import CONFORMANCE_CASES, make_session
        from repro.runtime import ExecutionBackend
        for name in candidate_backends():
            session = make_session(CONFORMANCE_CASES[1], tiny_ds)
            backend = get_backend(name)(
                session, **BACKEND_KWARGS.get(name, {}))
            assert isinstance(backend, ExecutionBackend)
