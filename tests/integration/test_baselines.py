"""Integration tests for the comparator systems (Tables V-VII)."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.errors import ConfigError
from repro.graph.datasets import load_dataset
from repro.baselines import (
    DistDGLv2System,
    P3System,
    PaGraphSystem,
    PyGMultiGPUBaseline,
)
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.runtime.hybrid import HyScaleGNN
from repro.config import ABLATION_PRESETS


@pytest.fixture(scope="module")
def products_small():
    return load_dataset("products", scale=1 / 4096, seed=0)


@pytest.fixture(scope="module")
def papers_small():
    return load_dataset("papers100m", scale=1 / 16384, seed=0)


@pytest.fixture(scope="module")
def cfg():
    return TrainingConfig(model="gcn", minibatch_size=256,
                          fanouts=(10, 5), hidden_dim=64, seed=2)


class TestPyGBaseline:
    def test_report_fields(self, products_small, cfg):
        base = PyGMultiGPUBaseline(products_small, cfg,
                                   profile_probes=2)
        rep = base.report()
        assert rep.system == "PyG multi-GPU"
        assert rep.epoch_time_s > 0
        assert rep.iterations > 0
        assert rep.stage_breakdown

    def test_serialized_and_accel_only(self, products_small, cfg):
        base = PyGMultiGPUBaseline(products_small, cfg,
                                   profile_probes=2)
        assert not base.system.sys_cfg.prefetch
        assert not base.system.sys_cfg.hybrid
        assert base.system.split.cpu_targets == 0

    def test_hyscale_beats_baseline(self, products_small, cfg):
        """Fig. 10's primary claim on equal hardware counts."""
        base = PyGMultiGPUBaseline(products_small, cfg,
                                   profile_probes=2)
        t_base = base.simulate_epoch(iterations=40).epoch_time_s
        ours = HyScaleGNN(products_small, hyscale_cpu_fpga_platform(4),
                          cfg, ABLATION_PRESETS["hybrid_drm_tfp"],
                          full_scale=True, profile_probes=2)
        t_ours = ours.simulate_epoch(iterations=40).epoch_time_s
        assert t_ours < t_base


class TestPaGraph:
    def test_products_fully_cached(self, products_small, cfg):
        """products features (~1 GB) fit in V100 memory: 100% hits."""
        pg = PaGraphSystem(products_small, cfg)
        assert pg.cache_fraction == 1.0
        assert pg.hit_ratio == 1.0

    def test_papers_cache_limited(self, papers_small, cfg):
        """papers100M features (~57 GB) overflow the cache: misses."""
        pg = PaGraphSystem(papers_small, cfg)
        assert pg.cache_fraction < 0.35
        assert pg.hit_ratio < 1.0
        # Degree-ordered caching beats proportional: hit > fraction.
        assert pg.hit_ratio > pg.cache_fraction

    def test_misses_increase_epoch_time(self, products_small,
                                        papers_small, cfg):
        t_hit, bh = PaGraphSystem(products_small, cfg).iteration_time()
        t_miss, bm = PaGraphSystem(papers_small, cfg).iteration_time()
        assert bm["transfer"] > bh["transfer"]

    def test_report(self, papers_small, cfg):
        rep = PaGraphSystem(papers_small, cfg).report()
        assert rep.epoch_time_s == pytest.approx(
            rep.iterations * rep.iteration_time_s)
        assert 0 <= rep.stage_breakdown["hit_ratio"] <= 1


class TestP3:
    def test_no_feature_network_term(self, papers_small):
        """P3 moves activations, never features: network cost scales
        with hidden dim, not feature dim."""
        thin = TrainingConfig(model="gcn", minibatch_size=256,
                              fanouts=(10, 5), hidden_dim=32, seed=0)
        wide = thin.with_updates(hidden_dim=256)
        _, b_thin = P3System(papers_small, thin).iteration_time()
        _, b_wide = P3System(papers_small, wide).iteration_time()
        assert b_wide["network"] > 5 * b_thin["network"]

    def test_report(self, papers_small):
        cfg32 = TrainingConfig(model="gcn", minibatch_size=256,
                               fanouts=(10, 5), hidden_dim=32, seed=0)
        rep = P3System(papers_small, cfg32).report()
        assert rep.system == "P3"
        assert rep.epoch_time_s > 0

    def test_requires_multi_node(self, papers_small, cfg):
        from repro.hw.topology import pagraph_node
        with pytest.raises(ConfigError):
            P3System(papers_small, cfg, platform=pagraph_node())


class TestDistDGL:
    def test_partition_quality_used(self, papers_small):
        cfg3 = TrainingConfig(model="sage", minibatch_size=256,
                              fanouts=(5, 4, 3), hidden_dim=64, seed=0)
        dd = DistDGLv2System(papers_small, cfg3)
        assert 0.0 < dd.partition.edge_cut_fraction < 1.0
        t, breakdown = dd.iteration_time()
        assert breakdown["halo"] > 0
        assert breakdown["edge_cut"] == dd.partition.edge_cut_fraction

    def test_more_cut_more_halo_traffic(self, papers_small):
        """Hash partitioning (worse cut) must cost more than BFS."""
        from repro.graph.partition import (hash_partition,
                                           partition_quality)
        cfg3 = TrainingConfig(model="sage", minibatch_size=256,
                              fanouts=(5, 4, 3), hidden_dim=64, seed=0)
        dd = DistDGLv2System(papers_small, cfg3)
        t_bfs, b_bfs = dd.iteration_time()
        dd.partition = partition_quality(
            papers_small.graph,
            hash_partition(papers_small.graph, 8, seed=0))
        t_hash, b_hash = dd.iteration_time()
        assert b_hash["halo"] >= b_bfs["halo"]

    def test_report(self, papers_small):
        cfg3 = TrainingConfig(model="sage", minibatch_size=256,
                              fanouts=(5, 4, 3), hidden_dim=64, seed=0)
        rep = DistDGLv2System(papers_small, cfg3).report()
        assert rep.iterations >= 1
        assert rep.epoch_time_s > 0


class TestNormalizedMetric:
    def test_table7_normalization(self, papers_small, cfg):
        rep = PaGraphSystem(papers_small, cfg).report()
        norm = rep.normalized_epoch_time(100.0)
        assert norm == pytest.approx(rep.epoch_time_s * 100.0)
        with pytest.raises(ConfigError):
            rep.normalized_epoch_time(0.0)
