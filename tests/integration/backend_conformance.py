"""Backend conformance kit: the parity matrix every backend must pass.

The runtime's central guarantee is that execution strategy is *only*
strategy: every :class:`~repro.runtime.ExecutionBackend` executes the
same :class:`TrainingSession` / :class:`BatchPlan`, so for an identical
seed/config it must reproduce the virtual-time reference **bit for
bit** — per-iteration losses and accuracies, the DRM split/stage-time
trajectory, total sampled edges, epoch coverage, and the final replica
parameters.

This module packages that guarantee as a reusable kit:

* :data:`CONFORMANCE_CASES` — the configuration matrix (flagship
  hybrid + DRM + int8 transfer on a platform session, functional-only
  multi-trainer, and a non-neighbor sampler);
* :func:`candidate_backends` — every registered backend except the
  virtual reference, read live from ``available_backends()`` so a
  backend added via ``register_backend`` (third-party included) is
  picked up automatically by the parametrized suite in
  ``test_backend_equivalence.py``;
* :func:`assert_backend_conforms` — run one (backend, case) pair
  against a fresh virtual-plane reference and assert the full matrix.

Third-party backends needing constructor arguments can extend
:data:`BACKEND_KWARGS` before the suite runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig, TrainingConfig
from repro.graph.datasets import GraphDataset
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.runtime import TrainingSession, available_backends, get_backend

#: The reference plane all other backends are held to.
REFERENCE_BACKEND = "virtual"

#: Per-backend constructor keyword overrides used by the kit. Keys are
#: registry names; anything not listed is constructed as
#: ``get_backend(name)(session)``.
BACKEND_KWARGS: dict[str, dict] = {
    "threaded": {"timeout_s": 30.0},
    "process": {"timeout_s": 120.0},
}


@dataclass(frozen=True)
class ConformanceCase:
    """One configuration of the parity matrix.

    ``platform_accels=None`` builds a functional-only session with
    ``num_trainers`` replicas; an integer builds a platform session
    (CPU trainer + that many accelerators when hybrid) carrying the
    full timing plane. ``max_iterations=None`` runs a complete epoch
    and additionally asserts epoch-coverage invariants.
    """

    id: str
    platform_accels: int | None = None
    num_trainers: int = 3
    max_iterations: int | None = None
    profile_probes: int = 2
    train_cfg_kwargs: dict = field(default_factory=dict)
    sys_cfg_kwargs: dict = field(default_factory=dict)


#: The matrix every backend runs. The first case is the paper's
#: flagship stack: hybrid CPU+accelerator split, DRM re-balancing and
#: int8 PCIe transfer, full epoch, timing plane on.
CONFORMANCE_CASES: tuple[ConformanceCase, ...] = (
    ConformanceCase(
        id="hybrid-drm-int8",
        platform_accels=2,
        sys_cfg_kwargs=dict(hybrid=True, drm=True, prefetch=True,
                            transfer_precision="int8")),
    ConformanceCase(
        id="functional-hybrid",
        platform_accels=None, num_trainers=3,
        sys_cfg_kwargs=dict(hybrid=True, drm=False, prefetch=True)),
    ConformanceCase(
        id="saint-rw-sampler",
        platform_accels=None, num_trainers=2, max_iterations=3,
        train_cfg_kwargs=dict(sampler="saint-rw"),
        sys_cfg_kwargs=dict(hybrid=True, drm=False, prefetch=True)),
)


def candidate_backends() -> list[str]:
    """Registered backends that must conform to the reference."""
    return [name for name in available_backends()
            if name != REFERENCE_BACKEND]


def make_session(case: ConformanceCase,
                 dataset: GraphDataset) -> TrainingSession:
    """Fresh session for ``case`` (every backend gets its own — the
    plan/sampler RNG streams are part of what conformance compares)."""
    train_cfg = TrainingConfig(**{
        "model": "sage", "minibatch_size": 32, "fanouts": (4, 3),
        "hidden_dim": 16, "learning_rate": 0.05, "seed": 11,
        **case.train_cfg_kwargs})
    sys_cfg = SystemConfig(**case.sys_cfg_kwargs)
    platform = None if case.platform_accels is None else \
        hyscale_cpu_fpga_platform(case.platform_accels)
    return TrainingSession(dataset, train_cfg, sys_cfg, platform,
                           num_trainers=case.num_trainers,
                           profile_probes=case.profile_probes)


def run_backend(name: str, case: ConformanceCase,
                dataset: GraphDataset):
    """Execute ``case`` on backend ``name``; returns (session, report)."""
    session = make_session(case, dataset)
    backend = get_backend(name)(session, **BACKEND_KWARGS.get(name, {}))
    report = backend.run_epoch(case.max_iterations)
    return session, report


def _params(session: TrainingSession) -> list[np.ndarray]:
    return [t.model.get_flat_params() for t in session.trainers]


def assert_backend_conforms(name: str, case: ConformanceCase,
                            dataset: GraphDataset) -> None:
    """Assert backend ``name`` matches the virtual reference on ``case``.

    The matrix, all bit-exact (same batches, same gradients, same
    all-reduce, same optimizer steps — execution strategy must not
    change the math):

    * iteration count and per-iteration losses / accuracies;
    * the DRM trajectory (split history) and modelled stage times,
      when the session carries a timing plane;
    * total sampled edges (the MTEPS numerator);
    * final replica parameters, parameter for parameter;
    * replica consistency as self-reported by the backend (when its
      report exposes it);
    * epoch coverage: a full-epoch run takes exactly
      ``iterations_per_epoch()`` iterations off one plan permutation.
    """
    ref_session, ref = run_backend(REFERENCE_BACKEND, case, dataset)
    cand_session, cand = run_backend(name, case, dataset)

    assert cand.iterations == ref.iterations
    np.testing.assert_array_equal(ref.losses, cand.losses)
    np.testing.assert_array_equal(ref.accuracies, cand.accuracies)
    assert cand.total_edges == ref.total_edges

    if ref_session.has_timing:
        assert cand.split_history == ref.split_history
        assert cand.stage_history == ref.stage_history
        ref_vtime = getattr(ref, "virtual_time_s", None) or \
            ref.epoch_time_s
        cand_vtime = getattr(cand, "virtual_time_s", None) or \
            getattr(cand, "epoch_time_s", 0.0)
        assert cand_vtime == ref_vtime

    consistent = getattr(cand, "replicas_consistent", None)
    if consistent is not None:
        assert consistent, f"{name} reports inconsistent replicas"

    for ref_p, cand_p in zip(_params(ref_session),
                             _params(cand_session)):
        np.testing.assert_array_equal(ref_p, cand_p)

    if case.max_iterations is None:
        assert cand.iterations == \
            cand_session.iterations_per_epoch()
        assert cand_session.plan.epochs_started == 1
