"""Backend conformance kit: the tiered parity matrix every backend
must pass.

The runtime's central guarantee is that execution strategy is *only*
strategy: every :class:`~repro.runtime.ExecutionBackend` executes the
same :class:`TrainingSession` / :class:`BatchPlan`. How literally that
is enforced depends on the tier the backend declares via its
``conformance_tier`` class attribute:

* ``strict`` (lock-step backends — threaded, process): for an identical
  seed/config the backend must reproduce the virtual-time reference
  **bit for bit** — per-iteration losses and accuracies, the DRM
  split/stage-time trajectory, total sampled edges, epoch coverage,
  and the final replica parameters.
* ``statistical`` (out-of-lock-step backends — the pipelined plane,
  whose stage threads interleave stochastic draws, and the
  worker-side-sampling process plane, whose workers draw from
  independent per-worker RNG streams): bit-parity is impossible *by
  design*. The kit instead asserts what loose coupling must still
  preserve: the exact iteration count, **exact epoch coverage** (every
  train vertex exactly once per epoch — reordered or re-streamed, work
  is never lost or duplicated), per-worker shard disjointness where
  the backend reports it, target-budget conservation, the DRM
  trajectory's shape (length + work conservation per iteration),
  mutual replica consistency, and tolerance-based closeness of losses,
  sampled-edge totals and final parameters to the reference.

This module packages that guarantee as a reusable kit:

* :data:`CONFORMANCE_CASES` — the configuration matrix (flagship
  hybrid + DRM + int8 transfer on a platform session, functional-only
  multi-trainer, and a non-neighbor sampler);
* :func:`candidate_backends` — every registered backend except the
  virtual reference, read live from ``available_backends()`` so a
  backend added via ``register_backend`` (third-party included) is
  picked up automatically by the parametrized suite in
  ``test_backend_equivalence.py`` — and inherits the tier its
  capability flag selects;
* :func:`assert_backend_conforms` — run one (backend, case) pair
  against a fresh virtual-plane reference and assert the tier's
  matrix.

Third-party backends needing constructor arguments can extend
:data:`BACKEND_KWARGS` before the suite runs.

The kit also carries the **serving tier**
(:func:`assert_serving_conforms`): the online plane built on the same
:class:`~repro.runtime.stage_pipeline.StagePipeline` must partition
every submitted request into exactly one outcome (response or typed
shed), reproduce a reference replay of the shared stack bit for bit,
and conserve per-tenant credits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig, TrainingConfig, layer_dims
from repro.errors import ConfigError
from repro.graph.datasets import GraphDataset
from repro.hw.topology import hyscale_cpu_fpga_platform
from repro.nn.models import build_model
from repro.runtime import (
    TrainingSession,
    available_backends,
    build_backend,
    get_backend,
)
from repro.runtime.resctl import NodeAllocator
from repro.runtime.stage_pipeline import StagePipeline
from repro.sampling import build_sampler
from repro.serving import ServingConfig, ServingSession, VirtualClock

#: The reference plane all other backends are held to.
REFERENCE_BACKEND = "virtual"

#: Per-backend constructor keyword overrides used by the kit. Keys are
#: registry names; anything not listed is constructed as
#: ``build_backend(name, session)`` — the typed-options front door, so
#: a typo in this table fails with an unknown-option error naming the
#: backend instead of a bare ``TypeError``.
BACKEND_KWARGS: dict[str, dict] = {
    "threaded": {"timeout_s": 30.0},
    "process": {"timeout_s": 120.0},
    "process_sampling": {"timeout_s": 120.0},
    "pipelined": {"timeout_s": 30.0},
    "process_pipelined": {"timeout_s": 120.0},
    "sharded": {"timeout_s": 120.0},
}

#: Tolerances of the statistical tier. Overlapped backends train the
#: same target partition with slightly different neighbor draws, so
#: epoch-level aggregates must land close to the reference even though
#: individual iterations differ. The final iteration is the epoch tail
#: (fewest targets, noisiest single-batch loss), so it gets a looser
#: bound than the epoch mean.
STAT_LOSS_RTOL = 0.25
STAT_FINAL_LOSS_RTOL = 0.5
STAT_EDGES_RTOL = 0.25
STAT_PARAM_REL_DIST = 0.15

#: The recognized tiers, in increasing looseness.
CONFORMANCE_TIERS = ("strict", "statistical")


@dataclass(frozen=True)
class ConformanceCase:
    """One configuration of the parity matrix.

    ``platform_accels=None`` builds a functional-only session with
    ``num_trainers`` replicas; an integer builds a platform session
    (CPU trainer + that many accelerators when hybrid) carrying the
    full timing plane. ``max_iterations=None`` runs a complete epoch
    and additionally asserts epoch-coverage invariants.
    """

    id: str
    platform_accels: int | None = None
    num_trainers: int = 3
    max_iterations: int | None = None
    profile_probes: int = 2
    train_cfg_kwargs: dict = field(default_factory=dict)
    sys_cfg_kwargs: dict = field(default_factory=dict)


#: The matrix every backend runs. The first case is the paper's
#: flagship stack: hybrid CPU+accelerator split, DRM re-balancing and
#: int8 PCIe transfer, full epoch, timing plane on.
CONFORMANCE_CASES: tuple[ConformanceCase, ...] = (
    ConformanceCase(
        id="hybrid-drm-int8",
        platform_accels=2,
        sys_cfg_kwargs=dict(hybrid=True, drm=True, prefetch=True,
                            transfer_precision="int8")),
    ConformanceCase(
        id="functional-hybrid",
        platform_accels=None, num_trainers=3,
        sys_cfg_kwargs=dict(hybrid=True, drm=False, prefetch=True)),
    ConformanceCase(
        id="saint-rw-sampler",
        platform_accels=None, num_trainers=2, max_iterations=3,
        train_cfg_kwargs=dict(sampler="saint-rw"),
        sys_cfg_kwargs=dict(hybrid=True, drm=False, prefetch=True)),
)


def candidate_backends() -> list[str]:
    """Registered backends that must conform to the reference."""
    return [name for name in available_backends()
            if name != REFERENCE_BACKEND]


def backend_tier(name: str) -> str:
    """The conformance tier backend ``name`` declares (capability flag).

    Read off the registered class so third-party backends select their
    tier by setting one class attribute; an unknown tier fails loudly
    here rather than silently passing the wrong matrix.
    """
    tier = getattr(get_backend(name), "conformance_tier", "strict")
    if tier not in CONFORMANCE_TIERS:
        raise ConfigError(
            f"backend {name!r} declares unknown conformance tier "
            f"{tier!r}; expected one of {CONFORMANCE_TIERS}")
    return tier


def make_session(case: ConformanceCase,
                 dataset: GraphDataset) -> TrainingSession:
    """Fresh session for ``case`` (every backend gets its own — the
    plan/sampler RNG streams are part of what conformance compares)."""
    train_cfg = TrainingConfig(**{
        "model": "sage", "minibatch_size": 32, "fanouts": (4, 3),
        "hidden_dim": 16, "learning_rate": 0.05, "seed": 11,
        **case.train_cfg_kwargs})
    sys_cfg = SystemConfig(**case.sys_cfg_kwargs)
    platform = None if case.platform_accels is None else \
        hyscale_cpu_fpga_platform(case.platform_accels)
    return TrainingSession(dataset, train_cfg, sys_cfg, platform,
                           num_trainers=case.num_trainers,
                           profile_probes=case.profile_probes)


def run_backend(name: str, case: ConformanceCase,
                dataset: GraphDataset,
                extra_kwargs: dict | None = None):
    """Execute ``case`` on backend ``name``; returns (session, report).

    ``extra_kwargs`` layers on top of :data:`BACKEND_KWARGS` for
    one-off knob sweeps (e.g. conforming a backend under each of its
    ``depth_source`` modes) without mutating the shared table.
    """
    session = make_session(case, dataset)
    kwargs = {**BACKEND_KWARGS.get(name, {}), **(extra_kwargs or {})}
    backend = build_backend(name, session, **kwargs)
    report = backend.run_epoch(case.max_iterations)
    return session, report


def _params(session: TrainingSession) -> list[np.ndarray]:
    return [t.model.get_flat_params() for t in session.trainers]


def assert_backend_conforms(name: str, case: ConformanceCase,
                            dataset: GraphDataset,
                            extra_kwargs: dict | None = None) -> None:
    """Assert backend ``name`` matches the virtual reference on ``case``
    at the tier its capability flag declares.

    ``strict`` backends get the bit-exact matrix
    (:func:`assert_strict_conformance`); ``statistical`` backends get
    the coverage/conservation/closeness matrix
    (:func:`assert_statistical_conformance`). ``extra_kwargs`` goes to
    the candidate's constructor only (the reference always runs
    stock).
    """
    ref_session, ref = run_backend(REFERENCE_BACKEND, case, dataset)
    cand_session, cand = run_backend(name, case, dataset, extra_kwargs)
    if backend_tier(name) == "strict":
        assert_strict_conformance(name, case, ref_session, ref,
                                  cand_session, cand)
    else:
        assert_statistical_conformance(name, case, ref_session, ref,
                                       cand_session, cand)


def assert_strict_conformance(name, case, ref_session, ref,
                              cand_session, cand) -> None:
    """The bit-exact matrix (same batches, same gradients, same
    all-reduce, same optimizer steps — execution strategy must not
    change the math):

    * iteration count and per-iteration losses / accuracies;
    * the DRM trajectory (split history) and modelled stage times,
      when the session carries a timing plane;
    * total sampled edges (the MTEPS numerator);
    * final replica parameters, parameter for parameter;
    * replica consistency as self-reported by the backend (when its
      report exposes it);
    * epoch coverage: a full-epoch run takes exactly
      ``iterations_per_epoch()`` iterations off one plan permutation.
    """
    assert cand.iterations == ref.iterations
    np.testing.assert_array_equal(ref.losses, cand.losses)
    np.testing.assert_array_equal(ref.accuracies, cand.accuracies)
    assert cand.total_edges == ref.total_edges

    if ref_session.has_timing:
        assert cand.split_history == ref.split_history
        assert cand.stage_history == ref.stage_history
        ref_vtime = getattr(ref, "virtual_time_s", None) or \
            ref.epoch_time_s
        cand_vtime = getattr(cand, "virtual_time_s", None) or \
            getattr(cand, "epoch_time_s", 0.0)
        assert cand_vtime == ref_vtime

    consistent = getattr(cand, "replicas_consistent", None)
    if consistent is not None:
        assert consistent, f"{name} reports inconsistent replicas"

    for ref_p, cand_p in zip(_params(ref_session),
                             _params(cand_session)):
        np.testing.assert_array_equal(ref_p, cand_p)

    _assert_epoch_bookkeeping(case, cand_session, cand)


def assert_statistical_conformance(name, case, ref_session, ref,
                                   cand_session, cand) -> None:
    """The overlapped-execution matrix: what an out-of-lock-step
    backend must still preserve exactly, and what it must reproduce
    within tolerance.

    Exact:

    * iteration count (the plan's quota arithmetic is DRM-invariant:
      Algorithm 1 conserves the per-iteration target total);
    * epoch coverage, when the backend exposes ``trained_targets``: a
      full-epoch run trains every train vertex exactly once, a partial
      run trains exactly ``iterations x total_targets`` distinct
      vertices — overlap may reorder work, never lose or duplicate it;
    * per-worker coverage, when the backend exposes ``worker_targets``
      (worker-side sampling planes): the per-worker shards are mutually
      disjoint — no target trained by two workers — and their union is
      exactly the set of dispatched targets, so sharding the plan
      across workers neither drops nor double-deals work;
    * DRM trajectory shape: one split per iteration, each conserving
      the target budget (work conservation under pipeline lag);
    * mutual replica consistency after the final all-reduce.

    Within tolerance (the stage threads' interleaved sampler draws make
    individual batches differ):

    * mean per-iteration loss (:data:`STAT_LOSS_RTOL`) and final loss
      (:data:`STAT_FINAL_LOSS_RTOL` — the epoch tail is noisiest);
    * total sampled edges (:data:`STAT_EDGES_RTOL`);
    * final replica parameters, by relative L2 distance
      (:data:`STAT_PARAM_REL_DIST`).
    """
    assert cand.iterations == ref.iterations
    assert len(cand.losses) == len(ref.losses)
    assert all(np.isfinite(v) for v in cand.losses)

    np.testing.assert_allclose(
        float(np.mean(cand.losses)), float(np.mean(ref.losses)),
        rtol=STAT_LOSS_RTOL,
        err_msg=f"{name}: mean loss drifted beyond tolerance")
    np.testing.assert_allclose(
        cand.losses[-1], ref.losses[-1], rtol=STAT_FINAL_LOSS_RTOL,
        err_msg=f"{name}: final loss drifted beyond tolerance")
    np.testing.assert_allclose(
        cand.total_edges, ref.total_edges, rtol=STAT_EDGES_RTOL,
        err_msg=f"{name}: sampled-edge total drifted beyond tolerance")

    total_targets = cand_session.initial_split.total_targets
    trained = getattr(cand, "trained_targets", None)
    if trained is not None:
        flat = np.concatenate(trained)
        assert np.unique(flat).size == flat.size, \
            f"{name} trained a target twice within one epoch"
        train_ids = cand_session.dataset.train_ids
        if case.max_iterations is None:
            np.testing.assert_array_equal(np.sort(flat), train_ids)
        else:
            expected = min(cand.iterations * total_targets,
                           int(train_ids.size))
            assert flat.size == expected, \
                (f"{name} trained {flat.size} targets, expected "
                 f"{expected} (budget conservation)")

    worker_targets = getattr(cand, "worker_targets", None)
    if worker_targets is not None:
        assert trained is not None, \
            (f"{name} exposes worker_targets without trained_targets; "
             "the kit cannot cross-check shard coverage")
        per_worker = [np.concatenate(ts) if ts else
                      np.empty(0, dtype=np.int64)
                      for ts in worker_targets]
        union = np.concatenate(per_worker)
        # No double-training: a target trained by two workers would
        # survive each worker's own dedup but collide here.
        assert np.unique(union).size == union.size, \
            f"{name}: two workers trained the same target"
        # Union of worker-trained targets == the dispatched target set
        # (and therefore, on full epochs, == the epoch target set).
        np.testing.assert_array_equal(
            np.sort(union), np.sort(np.concatenate(trained)),
            err_msg=f"{name}: worker shards do not partition the "
                    "dispatched targets")

    # Cross-node shard ownership: a backend that trains over a vertex
    # partition (``shard_parts`` on its report — the sharded plane, or
    # any third-party multi-node backend) must have dealt every target
    # to the worker that owns it. Together with the disjointness/union
    # checks above this is the distributed-training contract: the
    # per-shard trained sets partition each epoch's target set along
    # the partition map.
    shard_parts = getattr(cand, "shard_parts", None)
    if shard_parts is not None:
        assert worker_targets is not None, \
            (f"{name} exposes shard_parts without worker_targets; the "
             "kit cannot audit shard ownership")
        shard_parts = np.asarray(shard_parts)
        for widx, ts in enumerate(worker_targets):
            if not ts:
                continue
            ids = np.concatenate(ts)
            owners = np.unique(shard_parts[ids])
            assert owners.size <= 1 and \
                (owners.size == 0 or owners[0] == widx), \
                (f"{name}: worker {widx} trained targets owned by "
                 f"shards {owners.tolist()}")

    if ref_session.has_timing:
        assert len(cand.split_history) == cand.iterations
        assert len(cand.stage_history) == cand.iterations
        for split in cand.split_history:
            assert split.total_targets == total_targets
        cand_vtime = getattr(cand, "virtual_time_s", 0.0)
        assert cand_vtime > 0.0

    consistent = getattr(cand, "replicas_consistent", None)
    if consistent is not None:
        assert consistent, f"{name} reports inconsistent replicas"

    for ref_p, cand_p in zip(_params(ref_session),
                             _params(cand_session)):
        dist = float(np.linalg.norm(cand_p - ref_p))
        scale = float(np.linalg.norm(ref_p)) + 1e-12
        assert dist / scale < STAT_PARAM_REL_DIST, \
            (f"{name}: replica parameters drifted {dist / scale:.3f} "
             f"relative L2 from the reference "
             f"(limit {STAT_PARAM_REL_DIST})")

    _assert_epoch_bookkeeping(case, cand_session, cand)


def _assert_epoch_bookkeeping(case, cand_session, cand) -> None:
    """Full-epoch runs consume exactly one plan permutation."""
    if case.max_iterations is None:
        assert cand.iterations == \
            cand_session.iterations_per_epoch()
        assert cand_session.plan.epochs_started == 1


# ----------------------------------------------------------------------
# The serving tier
# ----------------------------------------------------------------------
#
# The serving plane rides the same StagePipeline the training backends
# do, so its conformance matrix is request-level rather than
# loss-level: every submitted request gets exactly one outcome
# (response or typed shed — never both, never neither, never twice),
# every completed batch's predictions are bit-identical to a reference
# replay of the same stack, and per-tenant credit spending conserves.


def default_serving_script(dataset: GraphDataset,
                           num_requests: int = 40, *,
                           targets_per_request: int = 4,
                           tenants: tuple[str, ...] = ("a", "b"),
                           seed: int = 3) -> list[tuple[np.ndarray, str]]:
    """A deterministic request script with cross-request duplicate
    targets (the case micro-batch dedup must get right)."""
    rng = np.random.default_rng(seed)
    ids = dataset.train_ids
    script = []
    for i in range(num_requests):
        targets = rng.choice(ids, size=targets_per_request,
                             replace=False)
        script.append((targets, tenants[i % len(tenants)]))
    return script


def run_serving_audit(dataset: GraphDataset,
                      train_cfg: TrainingConfig,
                      sys_cfg: SystemConfig, *,
                      config: ServingConfig,
                      script: list[tuple[np.ndarray, str]],
                      step_every: int = 4,
                      advance_s: float = 0.01):
    """Replay ``script`` against a fresh :class:`ServingSession` on a
    virtual clock; returns ``(session, responses, sheds)``.

    The clock advances ``advance_s`` per submission and the session
    steps every ``step_every`` submissions, so batches flush by both
    deadline and size along the way; the tail drains explicitly.
    """
    clock = VirtualClock()
    session = ServingSession(dataset, train_cfg, sys_cfg,
                             config=config,
                             allocator=NodeAllocator(depth_budget=8),
                             clock=clock)
    responses, sheds = [], []
    for i, (targets, tenant) in enumerate(script):
        shed = session.submit(targets, tenant=tenant)
        if shed is not None:
            sheds.append(shed)
        clock.advance(advance_s)
        if (i + 1) % step_every == 0:
            responses.extend(session.step())
    clock.advance(config.window_s)
    responses.extend(session.drain())
    session.close()
    return session, responses, sheds


def assert_serving_conforms(dataset: GraphDataset,
                            train_cfg: TrainingConfig,
                            sys_cfg: SystemConfig, *,
                            config: ServingConfig,
                            script: list[tuple[np.ndarray, str]],
                            **audit_kwargs) -> None:
    """Run the serving audit and assert the serving-tier matrix:

    * **outcome partition** — every submitted request appears in
      exactly one of (responses, sheds); no drops, no duplicates;
    * **typed shed only** — every shed carries a recognized reason and
      shed requests never reach the sampler (they do no stage work, so
      the executed-batch audit below cannot contain them);
    * **batch integrity** — each response's ``batch_seq`` names a real
      flushed batch; batches partition the accepted requests;
    * **bit-identical stack** — replaying each executed batch's unique
      target set through a fresh reference ``StagePipeline`` + model
      (same seeds, same sample order) reproduces every prediction bit
      for bit: serving *is* the training stack, not a lookalike;
    * **credit conservation** — per tenant, targets spent never exceed
      burst + refilled, and equal the accepted requests' target total;
    * **stats isolation** — the session observed the canonical stage
      keys on its own monitor and counted kernel work on its own
      counters.
    """
    session, responses, sheds = run_serving_audit(
        dataset, train_cfg, sys_cfg, config=config, script=script,
        **audit_kwargs)

    # Outcome partition over submitted ids.
    ids = [r.request_id for r in responses] + \
        [s.request_id for s in sheds]
    assert sorted(ids) == list(range(len(script))), \
        "responses + sheds must partition the submitted requests"

    from repro.serving import SHED_REASONS
    for shed in sheds:
        assert shed.reason in SHED_REASONS

    # Batch integrity: group accepted requests by the batch that
    # served them, in flush order.
    by_batch: dict[int, list] = {}
    for r in responses:
        by_batch.setdefault(r.batch_seq, []).append(r)
    assert len(by_batch) == session.batcher.flushed_batches
    assert sum(len(v) for v in by_batch.values()) == \
        session.report.completed == session.report.accepted

    # Bit-identical stack: a reference pipeline built from the same
    # seeds replays each executed batch's unique target set in flush
    # order and must reproduce every prediction exactly.
    ref_sampler = build_sampler(
        train_cfg.sampler, dataset.graph, dataset.train_ids,
        train_cfg, dataset.spec.feature_dim)
    ref_pipeline = StagePipeline(ref_sampler, dataset.features,
                                 dataset.labels,
                                 sys_cfg.transfer_precision)
    dims = layer_dims(dataset.spec.feature_dim, train_cfg.hidden_dim,
                      dataset.spec.num_classes, train_cfg.num_layers)
    ref_model = build_model(train_cfg.model, dims, train_cfg.seed)
    script_targets = {i: t for i, (t, _) in enumerate(script)}
    for seq in sorted(by_batch):
        batch_rs = sorted(by_batch[seq],
                          key=lambda r: r.request_id)
        concat = np.concatenate(
            [script_targets[r.request_id] for r in batch_rs])
        unique, inverse = np.unique(concat, return_inverse=True)
        prepared = ref_pipeline.prepare(unique, config.device,
                                        with_labels=False)
        logits = ref_model.forward(prepared.mb, prepared.x0,
                                   dataset.graph.out_degrees)
        want = np.argmax(logits, axis=1)[inverse]
        offset = 0
        for r in batch_rs:
            n = script_targets[r.request_id].size
            np.testing.assert_array_equal(
                r.predictions, want[offset:offset + n],
                err_msg=f"request {r.request_id} (batch {seq}): "
                        "serving predictions diverge from the "
                        "reference stack")
            offset += n

    # Credit conservation (when credits are enabled).
    accepted_by_tenant: dict[str, int] = {}
    for r in responses:
        accepted_by_tenant[r.tenant] = \
            accepted_by_tenant.get(r.tenant, 0) + \
            script_targets[r.request_id].size
    for tenant, row in session.credits.ledger().items():
        assert row["spent_targets"] <= row["burst_targets"] + \
            row["refilled_targets"] + 1e-6, \
            f"tenant {tenant!r} spent more credits than it was issued"
        assert row["spent_targets"] == \
            accepted_by_tenant.get(tenant, 0), \
            (f"tenant {tenant!r} ledger disagrees with the accepted "
             "request total")

    # Stats landed on the session's own handles.
    if responses:
        assert set(session.monitor.stages()) == \
            {"sample", "load", "transfer", "propagate"}
        assert session.counters.snapshot().get("gather_rows", 0) > 0
