"""Semantic-equivalence tests (the paper's central correctness claim).

HyScale-GNN's optimizations "do not alter the semantics of the GNN
training algorithm; thus, the convergence rate and model accuracy remain
the same as the original sequential algorithm" (paper §I, §IV). These
tests prove the claim for our implementation:

* synchronous multi-trainer SGD with batch-size-weighted gradient
  averaging produces *bit-comparable* updates to single-trainer
  large-batch SGD on the union batch;
* trainer count, DRM work-splitting, and prefetching leave the functional
  results unchanged.
"""

import numpy as np
import pytest

from repro.config import layer_dims
from repro.nn.loss import softmax_cross_entropy
from repro.nn.models import build_model
from repro.nn.optim import SGD
from repro.runtime.synchronizer import GradientSynchronizer


def _batches(tiny_ds, tiny_sampler, sizes, seed=3):
    """Disjoint target batches of the given sizes."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(tiny_ds.train_ids)
    out, cursor = [], 0
    for s in sizes:
        out.append(perm[cursor:cursor + s])
        cursor += s
    return out


def _forward_backward(model, sampler, ds, targets):
    mb = sampler.sample(targets)
    x0 = ds.features[mb.input_nodes].astype(np.float64)
    labels = ds.labels[mb.targets]
    model.zero_grad()
    logits = model.forward(mb, x0, ds.graph.out_degrees)
    loss, dl = softmax_cross_entropy(logits, labels)
    model.backward(dl)
    return loss


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
def test_weighted_allreduce_equals_union_batch_gradient(
        tiny_ds, tiny_sampler, model_name):
    """n trainers + weighted average == one trainer on the union batch.

    The sampled neighborhoods must match, so the single trainer's union
    "batch" is emulated by summing weighted per-batch gradients computed
    with the *same* sampler draws — the identity the synchronizer
    implements. We verify against an explicit recomputation.
    """
    dims = layer_dims(tiny_ds.spec.feature_dim, 8,
                      tiny_ds.spec.num_classes, 2)
    sizes = [8, 16, 24]
    batches = _batches(tiny_ds, tiny_sampler, sizes)

    # --- reference: accumulate weighted gradients manually ---
    ref = build_model(model_name, dims, seed=42)
    total = sum(sizes)
    acc = np.zeros(ref.num_params)
    # Use a fresh sampler per run with the same seed so draws coincide.
    from repro.sampling.neighbor import NeighborSampler
    s1 = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (4, 3),
                         tiny_ds.spec.feature_dim, seed=99)
    for batch, size in zip(batches, sizes):
        _forward_backward(ref, s1, tiny_ds, batch)
        acc += (size / total) * ref.get_flat_grads()

    # --- system under test: replicas + synchronizer ---
    replicas = [build_model(model_name, dims, seed=42)
                for _ in sizes]
    sync = GradientSynchronizer(replicas, weighting="batch")
    s2 = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (4, 3),
                         tiny_ds.spec.feature_dim, seed=99)
    for model, batch in zip(replicas, batches):
        _forward_backward(model, s2, tiny_ds, batch)
    avg = sync.all_reduce(batch_sizes=sizes)

    assert np.allclose(avg, acc, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("model_name", ["gcn", "sage"])
def test_multi_trainer_step_equals_large_batch_step(
        tiny_ds, model_name):
    """After an optimizer step, replicas match the large-batch model."""
    from repro.sampling.neighbor import NeighborSampler
    dims = layer_dims(tiny_ds.spec.feature_dim, 8,
                      tiny_ds.spec.num_classes, 2)
    sizes = [16, 16]
    lr = 0.1

    # Large-batch reference: gradients of both batches averaged equally
    # (equal sizes), then one step.
    ref = build_model(model_name, dims, seed=7)
    s1 = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (4, 3),
                         tiny_ds.spec.feature_dim, seed=31)
    batches = _batches(tiny_ds, s1, sizes, seed=5)
    grads = []
    for b in batches:
        _forward_backward(ref, s1, tiny_ds, b)
        grads.append(ref.get_flat_grads())
    ref.set_flat_grads(np.mean(grads, axis=0))
    SGD(ref, lr=lr).step()

    # Hybrid path.
    replicas = [build_model(model_name, dims, seed=7) for _ in sizes]
    sync = GradientSynchronizer(replicas, weighting="batch")
    opts = [SGD(m, lr=lr) for m in replicas]
    s2 = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (4, 3),
                         tiny_ds.spec.feature_dim, seed=31)
    batches2 = _batches(tiny_ds, s2, sizes, seed=5)
    for m, b in zip(replicas, batches2):
        _forward_backward(m, s2, tiny_ds, b)
    sync.all_reduce(batch_sizes=sizes)
    for o in opts:
        o.step()

    for m in replicas:
        assert np.allclose(m.get_flat_params(), ref.get_flat_params(),
                           rtol=1e-10, atol=1e-12)


def test_replicas_stay_consistent_over_epochs(tiny_ds, small_cfg,
                                              fpga_platform):
    """End-to-end: after functional epochs all replicas are identical."""
    from repro.runtime.hybrid import HyScaleGNN
    system = HyScaleGNN(tiny_ds, fpga_platform, small_cfg,
                        profile_probes=2)
    system.train(epochs=2, max_iterations=4)
    assert system.synchronizer.replicas_consistent(atol=1e-9)


def test_training_reduces_loss(tiny_ds, fpga_platform):
    """Functional hybrid training learns (loss decreases over epochs)."""
    from repro.config import TrainingConfig
    from repro.runtime.hybrid import HyScaleGNN
    cfg = TrainingConfig(model="sage", minibatch_size=48,
                         fanouts=(5, 4), hidden_dim=24,
                         learning_rate=0.1, seed=2)
    system = HyScaleGNN(tiny_ds, fpga_platform, cfg, profile_probes=2)
    reports = system.train(epochs=6)
    first = np.mean(reports[0].losses)
    last = np.mean(reports[-1].losses)
    assert last < first


def test_prefetch_flag_does_not_change_functional_results(tiny_ds,
                                                          small_cfg,
                                                          fpga_platform):
    """TFP changes timing only: losses identical with and without."""
    from repro.config import SystemConfig
    from repro.runtime.hybrid import HyScaleGNN

    def run(prefetch, split=None):
        sys_cfg = SystemConfig(hybrid=True, drm=False,
                               prefetch=prefetch)
        system = HyScaleGNN(tiny_ds, fpga_platform, small_cfg, sys_cfg,
                            profile_probes=2)
        if split is not None:
            system.split = split   # identical batch partitioning
        rep = system.train_epoch(max_iterations=4)
        return rep.losses, rep.epoch_time_s, system.split

    losses_on, time_on, split = run(True)
    losses_off, time_off, _ = run(False, split=split)
    assert np.allclose(losses_on, losses_off)
    assert time_on <= time_off   # pipelining can only help virtual time
