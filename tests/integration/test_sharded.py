"""The sharded plane's own conformance sweep and interconnect audit.

``test_backend_equivalence.py`` already conforms ``sharded`` under its
default knobs (bfs partition, no cache) across every conformance case —
the kit reads the live registry. This module adds what the multi-node
plane specifically owes:

* the statistical matrix (including the kit's cross-node shard
  assertion) under **both** partition maps and with the remote cache
  on — partition-mapped dealing must conform however the partition
  looks;
* the dealer's apportionment arithmetic in isolation, including the
  empty-shard edge a ``num_parts > num_vertices``-style map produces;
* the interconnect accounting: per-minibatch local/remote gather bytes
  in :attr:`ShardedReport.shard_io` that reconcile exactly with the
  run-total counters in ``report.kernel_stats``, and the locality
  pin — on a clustered (power-law) graph, bfs partitioning plus a
  degree-aware remote cache must move strictly fewer remote bytes
  than hash partitioning with no cache (the regression pin on the
  whole reason this plane exists).
"""

import numpy as np
import pytest

from backend_conformance import (
    CONFORMANCE_CASES,
    assert_backend_conforms,
    run_backend,
)
from repro.errors import ConfigError, ProtocolError
from repro.graph.shard_map import ShardMap
from repro.kernels import format_shard_io
from repro.runtime import ShardedBackend, TrainingSession
from repro.runtime.backends.sharded import ShardPlan, _apportion
from repro.runtime.core import BatchPlan
from repro.runtime.shm import SharedFeatureStore, SharedShardSpec

_CASE_IDS = [c.id for c in CONFORMANCE_CASES]

#: The knob sweep: worst-case-locality hash map without a cache, and
#: the locality-aware map with the degree-aware cache on.
_SWEEP = (
    {"partitioner": "hash", "remote_cache_rows": 0},
    {"partitioner": "bfs", "remote_cache_rows": 64},
)
_SWEEP_IDS = ["hash-nocache", "bfs-cache"]


class TestShardedConformance:
    @pytest.mark.parametrize("knobs", _SWEEP, ids=_SWEEP_IDS)
    @pytest.mark.parametrize("case", CONFORMANCE_CASES, ids=_CASE_IDS)
    def test_conforms_under_both_partition_maps(self, case, knobs,
                                                tiny_ds):
        assert_backend_conforms("sharded", case, tiny_ds,
                                extra_kwargs=knobs)

    def test_rejects_bad_knobs(self, tiny_ds, small_cfg):
        from repro.config import SystemConfig
        session = TrainingSession(
            tiny_ds, small_cfg, SystemConfig(hybrid=True, drm=False),
            num_trainers=2)
        with pytest.raises(ConfigError):
            ShardedBackend(session, partitioner="metis")
        with pytest.raises(ConfigError):
            ShardedBackend(session, remote_cache_rows=-1)


class TestShardPlan:
    def _plan(self, n, counts, seed=0):
        rng = np.random.default_rng(seed)
        return BatchPlan(np.arange(n, dtype=np.int64),
                         lambda: counts, rng)

    def test_matches_reference_iteration_arithmetic(self):
        """The partition-mapped dealer must take exactly the reference
        plan's per-iteration budget off an unbalanced partition, so a
        full epoch lasts exactly ``ceil(train / total)`` iterations."""
        n, counts = 100, [16, 16]
        parts = np.zeros(n, dtype=np.int64)
        parts[70:] = 1                    # 70/30 split, budget 16+16
        plan = self._plan(n, counts)
        sharded = ShardPlan(plan, parts, 2)
        seen = []
        for it, planned in sharded.iterate(-(-n // sum(counts))):
            assert planned.total_targets == min(
                sum(counts), n - len(seen))
            for k, a in enumerate(planned.assignments):
                if a is not None:
                    assert (parts[a] == k).all()
                    seen.extend(a.tolist())
        assert sorted(seen) == list(range(n))
        assert plan.epochs_started == 1

    def test_empty_shard_gets_none_assignments(self):
        parts = np.zeros(10, dtype=np.int64)   # shard 1 owns nothing
        plan = self._plan(10, [4, 4])
        sharded = ShardPlan(plan, parts, 2)
        for _, planned in sharded.iterate(2):
            assert planned.assignments[1] is None
            assert planned.assignments[0] is not None

    def test_zero_quota_epoch_raises(self):
        plan = self._plan(10, [0, 0])
        sharded = ShardPlan(plan, np.zeros(10, dtype=np.int64), 2)
        with pytest.raises(ProtocolError):
            list(sharded.iterate(1))

    def test_apportion_conserves_and_respects_remaining(self):
        rng = np.random.default_rng(2)
        for _ in range(200):
            remaining = rng.integers(0, 50, size=rng.integers(1, 6))
            total = int(remaining.sum())
            take = int(rng.integers(0, total + 5)) if total else 0
            quotas = _apportion(take, remaining)
            assert quotas.sum() == min(take, total)
            assert (quotas <= remaining).all()
            assert (quotas >= 0).all()


class TestShardIOAccounting:
    @pytest.fixture(scope="class")
    def reports(self, tiny_ds):
        """One run per sweep arm on the functional case (class-scoped:
        the pin and the reconciliation tests share them)."""
        case = CONFORMANCE_CASES[1]      # functional-hybrid, full epoch
        _, hash_rep = run_backend("sharded", case, tiny_ds,
                                  _SWEEP[0])
        _, bfs_rep = run_backend("sharded", case, tiny_ds, _SWEEP[1])
        return hash_rep, bfs_rep

    def test_report_exposes_per_minibatch_io(self, reports, tiny_ds):
        _, rep = reports
        assert rep.shard_io, "sharded report carries no io records"
        row_bytes = (tiny_ds.features.dtype.itemsize
                     * tiny_ds.features.shape[1])
        for rec in rep.shard_io:
            assert rec["local_bytes"] == rec["local_rows"] * row_bytes
            assert rec["remote_bytes"] == \
                rec["remote_rows"] * row_bytes
            assert rec["cache_hits"] >= 0
            assert 0 <= rec["iteration"] < rep.iterations
            assert 0 <= rec["worker"] < rep.num_workers

    def test_totals_reconcile_with_kernel_stats(self, reports):
        """Per-minibatch records and the workers' counter deltas are
        independently sourced; they must tell the same story."""
        for rep in reports:
            assert rep.local_gather_bytes == \
                sum(r["local_bytes"] for r in rep.shard_io)
            assert rep.remote_gather_bytes == \
                sum(r["remote_bytes"] for r in rep.shard_io)
            ks = rep.kernel_stats
            assert ks["remote_cache_misses"] + \
                ks.get("remote_cache_hits", 0) == \
                sum(r["remote_rows"] + r["cache_hits"]
                    for r in rep.shard_io)
            # The resolver keeps the standard gather books too, so the
            # bench's "kernel io" column stays meaningful.
            assert ks["gather_src_bytes"] > 0
            assert format_shard_io(ks, rep.iterations) != "-"

    def test_bfs_with_cache_beats_hash_without(self, reports):
        """The locality pin: on a clustered generator graph the
        bfs partition plus the degree-aware cache must move strictly
        fewer remote bytes than hash partitioning with no cache."""
        hash_rep, bfs_rep = reports
        assert hash_rep.remote_cache_hit_rate == 0.0
        assert bfs_rep.remote_cache_hit_rate > 0.0
        assert bfs_rep.remote_gather_bytes < hash_rep.remote_gather_bytes

    def test_non_sharded_stats_render_dash(self):
        assert format_shard_io({}) == "-"
        assert format_shard_io({"gather_src_bytes": 10}) == "-"


class TestShardedStore:
    def test_shard_major_layout_round_trips(self, tiny_ds):
        parts = np.arange(tiny_ds.graph.num_vertices,
                          dtype=np.int64) % 3
        smap = ShardMap.from_partition(parts, num_shards=3)
        store = SharedFeatureStore.create(tiny_ds, shard_map=smap)
        try:
            assert store.is_sharded
            rebuilt = store.shard_map()
            np.testing.assert_array_equal(rebuilt.parts, parts)
            np.testing.assert_array_equal(
                store.features[rebuilt.shard_row], tiny_ds.features)
            np.testing.assert_array_equal(
                store.labels[rebuilt.shard_row], tiny_ds.labels)
            # Topology stays globally indexed.
            np.testing.assert_array_equal(store.indptr,
                                          tiny_ds.graph.indptr)
            assert store.manifest.shard.num_shards == 3
            del rebuilt
        finally:
            store.close()
            store.unlink()

    def test_shard_spec_requires_map(self, tiny_ds):
        with pytest.raises(ProtocolError):
            SharedFeatureStore.create(
                tiny_ds, shard_spec=SharedShardSpec(num_shards=2))

    def test_plain_store_is_not_sharded(self, tiny_ds):
        store = SharedFeatureStore.create(tiny_ds)
        try:
            assert not store.is_sharded
            with pytest.raises(ProtocolError):
                store.shard_map()
        finally:
            store.close()
            store.unlink()
