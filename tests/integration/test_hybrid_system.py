"""Integration tests for the HyScaleGNN system and ablation behaviour."""

import numpy as np
import pytest

from repro.config import (
    ABLATION_PRESETS,
    SystemConfig,
    TrainingConfig,
)
from repro.errors import ConfigError
from repro.graph.datasets import load_dataset
from repro.hw.topology import (
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
)
from repro.runtime.hybrid import HyScaleGNN


@pytest.fixture(scope="module")
def papers_small():
    return load_dataset("papers100m", scale=1 / 8192, seed=0)


@pytest.fixture(scope="module")
def sim_cfg():
    return TrainingConfig(model="gcn", minibatch_size=256,
                          fanouts=(10, 5), hidden_dim=64, seed=4)


@pytest.fixture(scope="module")
def func_cfg():
    """Small batches so the scaled train set spans several iterations."""
    return TrainingConfig(model="gcn", minibatch_size=16,
                          fanouts=(10, 5), hidden_dim=64, seed=4)


class TestConstruction:
    def test_builds_trainers(self, papers_small, sim_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            sim_cfg, profile_probes=2)
        # hybrid default: CPU + 2 accelerators.
        assert system.num_trainers == 3
        kinds = [t.kind for t in system.trainers]
        assert kinds == ["cpu", "accel", "accel"]
        assert system.synchronizer.replicas_consistent()

    def test_non_hybrid_has_no_cpu_trainer(self, papers_small, sim_cfg):
        system = HyScaleGNN(
            papers_small, hyscale_cpu_fpga_platform(2), sim_cfg,
            SystemConfig(hybrid=False, drm=False, prefetch=False),
            profile_probes=2)
        assert system.num_trainers == 2
        assert system.split.cpu_targets == 0

    def test_no_accel_no_hybrid_rejected(self, papers_small, sim_cfg):
        with pytest.raises(ConfigError):
            HyScaleGNN(papers_small,
                       hyscale_cpu_fpga_platform(4).with_accelerators(0),
                       sim_cfg,
                       SystemConfig(hybrid=False, drm=False,
                                    prefetch=False))


class TestFunctionalEpoch:
    def test_epoch_report_fields(self, papers_small, func_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            func_cfg, profile_probes=2)
        rep = system.train_epoch(max_iterations=3)
        assert rep.mode == "functional"
        assert rep.iterations == 3
        assert rep.epoch_time_s > 0
        assert len(rep.losses) == 3
        assert len(rep.stage_history) == 3
        assert rep.total_edges > 0
        assert rep.throughput_mteps > 0
        assert rep.bottleneck_stage() in ("sample", "load", "transfer",
                                          "propagate")

    def test_epoch_covers_train_set(self, papers_small, func_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            func_cfg, profile_probes=2)
        rep = system.train_epoch()
        covered = rep.iterations * system.split.total_targets
        assert covered >= papers_small.train_ids.size


class TestSimulatedEpoch:
    def test_full_scale_iteration_count(self, papers_small, sim_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            sim_cfg, full_scale=True, profile_probes=2)
        rep = system.simulate_epoch()
        expected = -(-papers_small.spec.train_count //
                     system.split.total_targets)
        assert rep.iterations == pytest.approx(expected, abs=2)
        assert rep.mode == "simulated"

    def test_deterministic_without_jitter(self, papers_small, sim_cfg):
        def run():
            system = HyScaleGNN(papers_small,
                                hyscale_cpu_fpga_platform(2), sim_cfg,
                                full_scale=True, profile_probes=2)
            return system.simulate_epoch(jitter=False,
                                         iterations=20).epoch_time_s
        assert run() == pytest.approx(run())

    def test_predicted_close_to_simulated(self, papers_small):
        """Fig. 8 invariant: at the paper's batch size (1024) the model
        error stays within ~20% (paper reports 5-14%)."""
        cfg = TrainingConfig(model="gcn", minibatch_size=1024,
                             fanouts=(10, 5), hidden_dim=64, seed=4)
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            cfg, full_scale=True, profile_probes=2)
        actual = system.simulate_epoch().epoch_time_s
        predicted = system.predicted_epoch_time()
        err = abs(actual - predicted) / actual
        assert err < 0.20

    def test_prediction_underestimates(self, papers_small, sim_cfg):
        """The analytic model omits only *costs* (launches, fill,
        stragglers), so it must not exceed the simulated time by more
        than jitter noise."""
        system = HyScaleGNN(papers_small, hyscale_cpu_fpga_platform(2),
                            sim_cfg, full_scale=True, profile_probes=2)
        actual = system.simulate_epoch(jitter=False).epoch_time_s
        predicted = system.predicted_epoch_time()
        assert predicted <= actual * 1.02


class TestAblationShape:
    @pytest.mark.parametrize("platform_factory", [
        hyscale_cpu_fpga_platform, hyscale_cpu_gpu_platform])
    def test_tfp_always_helps(self, papers_small, sim_cfg,
                              platform_factory):
        """Fig. 11: adding TFP to hybrid+DRM never slows the epoch."""
        times = {}
        for name in ("hybrid_drm", "hybrid_drm_tfp"):
            system = HyScaleGNN(papers_small, platform_factory(2),
                                sim_cfg, ABLATION_PRESETS[name],
                                full_scale=True, profile_probes=2)
            times[name] = system.simulate_epoch(
                iterations=60).epoch_time_s
        assert times["hybrid_drm_tfp"] < times["hybrid_drm"]

    def test_drm_never_hurts_much(self, papers_small, sim_cfg):
        """The revert guard bounds DRM regressions vs static."""
        times = {}
        for name in ("hybrid_static", "hybrid_drm"):
            system = HyScaleGNN(papers_small,
                                hyscale_cpu_gpu_platform(2), sim_cfg,
                                ABLATION_PRESETS[name],
                                full_scale=True, profile_probes=2)
            times[name] = system.simulate_epoch(
                iterations=120).epoch_time_s
        assert times["hybrid_drm"] <= times["hybrid_static"] * 1.10

    def test_fpga_beats_gpu_hybrid(self, papers_small, sim_cfg):
        """Fig. 10's headline: CPU-FPGA beats CPU-GPU at equal count."""
        times = {}
        for plat in (hyscale_cpu_fpga_platform(4),
                     hyscale_cpu_gpu_platform(4)):
            system = HyScaleGNN(papers_small, plat, sim_cfg,
                                ABLATION_PRESETS["hybrid_drm_tfp"],
                                full_scale=True, profile_probes=2)
            times[plat.accelerator.kind] = \
                system.simulate_epoch(iterations=80).epoch_time_s
        assert times["fpga"] < times["gpu"]


class TestDRMIntegration:
    def test_drm_preserves_total_workload(self, papers_small, sim_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_gpu_platform(2),
                            sim_cfg, ABLATION_PRESETS["hybrid_drm_tfp"],
                            full_scale=True, profile_probes=2)
        before = system.split.total_targets
        system.simulate_epoch(iterations=80)
        assert system.split.total_targets == before

    def test_drm_decisions_recorded(self, papers_small, sim_cfg):
        system = HyScaleGNN(papers_small, hyscale_cpu_gpu_platform(2),
                            sim_cfg, ABLATION_PRESETS["hybrid_drm_tfp"],
                            full_scale=True, profile_probes=2)
        system.simulate_epoch(iterations=40)
        assert system.drm is not None
        assert len(system.drm.decisions) == 40
