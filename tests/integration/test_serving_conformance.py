"""The serving conformance tier, plus the two-session stats-isolation
regression.

``backend_conformance.assert_serving_conforms`` is the serving-plane
counterpart of the training parity matrix: every submitted request
gets exactly one outcome, executed batches reproduce a reference
replay of the shared :class:`StagePipeline` + model **bit for bit**,
per-tenant credits conserve, and stats land on session-scoped handles.
This module runs that matrix over the interesting configurations, and
pins the regression the scoped handles exist for: a training session
and a serving session running *concurrently* must not interleave
kernel counters or stage monitors.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from backend_conformance import (
    assert_serving_conforms,
    default_serving_script,
)
from repro.config import SystemConfig, TrainingConfig
from repro.runtime import TrainingSession, build_backend
from repro.runtime.resctl import NodeAllocator
from repro.serving import ServingConfig, ServingSession, VirtualClock


class TestServingConformance:
    def test_accel_int8_stack(self, tiny_ds, small_cfg):
        """The flagship serving stack: fused gather+int8 quantize on
        the accel transfer path, credits disabled."""
        assert_serving_conforms(
            tiny_ds, small_cfg,
            SystemConfig(transfer_precision="int8"),
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=16,
                                 max_pending_requests=64,
                                 device="accel"),
            script=default_serving_script(tiny_ds))

    def test_cpu_fp32_stack_with_tight_credits(self, tiny_ds,
                                               small_cfg):
        """CPU transfer path (identity policy) under a credit bucket
        tight enough that the audit sees real ``no_credit`` sheds —
        conservation must still hold."""
        assert_serving_conforms(
            tiny_ds, small_cfg, SystemConfig(),
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=16,
                                 max_pending_requests=64,
                                 credit_rate_targets_per_s=200.0,
                                 credit_burst_targets=24,
                                 device="cpu"),
            script=default_serving_script(tiny_ds, num_requests=60))

    def test_tiny_queue_sheds_queue_full_without_drops(self, tiny_ds,
                                                       small_cfg):
        """A one-slot admission queue sheds most of the script as
        ``queue_full``; the partition/bit-parity matrix must hold for
        whatever was accepted."""
        assert_serving_conforms(
            tiny_ds, small_cfg, SystemConfig(),
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=16,
                                 max_pending_requests=1,
                                 device="cpu"),
            script=default_serving_script(tiny_ds),
            step_every=1)

    def test_saint_sampler_stack(self, tiny_ds):
        """The conformance matrix is sampler-agnostic: a non-neighbor
        sampler behind the same registry surface must pass it too."""
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11,
                             sampler="saint-rw")
        assert_serving_conforms(
            tiny_ds, cfg, SystemConfig(),
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=16,
                                 device="cpu"),
            script=default_serving_script(tiny_ds, num_requests=24))


class TestTwoSessionStatsIsolation:
    """The regression the session-scoped handles exist for: concurrent
    sessions must not interleave each other's stats."""

    def _train(self, tiny_ds, small_cfg):
        session = TrainingSession(tiny_ds, small_cfg,
                                  SystemConfig(hybrid=True, drm=False),
                                  num_trainers=2)
        backend = build_backend("threaded", session, timeout_s=30.0)
        report = backend.run_epoch(4)
        return backend, report

    def test_concurrent_training_and_serving_do_not_interleave(
            self, tiny_ds, small_cfg):
        # Solo training run: the kernel-stats baseline.
        _, solo = self._train(tiny_ds, small_cfg)

        # Same training run again, now with a serving session churning
        # on another thread for its whole duration.
        clock = VirtualClock()
        serving = ServingSession(
            tiny_ds, small_cfg, SystemConfig(),
            config=ServingConfig(latency_budget_s=0.2,
                                 max_batch_targets=8, device="cpu"),
            allocator=NodeAllocator(depth_budget=8), clock=clock)
        stop = threading.Event()
        rng = np.random.default_rng(2)

        def serve_loop():
            while not stop.is_set():
                serving.submit(rng.choice(tiny_ds.train_ids, size=4,
                                          replace=False))
                clock.advance(0.05)
                serving.step()
            clock.advance(1.0)
            serving.drain()

        thread = threading.Thread(target=serve_loop, daemon=True)
        thread.start()
        try:
            backend, concurrent = self._train(tiny_ds, small_cfg)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        report = serving.close()

        # Training's counters saw none of serving's work: identical
        # stats to the solo run, bit for bit.
        assert concurrent.kernel_stats == solo.kernel_stats
        np.testing.assert_array_equal(solo.losses, concurrent.losses)

        # Serving's counters saw exactly its own work.
        assert report.completed == report.accepted > 0
        assert report.kernel_stats.get("gather_rows", 0) > 0
        assert serving.counters is not backend.counters
        assert serving.monitor is not backend.monitor
        # Each batch observed each canonical stage once on serving's
        # own monitor.
        batches = len(report.batch_sizes)
        for stage in ("sample", "load", "transfer", "propagate"):
            assert serving.monitor.count(stage) == batches
