"""Worker-side sampling units: per-worker RNG streams, shm-backed
sampler rebuild, and the plan-sharding partition property.

The worker-sampling backend's correctness rests on three legs the
integration matrix cannot isolate:

* seed derivation — worker ``k``'s stream is a pure function of
  ``(base_seed, k)``: deterministic across runs, independent of how
  many workers exist, and disjoint from the parent session's streams;
* sampler rebuild — a worker's sampler over the shared store draws
  identically to a fresh rebuild (restartability) and samples against
  the *shared* topology zero-copy;
* plan sharding — the per-trainer target shards of an epoch partition
  the epoch permutation exactly (hypothesis property).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TrainingConfig
from repro.errors import SamplingError
from repro.runtime.core import BatchPlan
from repro.runtime.shm import SharedFeatureStore, SharedSamplerSpec
from repro.sampling import build_worker_sampler, worker_stream_seed

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------

class TestWorkerStreamSeed:
    def test_deterministic(self):
        assert worker_stream_seed(11, 3) == worker_stream_seed(11, 3)

    def test_distinct_across_workers_and_bases(self):
        seeds = {worker_stream_seed(base, idx)
                 for base in (0, 1, 11, 997) for idx in range(8)}
        assert len(seeds) == 4 * 8

    def test_independent_of_worker_count(self):
        """Worker k's seed is a function of (base, k) only — adding or
        removing other workers cannot move it (the stream-independence
        contract the backend's determinism rests on)."""
        solo = [worker_stream_seed(11, k) for k in range(2)]
        crowd = [worker_stream_seed(11, k) for k in range(16)]
        assert crowd[:2] == solo

    def test_disjoint_from_session_streams(self):
        """The parent session seeds its sampler / profile / plan RNGs
        with base, base+1, base+2; derived worker seeds must not
        collide with any of them."""
        for base in (0, 7, 11, 123456):
            session_seeds = {base, base + 1, base + 2}
            for k in range(8):
                assert worker_stream_seed(base, k) not in session_seeds

    def test_negative_index_rejected(self):
        with pytest.raises(SamplingError):
            worker_stream_seed(11, -1)


# ---------------------------------------------------------------------------
# Shm-backed sampler rebuild
# ---------------------------------------------------------------------------

@pytest.fixture()
def shared_store(tiny_ds):
    cfg = TrainingConfig(model="sage", minibatch_size=32,
                         fanouts=(4, 3), hidden_dim=16,
                         learning_rate=0.05, seed=11)
    spec = SharedSamplerSpec(train_cfg=cfg,
                             feature_dim=tiny_ds.spec.feature_dim)
    with SharedFeatureStore.create(tiny_ds, sampler_spec=spec) as store:
        yield store


def _draws(sampler, targets, n=3):
    """Materialize n successive batches as comparable tuples."""
    out = []
    for _ in range(n):
        mb = sampler.sample(targets)
        out.append((tuple(ids.tolist() for ids in mb.node_ids),
                    tuple((b.src_local.tolist(), b.dst_local.tolist())
                          for b in mb.blocks)))
    return out


class TestBuildWorkerSampler:
    def test_rebuild_is_deterministic(self, shared_store, tiny_ds):
        targets = tiny_ds.train_ids[:8]
        a = build_worker_sampler(shared_store, 0)
        b = build_worker_sampler(shared_store, 0)
        assert _draws(a, targets) == _draws(b, targets)

    def test_workers_draw_from_distinct_streams(self, shared_store,
                                                tiny_ds):
        targets = tiny_ds.train_ids[:8]
        d0 = _draws(build_worker_sampler(shared_store, 0), targets)
        d1 = _draws(build_worker_sampler(shared_store, 1), targets)
        assert d0 != d1

    def test_worker_stream_unmoved_by_other_workers(self, shared_store,
                                                    tiny_ds):
        """Worker 0's draws are identical whether worker 1 exists and
        samples or not — streams are independent, not interleaved."""
        targets = tiny_ds.train_ids[:8]
        alone = _draws(build_worker_sampler(shared_store, 0), targets)
        w0 = build_worker_sampler(shared_store, 0)
        w1 = build_worker_sampler(shared_store, 1)
        _draws(w1, targets)               # worker 1 consumes its stream
        assert _draws(w0, targets) == alone

    def test_samples_shared_topology_zero_copy(self, shared_store):
        """The rebuilt sampler's graph views the segment directly —
        nothing graph-sized was copied into the worker."""
        sampler = build_worker_sampler(shared_store, 0)
        assert np.shares_memory(sampler.graph.indices,
                                shared_store.indices)
        assert np.shares_memory(sampler.graph.indptr,
                                shared_store.indptr)
        np.testing.assert_array_equal(sampler.train_ids,
                                      shared_store.train_ids)

    def test_store_without_spec_rejected(self, tiny_ds):
        with SharedFeatureStore.create(tiny_ds) as store:
            with pytest.raises(SamplingError):
                build_worker_sampler(store, 0)

    def test_manifest_spec_survives_pickle(self, shared_store):
        """The spec crosses the process boundary inside the manifest —
        the wire form must round-trip."""
        import pickle
        manifest = pickle.loads(pickle.dumps(shared_store.manifest))
        assert manifest.sampler == shared_store.manifest.sampler
        assert manifest.sampler.train_cfg.sampler == "neighbor"


# ---------------------------------------------------------------------------
# Plan sharding partitions the permutation (hypothesis)
# ---------------------------------------------------------------------------

@st.composite
def shard_inputs(draw, max_train=200, max_trainers=5, max_quota=40):
    n = draw(st.integers(1, max_train))
    start = draw(st.integers(0, 1000))
    train_ids = start + np.arange(n, dtype=np.int64)
    k = draw(st.integers(1, max_trainers))
    quotas = draw(st.lists(st.integers(0, max_quota), min_size=k,
                           max_size=k).filter(lambda q: sum(q) > 0))
    seed = draw(st.integers(0, 10**6))
    return train_ids, quotas, seed


class TestShardPartitionProperty:
    @common_settings
    @given(shard_inputs())
    def test_shards_partition_epoch_permutation_exactly(self, data):
        """The target shards the parent deals to workers, concatenated
        in dispatch order, ARE the epoch permutation — order included.
        Worker-side sampling changes where neighbor draws happen, never
        which targets a worker trains."""
        train_ids, quotas, seed = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        dealt = [a for it in plan.start_epoch()
                 for a in it.assignments if a is not None]
        expected_perm = np.random.default_rng(seed).permutation(
            train_ids)
        np.testing.assert_array_equal(np.concatenate(dealt),
                                      expected_perm)

    @common_settings
    @given(shard_inputs())
    def test_per_worker_shards_are_disjoint(self, data):
        """No target is dealt to two workers within an epoch — the
        no-double-training half of the partition property, per worker
        rather than per iteration."""
        train_ids, quotas, seed = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        per_worker: dict[int, list[np.ndarray]] = {}
        for it in plan.start_epoch():
            for idx, a in enumerate(it.assignments):
                if a is not None:
                    per_worker.setdefault(idx, []).append(a)
        unions = [np.concatenate(chunks)
                  for chunks in per_worker.values()]
        flat = np.concatenate(unions)
        assert np.unique(flat).size == flat.size
        np.testing.assert_array_equal(np.sort(flat), train_ids)
