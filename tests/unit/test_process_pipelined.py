"""Fused-plane units: the bounded look-ahead dealer and its
partition/bound invariants, plus the overlap report and the manifest's
prefetch spec.

The fused backend's correctness rests on sequencing logic that the
integration matrix exercises but cannot isolate: the
:class:`~repro.runtime.LookaheadDealer` window that deals plan shards
ahead of synchronization. Its contract — dealing ahead changes *when*
shards are dealt, never *which* or in what order, and the in-flight
count never exceeds the adaptive cap — is pinned here as hypothesis
properties over random quota/seed/depth schedules.
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.runtime import LookaheadDealer
from repro.runtime.backends.process_pipelined import (
    ProcessPipelinedReport,
    WORKER_STAGES,
)
from repro.runtime.backends.pipelined import StageStats
from repro.runtime.core import BatchPlan
from repro.runtime.shm import SharedPrefetchSpec

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def dealer_inputs(draw, max_train=200, max_trainers=5, max_quota=40,
                  max_cap=6):
    """A plan configuration plus a random adaptive-depth schedule."""
    n = draw(st.integers(1, max_train))
    train_ids = np.arange(n, dtype=np.int64)
    k = draw(st.integers(1, max_trainers))
    quotas = draw(st.lists(st.integers(0, max_quota), min_size=k,
                           max_size=k).filter(lambda q: sum(q) > 0))
    seed = draw(st.integers(0, 10**6))
    cap = draw(st.integers(1, max_cap))
    # One candidate depth per retirement; the dealer is resized with
    # the next schedule entry after each retire (the adaptive policy).
    depths = draw(st.lists(st.integers(1, cap), min_size=1,
                           max_size=64))
    return train_ids, quotas, seed, cap, depths


def _drain(plan: BatchPlan, iterations: int, depths: list[int],
           cap: int):
    """Drive a LookaheadDealer to exhaustion, recording dealt shards in
    deal order and retired iterations in retire order."""
    dealer = LookaheadDealer(plan.iterate(iterations), depths[0])
    dealt: list[np.ndarray] = []
    retired: list[int] = []
    step = 0

    def record(pairs):
        for _, planned in pairs:
            for a in planned.assignments:
                if a is not None:
                    dealt.append(a)

    record(dealer.refill())
    while True:
        entry = dealer.retire()
        if entry is None:
            break
        assert dealer.in_flight + 1 <= cap
        retired.append(entry[0])
        step += 1
        dealer.set_depth(depths[step % len(depths)])
        record(dealer.refill())
    return dealer, dealt, retired


class TestLookaheadDealer:
    @common_settings
    @given(dealer_inputs())
    def test_dealt_shards_are_the_epoch_permutation(self, data):
        """Concatenated in deal order, the shards ARE the epoch
        permutation — order included — no matter how the window
        grows or shrinks mid-epoch. Look-ahead must never lose,
        duplicate, or reorder plan work."""
        train_ids, quotas, seed, cap, depths = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        iters = sum(1 for _ in BatchPlan(
            train_ids, lambda: quotas,
            np.random.default_rng(seed)).start_epoch())
        _, dealt, _ = _drain(plan, iters, depths, cap)
        expected = np.random.default_rng(seed).permutation(train_ids)
        np.testing.assert_array_equal(np.concatenate(dealt), expected)

    @common_settings
    @given(dealer_inputs())
    def test_in_flight_never_exceeds_the_cap(self, data):
        """The bounded-queue property: however the adaptive schedule
        resizes the window, the number of dealt-but-unsynchronized
        iterations never exceeds the cap the schedule draws from."""
        train_ids, quotas, seed, cap, depths = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        dealer, _, _ = _drain(plan, 3, depths, cap)
        assert dealer.high_water <= cap

    @common_settings
    @given(dealer_inputs())
    def test_retirement_order_is_plan_order(self, data):
        """Iterations retire strictly in plan order — the sync tail
        (all-reduce, DRM) sees the same sequence as lock-step."""
        train_ids, quotas, seed, cap, depths = data
        plan = BatchPlan(train_ids, lambda: quotas,
                         np.random.default_rng(seed))
        _, _, retired = _drain(plan, 4, depths, cap)
        assert retired == list(range(len(retired)))

    def test_shrinking_never_revokes_dealt_work(self):
        """Shrinking the window below the in-flight count only
        throttles refills; everything already dealt still retires."""
        train_ids = np.arange(64, dtype=np.int64)
        plan = BatchPlan(train_ids, lambda: [8],
                         np.random.default_rng(0))
        dealer = LookaheadDealer(plan.iterate(8), 4)
        assert len(dealer.refill()) == 4
        dealer.set_depth(1)
        assert dealer.refill() == []          # over-full: no refill
        assert dealer.in_flight == 4          # nothing revoked
        for expected_it in range(4):
            it, _ = dealer.retire()
            assert it == expected_it
            # Still over- or exactly full until the window drains
            # below the new depth; only then does dealing resume.
            drained = dealer.in_flight < 1
            assert len(dealer.refill()) == (1 if drained else 0)

    def test_exhausted_dealer_returns_none(self):
        train_ids = np.arange(16, dtype=np.int64)
        plan = BatchPlan(train_ids, lambda: [16],
                         np.random.default_rng(0))
        dealer = LookaheadDealer(plan.iterate(1), 2)
        dealer.refill()
        assert dealer.retire() is not None
        assert dealer.retire() is None
        assert dealer.refill() == []

    def test_invalid_depth_rejected(self):
        train_ids = np.arange(16, dtype=np.int64)
        plan = BatchPlan(train_ids, lambda: [8],
                         np.random.default_rng(0))
        with pytest.raises(ProtocolError):
            LookaheadDealer(plan.iterate(1), 0)
        dealer = LookaheadDealer(plan.iterate(1), 1)
        with pytest.raises(ProtocolError):
            dealer.set_depth(0)


class TestProcessPipelinedReport:
    def test_overlap_summary_without_depth_changes(self):
        rep = ProcessPipelinedReport(iterations=2, num_workers=1)
        assert "depth=static" in rep.overlap_summary()

    def test_overlap_summary_aggregates_stages(self):
        rep = ProcessPipelinedReport(iterations=2, num_workers=1)
        rep.depth_history = [(0, 2), (1, 4)]
        for stage in WORKER_STAGES:
            rep.stage_stats[stage] = StageStats(
                stage=stage, items=4, high_water=2,
                mean_occupancy=1.0)
        out = rep.overlap_summary()
        assert "depth=2-4" in out
        for stage in WORKER_STAGES:
            assert stage in out

    def test_inherits_worker_coverage_fields(self):
        """The statistical tier's per-worker partition assertion keys
        off these fields — they must survive the subclassing."""
        rep = ProcessPipelinedReport(iterations=1, num_workers=2,
                                     worker_targets=[[], []])
        assert rep.trained_targets == []
        assert rep.worker_targets == [[], []]


class TestDepthDefaults:
    def test_default_construction_accepts_deep_prefetch(self, tiny_ds):
        """A session with ``prefetch_depth`` above the historical cap
        of 8 is valid config; default construction of either
        overlapped backend must widen the cap rather than raise (an
        explicitly-passed smaller cap still fails loudly)."""
        from repro.config import SystemConfig, TrainingConfig
        from repro.runtime import (
            PipelinedBackend,
            ProcessPipelinedBackend,
            TrainingSession,
        )
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11)
        session = TrainingSession(
            tiny_ds, cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True,
                         prefetch_depth=12),
            num_trainers=2)
        for cls in (PipelinedBackend, ProcessPipelinedBackend):
            backend = cls(session)
            assert backend.initial_depth == 12
            assert backend.max_depth == 12
            with pytest.raises(ProtocolError):
                cls(session, max_depth=8)


class TestDepthSourceTrajectories:
    """The ``depth_source`` knob's contract on both overlapped planes:
    ``"model"`` reproduces the analytic depth trajectory bit for bit
    (recomputable from the report's own stage history), ``"realized"``
    seeds iteration 0 from the floor instead of the configured depth
    (no realized signal exists yet — the iteration-0 depth bugfix)."""

    def _session(self, tiny_ds, fpga_platform):
        from repro.config import SystemConfig, TrainingConfig
        from repro.runtime import TrainingSession
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11)
        return TrainingSession(
            tiny_ds, cfg,
            SystemConfig(hybrid=True, drm=True, prefetch=True),
            fpga_platform, profile_probes=2)

    @staticmethod
    def _oracle_trajectory(initial_depth, cap, stage_history):
        """Replay the adaptive policy over the reported analytic stage
        times — the exact pre-calibration trajectory semantics."""
        from repro.runtime import adaptive_depth
        depth = initial_depth
        history = [(0, depth)]
        for it, times in enumerate(stage_history):
            want = adaptive_depth(times, cap=cap)
            if want != depth:
                history.append((it + 1, want))
                depth = want
        return history

    @pytest.mark.parametrize("backend_name",
                             ["pipelined", "process_pipelined"])
    def test_model_source_trajectory_is_the_analytic_replay(
            self, backend_name, tiny_ds, fpga_platform):
        from repro.runtime import get_backend
        session = self._session(tiny_ds, fpga_platform)
        backend = get_backend(backend_name)(
            session, timeout_s=60, initial_depth=2, max_depth=4,
            depth_source="model")
        rep = backend.run_epoch()
        oracle = self._oracle_trajectory(2, 4, rep.stage_history)
        # The fused plane resizes the dealer one retirement later than
        # it computes `want`, but records at the same (it + 1) keys —
        # both planes' histories must equal the analytic replay.
        assert rep.depth_history == oracle

    @pytest.mark.parametrize("backend_name",
                             ["pipelined", "process_pipelined"])
    def test_realized_source_seeds_from_the_floor(
            self, backend_name, tiny_ds, fpga_platform):
        from repro.runtime import get_backend
        session = self._session(tiny_ds, fpga_platform)
        backend = get_backend(backend_name)(
            session, timeout_s=60, initial_depth=3, max_depth=4)
        assert backend.depth_source == "realized"
        rep = backend.run_epoch()
        assert rep.depth_history[0] == (0, 1)
        assert backend.initial_depth == 3   # constructor attr untouched

    def test_warm_estimator_seeds_calibrated_depth(self, tiny_ds,
                                                   fpga_platform):
        """A second run on the same backend instance starts from the
        calibrated steady-state estimate, not the floor — the warm
        branch of ``seed_depth``."""
        from repro.runtime import get_backend
        from repro.runtime.backends.pipelined import (
            adaptive_depth,
            seed_depth,
        )
        session = self._session(tiny_ds, fpga_platform)
        backend = get_backend("pipelined")(
            session, timeout_s=60, initial_depth=3, max_depth=4)
        backend.run_epoch()
        assert backend.estimator.is_warm()
        expected = adaptive_depth(
            backend.estimator.calibrate(session.stage_times(None, None)),
            cap=4)
        assert seed_depth(session, 3, 4, "realized",
                          backend.estimator) == expected

    @pytest.mark.parametrize("backend_name",
                             ["pipelined", "process_pipelined"])
    def test_unknown_depth_source_rejected(self, backend_name,
                                           tiny_ds, fpga_platform):
        from repro.runtime import get_backend
        session = self._session(tiny_ds, fpga_platform)
        with pytest.raises(ProtocolError):
            get_backend(backend_name)(session, depth_source="oracle")


class TestSharedPrefetchSpec:
    def test_round_trips_through_pickle(self):
        """The spec crosses the process boundary inside the manifest —
        the wire form must round-trip."""
        spec = SharedPrefetchSpec(capacity=8, timeout_s=120.0)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_travels_in_the_manifest(self, tiny_ds):
        from repro.runtime.shm import SharedFeatureStore
        spec = SharedPrefetchSpec(capacity=4, timeout_s=30.0)
        with SharedFeatureStore.create(tiny_ds,
                                       prefetch_spec=spec) as store:
            manifest = pickle.loads(pickle.dumps(store.manifest))
            assert manifest.prefetch == spec

    def test_absent_by_default(self, tiny_ds):
        from repro.runtime.shm import SharedFeatureStore
        with SharedFeatureStore.create(tiny_ds) as store:
            assert store.manifest.prefetch is None
