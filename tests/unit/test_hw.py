"""Unit tests for the hw package (specs, kernels, memory, topology)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError, DeviceError
from repro.hw.kernels import (
    CPUKernelModel,
    FPGAKernelModel,
    GPUKernelModel,
    fpga_resource_utilization,
    kernel_model_for,
)
from repro.hw.memory import MemoryPool
from repro.hw.specs import (
    AMD_EPYC_7763,
    LINK_PCIE4_X16,
    NVIDIA_A5000,
    XILINX_U250,
    DeviceSpec,
    LinkSpec,
)
from repro.hw.topology import (
    distdgl_node,
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
    p3_node,
    pagraph_node,
)
from repro.sampling.base import MiniBatchStats


def _stats():
    return MiniBatchStats((2000, 400, 100), (5000, 800), 64)


DIMS = (64, 128, 16)


class TestSpecs:
    def test_table2_values(self):
        assert AMD_EPYC_7763.peak_tflops == 3.6
        assert AMD_EPYC_7763.mem_bandwidth_gbps == 205.0
        assert AMD_EPYC_7763.frequency_ghz == 2.45
        assert NVIDIA_A5000.peak_tflops == 27.8
        assert NVIDIA_A5000.mem_bandwidth_gbps == 768.0
        assert XILINX_U250.peak_tflops == 0.6
        assert XILINX_U250.mem_bandwidth_gbps == 77.0
        assert XILINX_U250.frequency_ghz == 0.30
        assert XILINX_U250.onchip_memory_mb == 54.0

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            DeviceSpec("x", "tpu", 1, 1, 1, 1, 1, 0.5, 1.0, False,
                       False, 0.0)
        with pytest.raises(ConfigError):
            DeviceSpec("x", "cpu", -1, 1, 1, 1, 1, 0.5, 1.0, False,
                       False, 0.0)
        with pytest.raises(ConfigError):
            DeviceSpec("x", "cpu", 1, 1, 1, 1, 1, 1.5, 1.0, False,
                       False, 0.0)
        with pytest.raises(ConfigError):
            DeviceSpec("x", "cpu", 1, 1, 1, 1, 1, 0.5, 0.5, False,
                       False, 0.0)

    def test_link_transfer_time(self):
        link = LinkSpec("l", bandwidth_gbps=10.0, latency_s=1e-5)
        assert np.isclose(link.transfer_time(10e9), 1.0 + 1e-5)
        with pytest.raises(ConfigError):
            link.transfer_time(-1)
        with pytest.raises(ConfigError):
            LinkSpec("l", bandwidth_gbps=0.0, latency_s=0.0)


class TestKernelModels:
    def test_factory(self):
        assert isinstance(kernel_model_for(AMD_EPYC_7763),
                          CPUKernelModel)
        assert isinstance(kernel_model_for(NVIDIA_A5000),
                          GPUKernelModel)
        assert isinstance(kernel_model_for(XILINX_U250),
                          FPGAKernelModel)

    def test_kind_mismatch(self):
        with pytest.raises(DeviceError):
            CPUKernelModel(NVIDIA_A5000)
        with pytest.raises(DeviceError):
            GPUKernelModel(AMD_EPYC_7763)
        with pytest.raises(DeviceError):
            FPGAKernelModel(NVIDIA_A5000)

    def test_breakdown_structure(self):
        b = GPUKernelModel(NVIDIA_A5000).propagation(_stats(), DIMS,
                                                     "gcn")
        assert len(b.aggregate_s) == 2 and len(b.update_s) == 2
        assert b.total_s == pytest.approx(
            b.forward_s + b.backward_s + b.overhead_s)
        assert b.ddr_bytes > 0 and b.macs > 0

    def test_sage_costs_more_than_gcn(self):
        gpu = GPUKernelModel(NVIDIA_A5000)
        g = gpu.propagation(_stats(), DIMS, "gcn")
        s = gpu.propagation(_stats(), DIMS, "sage")
        assert s.macs > g.macs

    def test_fpga_pipelining_is_max(self):
        fpga = FPGAKernelModel(XILINX_U250)
        b = fpga.propagation(_stats(), DIMS, "gcn")
        expected_fwd = sum(max(a, u) for a, u in zip(b.aggregate_s,
                                                     b.update_s))
        assert b.forward_s == pytest.approx(expected_fwd)

    def test_cpu_serial_is_sum(self):
        cpu = CPUKernelModel(AMD_EPYC_7763, num_threads=128,
                             max_threads=128)
        b = cpu.propagation(_stats(), DIMS, "gcn")
        expected_fwd = sum(a + u for a, u in zip(b.aggregate_s,
                                                 b.update_s))
        assert b.forward_s == pytest.approx(expected_fwd)

    def test_backward_skips_layer1_aggregation(self):
        cpu = CPUKernelModel(AMD_EPYC_7763)
        b = cpu.propagation(_stats(), DIMS, "gcn")
        expected_bwd = b.update_s[0] + b.aggregate_s[1] + b.update_s[1]
        assert b.backward_s == pytest.approx(expected_bwd)

    def test_cpu_threads_scale_time(self):
        full = CPUKernelModel(AMD_EPYC_7763, num_threads=128,
                              max_threads=128)
        half = CPUKernelModel(AMD_EPYC_7763, num_threads=64,
                              max_threads=128)
        tf = full.propagation(_stats(), DIMS, "gcn")
        th = half.propagation(_stats(), DIMS, "gcn")
        # Work terms double; the fixed overhead does not.
        assert th.forward_s == pytest.approx(2 * tf.forward_s)
        assert th.overhead_s == tf.overhead_s

    def test_with_threads(self):
        m = CPUKernelModel(AMD_EPYC_7763, num_threads=32)
        m2 = m.with_threads(64)
        assert m2.num_threads == 64
        with pytest.raises(DeviceError):
            m.with_threads(0)

    def test_fpga_feature_duplicator_traffic(self):
        """Layer-1 DDR traffic is O(|V^0|), not O(|E^1|) (paper §IV-C)."""
        fpga = FPGAKernelModel(XILINX_U250)
        sparse = MiniBatchStats((2000, 400, 100), (5000, 800), 64)
        dense = MiniBatchStats((2000, 400, 100), (50000, 800), 64)
        b_sparse = fpga.propagation(sparse, DIMS, "gcn")
        b_dense = fpga.propagation(dense, DIMS, "gcn")
        # 10x the edges but the same |V^0|: input traffic unchanged.
        v0_bytes = 2000 * 64 * 4
        assert b_sparse.ddr_bytes == b_dense.ddr_bytes
        assert b_sparse.ddr_bytes >= 2 * v0_bytes

    def test_gpu_charges_edge_traffic(self):
        gpu = GPUKernelModel(NVIDIA_A5000)
        sparse = MiniBatchStats((2000, 400, 100), (5000, 800), 64)
        dense = MiniBatchStats((2000, 400, 100), (50000, 800), 64)
        assert gpu.propagation(dense, DIMS, "gcn").ddr_bytes > \
            5 * gpu.propagation(sparse, DIMS, "gcn").ddr_bytes

    def test_dims_validation(self):
        gpu = GPUKernelModel(NVIDIA_A5000)
        with pytest.raises(ConfigError):
            gpu.propagation(_stats(), (64, 128), "gcn")   # missing layer
        with pytest.raises(ConfigError):
            gpu.propagation(_stats(), (32, 128, 16), "gcn")  # f0 wrong
        with pytest.raises(ConfigError):
            gpu.propagation(_stats(), DIMS, "gat")

    def test_kernel_launch_counts(self):
        assert GPUKernelModel(NVIDIA_A5000).kernel_launches(2) == 24
        assert FPGAKernelModel(XILINX_U250).kernel_launches(2) == 2

    def test_fpga_invalid_parallelism(self):
        with pytest.raises(DeviceError):
            FPGAKernelModel(XILINX_U250, n_pes=0)


class TestFPGAResources:
    def test_table4_reproduction(self):
        u = fpga_resource_utilization(8, 2048)
        assert abs(u.luts - 0.72) < 0.03
        assert abs(u.dsps - 0.90) < 0.03
        assert abs(u.uram - 0.48) < 0.03
        assert abs(u.bram - 0.40) < 0.03
        assert u.feasible()

    def test_doubling_macs_exceeds_dsps(self):
        u = fpga_resource_utilization(8, 4096)
        assert u.dsps > 1.0
        assert not u.feasible()

    def test_monotone_in_pes(self):
        a = fpga_resource_utilization(4, 2048)
        b = fpga_resource_utilization(8, 2048)
        assert b.luts > a.luts and b.uram > a.uram

    def test_invalid(self):
        with pytest.raises(DeviceError):
            fpga_resource_utilization(0, 100)


class TestMemoryPool:
    def test_alloc_and_release(self):
        pool = MemoryPool(100, "dev")
        pool.alloc("a", 60)
        assert pool.used == 60 and pool.free == 40
        assert pool.release("a") == 60
        assert pool.free == 100

    def test_capacity_error(self):
        pool = MemoryPool(100)
        pool.alloc("a", 80)
        with pytest.raises(CapacityError):
            pool.alloc("b", 30)

    def test_duplicate_label(self):
        pool = MemoryPool(100)
        pool.alloc("a", 10)
        with pytest.raises(DeviceError):
            pool.alloc("a", 10)

    def test_resize(self):
        pool = MemoryPool(100)
        pool.alloc("a", 10)
        pool.resize("a", 50)
        assert pool.used == 50
        with pytest.raises(CapacityError):
            pool.resize("a", 200)
        assert pool.used == 50   # failed resize restores

    def test_unknown_release(self):
        with pytest.raises(DeviceError):
            MemoryPool(10).release("x")

    def test_paper_premise_mag_exceeds_device_memory(self):
        """MAG240M features (~368 GB fp32) overflow any Table II device."""
        mag_bytes = 121_751_666 * 756 * 4
        for dev in (NVIDIA_A5000, XILINX_U250):
            pool = MemoryPool(int(dev.device_memory_gb * 1e9), dev.name)
            assert not pool.fits(mag_bytes)
        host = MemoryPool(int(2e12), "host")   # 2 TB CPU memory
        assert host.fits(mag_bytes)


class TestTopology:
    def test_hyscale_platforms(self):
        g = hyscale_cpu_gpu_platform(4)
        f = hyscale_cpu_fpga_platform(4)
        assert g.num_accelerators == 4 and g.accelerator.kind == "gpu"
        assert f.accelerator.kind == "fpga"
        assert g.cpu_peak_tflops == pytest.approx(7.2)
        assert g.total_peak_tflops == pytest.approx(7.2 + 4 * 27.8)
        assert g.host_mem_bandwidth == pytest.approx(410e9)

    def test_with_accelerators(self):
        p = hyscale_cpu_fpga_platform(4).with_accelerators(16)
        assert p.num_accelerators == 16

    def test_comparator_platforms_match_table5(self):
        pa = pagraph_node()
        assert pa.num_nodes == 1 and pa.num_accelerators == 8
        p3 = p3_node()
        assert p3.num_nodes == 4 and p3.num_accelerators == 4
        dd = distdgl_node()
        assert dd.num_nodes == 8 and dd.num_accelerators == 8

    def test_validation(self):
        from repro.hw.topology import PlatformSpec
        with pytest.raises(ConfigError):
            PlatformSpec("x", AMD_EPYC_7763, 0, None, 0, LINK_PCIE4_X16)
        with pytest.raises(ConfigError):
            PlatformSpec("x", AMD_EPYC_7763, 1, None, 2, LINK_PCIE4_X16)
