"""Additional edge-case coverage across modules."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    GraphError,
    SamplingError,
    SimulationError,
)


class TestBaselineCommon:
    def test_degree_ordered_hit_ratio_bounds(self, tiny_ds):
        from repro.baselines.common import degree_ordered_hit_ratio
        assert degree_ordered_hit_ratio(tiny_ds, 0.0) == 0.0
        assert degree_ordered_hit_ratio(tiny_ds, 1.0) == 1.0
        mid = degree_ordered_hit_ratio(tiny_ds, 0.2)
        # Degree-ordering always beats proportional caching.
        assert mid > 0.2

    def test_hit_ratio_monotone(self, tiny_ds):
        from repro.baselines.common import degree_ordered_hit_ratio
        fracs = [0.1, 0.3, 0.6, 0.9]
        vals = [degree_ordered_hit_ratio(tiny_ds, f) for f in fracs]
        assert vals == sorted(vals)

    def test_iterations_per_epoch(self, tiny_ds):
        from repro.baselines.common import iterations_per_epoch
        n = iterations_per_epoch(tiny_ds, 64)
        assert n == -(-tiny_ds.spec.train_count // 64)
        with pytest.raises(ConfigError):
            iterations_per_epoch(tiny_ds, 0)


class TestTraceExtras:
    def test_gantt_row_cap(self):
        from repro.sim.trace import Span, Timeline, render_gantt
        tl = Timeline([Span("s", i, i * 1.0, i + 0.5)
                       for i in range(100)])
        text = render_gantt(tl, max_rows=5)
        assert "more spans" in text

    def test_zero_length_timeline(self):
        from repro.sim.trace import Span, Timeline, render_gantt
        tl = Timeline([Span("s", 0, 0.0, 0.0)])
        assert "zero-length" in render_gantt(tl)


class TestEpochReportExtras:
    def test_empty_report_defaults(self):
        from repro.runtime.hybrid import EpochReport
        from repro.sim.trace import Timeline
        rep = EpochReport(mode="simulated", iterations=0,
                          epoch_time_s=0.0, timeline=Timeline())
        assert np.isnan(rep.mean_loss)
        assert rep.throughput_mteps == 0.0
        assert rep.bottleneck_stage() is None


class TestSamplerExtras:
    def test_neighbor_sampler_single_hop(self, tiny_ds):
        from repro.sampling import NeighborSampler
        s = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids, (3,),
                            tiny_ds.spec.feature_dim, seed=0)
        mb = s.sample(tiny_ds.train_ids[:4])
        assert mb.num_layers == 1
        mb.validate()

    def test_saint_edge_sampler_empty_graph_rejected(self):
        from repro.graph.csr import CSRGraph
        from repro.sampling import SaintEdgeSampler
        g = CSRGraph.empty(16)
        s = SaintEdgeSampler(g, np.arange(16), 2, 4, seed=0)
        with pytest.raises(SamplingError):
            s._draw(8)

    def test_rw_sampler_handles_dead_ends(self):
        from repro.graph.csr import CSRGraph
        from repro.sampling import SaintRWSampler
        # Star graph: center 0 -> leaves, leaves have no out-edges.
        src = np.zeros(5, dtype=np.int64)
        dst = np.arange(1, 6)
        g = CSRGraph.from_edges(src, dst, 6)
        s = SaintRWSampler(g, np.arange(6), 2, 4, seed=1,
                           walk_length=4)
        mb = s.sample(s._draw(6))
        mb.validate()


class TestDRMExtras:
    def test_metric_lower_is_better(self):
        from repro.config import SystemConfig
        from repro.perfmodel.model import StageTimes, WorkloadSplit
        from repro.runtime.drm import DRMEngine
        drm = DRMEngine(SystemConfig(), 256, hybrid=True)
        split = WorkloadSplit(cpu_targets=128,
                              accel_targets=(256, 256))
        fast = StageTimes(0.1, 0.0, 0.1, 0.1, 0.1, 0.1, 0.01)
        slow = StageTimes(0.5, 0.0, 0.5, 0.5, 0.5, 0.5, 0.01)
        assert drm._metric(split, fast) < drm._metric(split, slow)

    def test_cooldown_blocks_repeat_case(self):
        from repro.config import SystemConfig
        from repro.perfmodel.model import StageTimes, WorkloadSplit
        from repro.runtime.drm import DRMEngine
        drm = DRMEngine(SystemConfig(), 256, hybrid=True,
                        revert_tolerance=0.0)
        split = WorkloadSplit(cpu_targets=128,
                              accel_targets=(256, 256))
        bottleneck = dict(t_sample_cpu=0.1, t_sample_accel=0.0,
                          t_load=0.1, t_transfer=5.0, t_train_cpu=0.1,
                          t_train_accel=0.1, t_sync=0.01)
        s1 = drm.adjust(split, StageTimes(**bottleneck), 0)
        assert s1 is not split
        # Regression -> revert + cooldown for this case.
        worse = dict(bottleneck)
        worse["t_transfer"] = 50.0
        s2 = drm.adjust(s1, StageTimes(**worse), 1)
        assert drm.decisions[-1].action == "revert"
        # While cooling down, the same bottleneck produces no action.
        s3 = drm.adjust(s2, StageTimes(**bottleneck), 2)
        assert drm.decisions[-1].action == "none"
        assert s3 is s2


class TestMappingExtras:
    def test_mapping_result_fields(self, tiny_ds, fpga_platform):
        from repro.config import layer_dims
        from repro.perfmodel.mapping import initial_mapping
        from repro.perfmodel.model import PerformanceModel
        from repro.perfmodel.sampling_profile import SamplingProfile
        from repro.sampling.neighbor import NeighborSampler
        sampler = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids,
                                  (4, 3), tiny_ds.spec.feature_dim,
                                  seed=0)
        profile = SamplingProfile.measure(sampler, 32, num_probes=2)
        dims = layer_dims(tiny_ds.spec.feature_dim, 16,
                          tiny_ds.spec.num_classes, 2)
        pm = PerformanceModel(fpga_platform, dims, "sage", profile)
        res = initial_mapping(pm, 32, coarse=True)
        assert res.split.total_targets >= 64
        assert res.candidates_evaluated >= 3


class TestGraphExtras:
    def test_empty_indices_transpose(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.empty(4)
        t = g.transpose()
        assert t.num_edges == 0

    def test_dataset_alias_case_insensitive(self):
        from repro.graph.datasets import load_dataset
        ds = load_dataset("OGBN-PRODUCTS", scale=1 / 4096, seed=0)
        assert ds.name == "ogbn-products"
