"""Unit tests for the §VIII quantization extension."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime.quantize import (
    TRANSFER_BYTES,
    quantization_rmse,
    quantize_dequantize,
)


class TestQuantizeDequantize:
    def test_fp32_is_identity(self):
        x = np.random.default_rng(0).standard_normal((8, 4))
        assert np.array_equal(quantize_dequantize(x, "fp32"), x)

    def test_fp16_roundtrip_error_small(self):
        x = np.random.default_rng(1).standard_normal((64, 16))
        q = quantize_dequantize(x, "fp16")
        # fp16 has ~3 decimal digits: relative error under 1e-3.
        assert np.max(np.abs(q - x) / np.maximum(np.abs(x), 1e-3)) \
            < 2e-3

    def test_int8_bounded_error(self):
        x = np.random.default_rng(2).standard_normal((32, 8))
        q = quantize_dequantize(x, "int8")
        # Per-row symmetric: error bounded by scale/2 = absmax/254.
        absmax = np.abs(x).max(axis=1, keepdims=True)
        assert (np.abs(q - x) <= absmax / 127.0 + 1e-12).all()

    def test_int8_preserves_extremes(self):
        x = np.array([[-2.0, 0.0, 2.0]])
        q = quantize_dequantize(x, "int8")
        assert q[0, 0] == pytest.approx(-2.0, rel=0.02)
        assert q[0, 2] == pytest.approx(2.0, rel=0.02)

    def test_int8_zero_row_safe(self):
        x = np.zeros((3, 4))
        assert not quantize_dequantize(x, "int8").any()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            quantize_dequantize(np.zeros((2, 2)), "int4")
        with pytest.raises(ConfigError):
            quantize_dequantize(np.zeros(4), "fp16")

    def test_rmse_ordering(self):
        x = np.random.default_rng(3).standard_normal((64, 32))
        assert quantization_rmse(x, "fp32") == 0.0
        assert quantization_rmse(x, "fp16") < quantization_rmse(
            x, "int8")

    def test_transfer_bytes_table(self):
        assert TRANSFER_BYTES == {"fp32": 4, "fp16": 2, "int8": 1}

    def test_preserves_input_float_dtype(self):
        # A float32 batch must come back float32 — dtype inflation
        # here used to double downstream trainers' memory traffic.
        for dtype in (np.float32, np.float64):
            x = np.random.default_rng(5).standard_normal(
                (16, 8)).astype(dtype)
            for mode in ("fp32", "fp16", "int8"):
                assert quantize_dequantize(x, mode).dtype == dtype

    def test_float32_int8_roundtrip_no_widening_error(self):
        # The float32 fast path (no float64 temp) must still land on
        # the same quantization grid the widened computation defines.
        x = np.random.default_rng(6).standard_normal(
            (32, 8)).astype(np.float32)
        q32 = quantize_dequantize(x, "int8")
        q64 = quantize_dequantize(x.astype(np.float64), "int8")
        np.testing.assert_allclose(q32, q64.astype(np.float32),
                                   rtol=1e-6, atol=1e-7)


class TestSystemConfigPrecision:
    def test_valid_modes(self):
        for mode in ("fp32", "fp16", "int8"):
            assert SystemConfig(
                transfer_precision=mode).transfer_precision == mode

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            SystemConfig(transfer_precision="bf16")


class TestPerfModelPrecision:
    def test_transfer_time_scales_with_precision(self, tiny_ds,
                                                 fpga_platform):
        from repro.config import TrainingConfig
        from repro.runtime.hybrid import HyScaleGNN
        cfg = TrainingConfig(model="gcn", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16, seed=0)
        times = {}
        for mode in ("fp32", "fp16", "int8"):
            system = HyScaleGNN(
                tiny_ds, fpga_platform, cfg,
                SystemConfig(transfer_precision=mode),
                profile_probes=2)
            st = system.perfmodel.stage_times(system.split)
            times[mode] = st.t_transfer
        # Latency floor means not exactly 2x/4x, but strictly ordered.
        assert times["int8"] < times["fp16"] < times["fp32"]

    def test_invalid_elem_bytes(self, tiny_ds, fpga_platform):
        from repro.config import layer_dims
        from repro.errors import ConfigError
        from repro.perfmodel.model import PerformanceModel
        from repro.perfmodel.sampling_profile import SamplingProfile
        from repro.sampling.neighbor import NeighborSampler
        sampler = NeighborSampler(tiny_ds.graph, tiny_ds.train_ids,
                                  (4, 3), tiny_ds.spec.feature_dim,
                                  seed=0)
        profile = SamplingProfile.measure(sampler, 32, num_probes=2)
        dims = layer_dims(tiny_ds.spec.feature_dim, 16,
                          tiny_ds.spec.num_classes, 2)
        with pytest.raises(ConfigError):
            PerformanceModel(fpga_platform, dims, "gcn", profile,
                             transfer_elem_bytes=3)
