"""Unit tests for repro.graph.datasets and repro.graph.partition."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    DATASET_REGISTRY,
    load_dataset,
    tiny_dataset,
)
from repro.graph.partition import (
    bfs_partition,
    hash_partition,
    partition_quality,
)
from repro.graph.validate import check_graph, degree_histogram


class TestRegistry:
    def test_registry_matches_table3(self):
        p = DATASET_REGISTRY["ogbn-products"]
        assert (p.num_vertices, p.num_edges) == (2_449_029, 61_859_140)
        assert (p.feature_dim, p.hidden_dim, p.num_classes) == \
            (100, 256, 47)
        pp = DATASET_REGISTRY["ogbn-papers100M"]
        assert (pp.num_vertices, pp.num_edges) == \
            (111_059_956, 1_615_685_872)
        assert (pp.feature_dim, pp.num_classes) == (128, 172)
        m = DATASET_REGISTRY["mag240m"]
        assert (m.num_vertices, m.num_edges) == \
            (121_751_666, 1_297_748_926)
        assert (m.feature_dim, m.num_classes) == (756, 153)

    def test_iterations_per_epoch(self):
        spec = DATASET_REGISTRY["ogbn-papers100M"]
        assert spec.iterations_per_epoch(1024, 4) == \
            -(-spec.train_count // 4096)
        assert spec.iterations_per_epoch(10**9, 1) == 1

    def test_train_fraction_small_for_large_graphs(self):
        assert DATASET_REGISTRY["ogbn-papers100M"].train_fraction < 0.02
        assert DATASET_REGISTRY["mag240m"].train_fraction < 0.02


class TestLoadDataset:
    def test_load_with_alias(self):
        ds = load_dataset("products", scale=1 / 2048, seed=0)
        assert ds.name == "ogbn-products"
        check_graph(ds.graph, require_symmetric=True)

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("imagenet")

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            load_dataset("products", scale=0.0)
        with pytest.raises(GraphError):
            load_dataset("products", scale=2.0)

    def test_feature_dims_preserved_at_any_scale(self):
        ds = load_dataset("papers100m", scale=1 / 8192, seed=1)
        assert ds.features.shape[1] == 128
        assert ds.labels.max() < 172
        assert ds.features.dtype == np.float32

    def test_edge_density_tracks_spec(self):
        ds = load_dataset("papers100m", scale=1 / 2048, seed=0)
        target = ds.spec.num_edges * ds.scale
        assert 0.8 * target < ds.graph.num_edges < 1.3 * target

    def test_deterministic(self):
        a = load_dataset("products", scale=1 / 2048, seed=3)
        b = load_dataset("products", scale=1 / 2048, seed=3)
        assert a.graph == b.graph
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_train_ids_within_range(self):
        ds = load_dataset("products", scale=1 / 2048, seed=0)
        assert ds.train_ids.size > 0
        assert ds.train_ids.max() < ds.graph.num_vertices

    def test_labels_learnable_signal(self):
        # Labels correlate with features by construction: a linear probe
        # fit on half the data must beat chance on the other half.
        ds = tiny_dataset(num_vertices=800, feature_dim=16,
                          num_classes=4, seed=2)
        X, y = ds.features, ds.labels
        half = X.shape[0] // 2
        from numpy.linalg import lstsq
        onehot = np.eye(4)[y[:half]]
        W, *_ = lstsq(X[:half], onehot, rcond=None)
        pred = np.argmax(X[half:] @ W, axis=1)
        assert (pred == y[half:]).mean() > 0.4   # chance = 0.25

    def test_full_scale_feature_bytes(self):
        ds = load_dataset("mag240m", scale=1 / 8192, seed=0)
        # MAG240M full-scale features are ~368 GB in fp32 — the paper's
        # "does not fit in device memory" premise.
        assert ds.full_scale_feature_nbytes() > 300e9

    def test_tiny_dataset_validates(self):
        ds = tiny_dataset(seed=0)
        check_graph(ds.graph, require_symmetric=True)
        assert ds.train_mask.any()
        with pytest.raises(GraphError):
            tiny_dataset(num_vertices=4)


class TestPartition:
    def test_hash_partition_balance(self, medium_graph):
        parts = hash_partition(medium_graph, 4, seed=0)
        q = partition_quality(medium_graph, parts)
        assert q.imbalance < 1.1
        assert 0.5 < q.edge_cut_fraction <= 0.8

    def test_bfs_partition_covers_all(self, medium_graph):
        parts = bfs_partition(medium_graph, 4, seed=0)
        assert parts.min() >= 0
        assert parts.max() == 3
        sizes = np.bincount(parts)
        assert sizes.min() > 0

    def test_bfs_beats_hash_on_cut(self, medium_graph):
        bq = partition_quality(medium_graph,
                               bfs_partition(medium_graph, 4, seed=0))
        hq = partition_quality(medium_graph,
                               hash_partition(medium_graph, 4, seed=0))
        assert bq.edge_cut_fraction <= hq.edge_cut_fraction

    def test_single_partition(self, medium_graph):
        parts = bfs_partition(medium_graph, 1)
        q = partition_quality(medium_graph, parts)
        assert q.edge_cut_fraction == 0.0
        assert q.replication_factor == 1.0

    def test_invalid_args(self, medium_graph):
        with pytest.raises(GraphError):
            hash_partition(medium_graph, 0)
        with pytest.raises(GraphError):
            bfs_partition(medium_graph, 0)
        with pytest.raises(GraphError):
            partition_quality(medium_graph, np.zeros(3, dtype=np.int64))


class TestValidate:
    def test_check_graph_detects_self_loop(self):
        g = CSRGraph.from_edges([0], [0], 2)
        with pytest.raises(GraphError):
            check_graph(g, forbid_self_loops=True)

    def test_check_graph_detects_duplicates(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], 2)
        with pytest.raises(GraphError):
            check_graph(g, forbid_duplicates=True)

    def test_check_graph_detects_asymmetry(self):
        g = CSRGraph.from_edges([0], [1], 2)
        with pytest.raises(GraphError):
            check_graph(g, require_symmetric=True)
        check_graph(g.symmetrize(), require_symmetric=True)

    def test_degree_histogram(self, medium_graph):
        hist, edges = degree_histogram(medium_graph)
        assert hist.sum() <= medium_graph.num_vertices
        assert len(edges) == len(hist) + 1
