"""Registry error paths: every lookup failure names the alternatives.

The three registries (execution backends, samplers-by-config, sampler
builders) are the library's extension seams; a misspelled key must fail
eagerly with a message that lists what *is* registered, so the fix is
in the traceback.
"""

import pytest

from repro.errors import ConfigError
import repro.sampling as sampling
from repro.runtime import (
    BACKENDS,
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)


class TestBackendRegistryErrors:
    def test_register_backend_empty_name_rejected(self):
        class Nameless(ExecutionBackend):
            name = ""

            def run_epoch(self, max_iterations=None):
                raise NotImplementedError

        with pytest.raises(ConfigError) as exc:
            register_backend(Nameless)
        msg = str(exc.value)
        for registered in available_backends():
            assert registered in msg
        assert "" not in BACKENDS   # nothing was registered

    def test_register_backend_missing_name_attr_rejected(self):
        with pytest.raises(ConfigError):
            register_backend(object)

    def test_get_backend_unknown_key_lists_registered(self):
        with pytest.raises(ConfigError) as exc:
            get_backend("warp-drive")
        msg = str(exc.value)
        assert "warp-drive" in msg
        for registered in ("process", "threaded", "virtual"):
            assert registered in msg


class TestSamplerRegistryErrors:
    def test_get_unknown_sampler_lists_registered(self):
        with pytest.raises(ConfigError) as exc:
            sampling.get("ladies")
        msg = str(exc.value)
        assert "ladies" in msg
        for registered in ("neighbor", "saint-rw", "full"):
            assert registered in msg

    def test_build_sampler_unknown_name_uses_same_error(self, tiny_ds,
                                                        small_cfg):
        with pytest.raises(ConfigError) as exc:
            sampling.build_sampler("ladies", tiny_ds.graph,
                                   tiny_ds.train_ids, small_cfg,
                                   tiny_ds.spec.feature_dim)
        assert "neighbor" in str(exc.value)

    def test_get_known_sampler_returns_builder(self, tiny_ds, small_cfg):
        builder = sampling.get("neighbor")
        sampler = builder(tiny_ds.graph, tiny_ds.train_ids, small_cfg,
                          tiny_ds.spec.feature_dim)
        assert isinstance(sampler, sampling.NeighborSampler)
