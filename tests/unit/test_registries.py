"""Registry error paths: every lookup failure names the alternatives.

The three registries (execution backends, sampler builders, kernel
ops/tiers) are the library's extension seams. Since the unification
they are all instances of one :class:`repro.registry.Registry`, so a
misspelled key fails eagerly with one uniform message shape — the
unknown name plus what *is* registered, so the fix is in the
traceback. These tests pin both the per-registry behavior and the
shared surface (``register`` / ``get`` / ``available()``).
"""

import dataclasses

import pytest

from repro.errors import ConfigError
import repro.sampling as sampling
from repro.kernels import KERNELS, available_tiers, register_kernel
from repro.registry import Registry
from repro.runtime import (
    BACKENDS,
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.backends import (
    BackendOptions,
    ThreadedOptions,
    build_backend,
    resolve_options,
)
from repro.runtime.backends.options import validate_options_cls
from repro.sampling import SAMPLER_REGISTRY, available_samplers


class TestBackendRegistryErrors:
    def test_register_backend_empty_name_rejected(self):
        class Nameless(ExecutionBackend):
            name = ""

            def run_epoch(self, max_iterations=None):
                raise NotImplementedError

        with pytest.raises(ConfigError) as exc:
            register_backend(Nameless)
        msg = str(exc.value)
        for registered in available_backends():
            assert registered in msg
        assert "" not in BACKENDS   # nothing was registered

    def test_register_backend_missing_name_attr_rejected(self):
        with pytest.raises(ConfigError):
            register_backend(object)

    def test_get_backend_unknown_key_lists_registered(self):
        with pytest.raises(ConfigError) as exc:
            get_backend("warp-drive")
        msg = str(exc.value)
        assert "warp-drive" in msg
        for registered in ("process", "threaded", "virtual"):
            assert registered in msg


class TestSamplerRegistryErrors:
    def test_get_unknown_sampler_lists_registered(self):
        with pytest.raises(ConfigError) as exc:
            sampling.get("ladies")
        msg = str(exc.value)
        assert "ladies" in msg
        for registered in ("neighbor", "saint-rw", "full"):
            assert registered in msg

    def test_build_sampler_unknown_name_uses_same_error(self, tiny_ds,
                                                        small_cfg):
        with pytest.raises(ConfigError) as exc:
            sampling.build_sampler("ladies", tiny_ds.graph,
                                   tiny_ds.train_ids, small_cfg,
                                   tiny_ds.spec.feature_dim)
        assert "neighbor" in str(exc.value)

    def test_get_known_sampler_returns_builder(self, tiny_ds, small_cfg):
        builder = sampling.get("neighbor")
        sampler = builder(tiny_ds.graph, tiny_ds.train_ids, small_cfg,
                          tiny_ds.spec.feature_dim)
        assert isinstance(sampler, sampling.NeighborSampler)

    def test_available_samplers_sorted_and_complete(self):
        names = available_samplers()
        assert names == tuple(sorted(names))
        assert {"full", "neighbor", "saint-rw"} <= set(names)


class TestKernelRegistryErrors:
    def test_register_kernel_unknown_op_lists_ops(self):
        with pytest.raises(ConfigError) as exc:
            register_kernel("warp_gather", "fast", lambda: None)
        msg = str(exc.value)
        assert "unknown kernel op" in msg
        assert "warp_gather" in msg
        for op in ("gather", "segment_sum"):
            assert op in msg

    def test_available_tiers_unknown_op_lists_ops(self):
        with pytest.raises(ConfigError) as exc:
            available_tiers("warp_gather")
        assert "unknown kernel op" in str(exc.value)

    def test_available_tiers_known_op(self):
        tiers = available_tiers("gather")
        assert tiers == tuple(sorted(tiers))
        assert {"fast", "reference"} <= set(tiers)


class TestUnifiedRegistrySurface:
    """The three seams really are the one Registry class, with one
    error shape."""

    REGISTRIES = {
        "execution backend": lambda: BACKENDS,
        "sampler": lambda: SAMPLER_REGISTRY,
        "kernel op": lambda: KERNELS,
    }

    @pytest.mark.parametrize("kind", sorted(REGISTRIES))
    def test_shared_class_and_error_shape(self, kind):
        reg = self.REGISTRIES[kind]()
        assert isinstance(reg, Registry)
        assert reg.available() == tuple(sorted(reg))
        with pytest.raises(ConfigError) as exc:
            reg.get("definitely-not-registered")
        msg = str(exc.value)
        assert f"unknown {kind}" in msg
        assert "definitely-not-registered" in msg
        for name in reg.available():
            assert name in msg

    def test_get_with_default_does_not_raise(self):
        assert BACKENDS.get("definitely-not-registered", None) is None

    def test_getitem_keeps_mapping_semantics(self):
        with pytest.raises(KeyError):
            BACKENDS["definitely-not-registered"]


class TestBackendOptions:
    def test_unknown_option_names_backend_and_knobs(self):
        with pytest.raises(ConfigError) as exc:
            resolve_options("threaded", prefetch_dpeth=3)
        msg = str(exc.value)
        assert "'threaded'" in msg
        assert "prefetch_dpeth" in msg
        assert "prefetch_depth" in msg  # the fix is in the traceback

    def test_build_backend_unknown_option_rejected_before_construction(
            self, tiny_ds, small_cfg):
        # No session needed: validation fires before the constructor.
        with pytest.raises(ConfigError) as exc:
            build_backend("threaded", None, timeout=1.0)
        assert "'threaded'" in str(exc.value)
        assert "timeout_s" in str(exc.value)

    def test_wrong_options_class_rejected(self):
        with pytest.raises(ConfigError) as exc:
            resolve_options("process", ThreadedOptions(prefetch_depth=2))
        assert "'process'" in str(exc.value)

    def test_kwargs_layer_on_options_instance(self):
        opts = resolve_options("threaded",
                               ThreadedOptions(prefetch_depth=2),
                               timeout_s=5.0)
        assert opts.prefetch_depth == 2
        assert opts.timeout_s == 5.0
        assert opts.to_kwargs() == {"prefetch_depth": 2,
                                    "timeout_s": 5.0}

    def test_unset_knobs_defer_to_constructor(self):
        assert resolve_options("threaded").to_kwargs() == {}

    def test_registration_rejects_non_none_option_default(self):
        @dataclasses.dataclass(frozen=True)
        class BadOptions(BackendOptions):
            knob: int = 7

        class Bad(ExecutionBackend):
            name = "bad-options"
            options_cls = BadOptions

            def __init__(self, session, knob=7):
                super().__init__(session)

            def run_epoch(self, max_iterations=None):
                raise NotImplementedError

        with pytest.raises(ConfigError) as exc:
            validate_options_cls(Bad)
        assert "knob" in str(exc.value)
        assert "bad-options" not in BACKENDS

    def test_registration_rejects_option_constructor_mismatch(self):
        @dataclasses.dataclass(frozen=True)
        class GhostOptions(BackendOptions):
            ghost_knob: int | None = None

        class Ghost(ExecutionBackend):
            name = "ghost-options"
            options_cls = GhostOptions

            def __init__(self, session):
                super().__init__(session)

            def run_epoch(self, max_iterations=None):
                raise NotImplementedError

        with pytest.raises(ConfigError) as exc:
            register_backend(Ghost)
        assert "ghost_knob" in str(exc.value)
        assert "ghost-options" not in BACKENDS
