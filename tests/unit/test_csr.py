"""Unit tests for repro.graph.csr."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([0, 0, 1], [1, 2, 2], 3)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_from_edges_unsorted_input(self):
        g = CSRGraph.from_edges([2, 0, 1, 0], [0, 2, 0, 1], 3)
        assert g.num_edges == 4
        assert sorted(g.neighbors(0)) == [1, 2]

    def test_from_edges_dedup(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 2], 3, dedup=True)
        assert g.num_edges == 2

    def test_from_edges_keeps_duplicates_by_default(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], 2)
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.neighbors(4).size == 0

    def test_invalid_endpoint_raises(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([0], [5], 3)
        with pytest.raises(GraphError):
            CSRGraph.from_edges([-1], [0], 3)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([0, 1], [1], 3)

    def test_bad_indptr_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))   # indptr[0] != 0
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0, 0]))

    def test_indptr_end_mismatch_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))

    def test_num_vertices_inconsistency_raises(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 0]), np.array([], dtype=np.int64),
                     num_vertices=7)

    def test_float_indices_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(np.array([0.5]), np.array([1.0]), 3)


class TestAccessors:
    def test_out_degrees(self):
        g = CSRGraph.from_edges([0, 0, 2], [1, 2, 0], 3)
        assert list(g.out_degrees) == [2, 0, 1]
        assert g.out_degree(0) == 2

    def test_neighbors_is_view(self):
        g = CSRGraph.from_edges([0, 0], [1, 2], 3)
        view = g.neighbors(0)
        assert view.base is g.indices

    def test_neighbors_out_of_range(self):
        g = CSRGraph.empty(2)
        with pytest.raises(GraphError):
            g.neighbors(2)

    def test_edges_roundtrip(self):
        src = np.array([0, 1, 1, 2])
        dst = np.array([1, 0, 2, 1])
        g = CSRGraph.from_edges(src, dst, 3)
        s2, d2 = g.edges()
        g2 = CSRGraph.from_edges(s2, d2, 3)
        assert g == g2

    def test_avg_degree(self):
        g = CSRGraph.from_edges([0, 1], [1, 0], 2)
        assert g.avg_degree == 1.0

    def test_nbytes_positive(self):
        g = CSRGraph.from_edges([0], [1], 2)
        assert g.nbytes > 0

    def test_not_hashable(self):
        g = CSRGraph.empty(2)
        with pytest.raises(TypeError):
            hash(g)


class TestDerived:
    def test_transpose_reverses_edges(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3)
        t = g.transpose()
        assert list(t.neighbors(1)) == [0]
        assert list(t.neighbors(2)) == [1]
        assert t.num_edges == g.num_edges

    def test_transpose_cached(self):
        g = CSRGraph.from_edges([0], [1], 2)
        assert g.transpose() is g.transpose()

    def test_symmetrize(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], 3).symmetrize()
        assert sorted(g.neighbors(1)) == [0, 2]
        assert g.num_edges == 4

    def test_symmetrize_idempotent(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0], 4).symmetrize()
        g2 = g.symmetrize()
        assert g == g2

    def test_with_self_loops(self):
        g = CSRGraph.from_edges([0], [1], 2).with_self_loops()
        assert 0 in g.neighbors(0)
        assert 1 in g.neighbors(1)
        assert g.num_edges == 3

    def test_with_self_loops_no_duplicate(self):
        g = CSRGraph.from_edges([0, 0], [0, 1], 2).with_self_loops()
        assert g.num_edges == 3  # existing loop coalesced

    def test_subgraph_edges(self):
        g = CSRGraph.from_edges([0, 1, 2, 0], [1, 2, 0, 2], 3)
        assert g.subgraph_edges([0, 1]) == 1
        assert g.subgraph_edges([0, 1, 2]) == 4
