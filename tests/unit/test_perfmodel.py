"""Unit tests for the perfmodel package (Eq. 5-13, profiling, mapping)."""

import numpy as np
import pytest

from repro.config import S_FEAT_BYTES, layer_dims
from repro.errors import ConfigError, SamplingError
from repro.graph.datasets import load_dataset
from repro.hw.topology import (
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
)
from repro.nn.models import model_size_bytes
from repro.perfmodel.mapping import initial_mapping
from repro.perfmodel.model import (
    PerformanceModel,
    StageTimes,
    WorkloadSplit,
    throughput_mteps,
)
from repro.perfmodel.sampling_profile import (
    SamplingProfile,
    project_full_scale_stats,
)
from repro.sampling.base import MiniBatchStats
from repro.sampling.neighbor import NeighborSampler


@pytest.fixture(scope="module")
def small_products():
    return load_dataset("products", scale=1 / 2048, seed=0)


@pytest.fixture(scope="module")
def profile(small_products):
    ds = small_products
    sampler = NeighborSampler(ds.graph,
                              np.arange(ds.graph.num_vertices),
                              (10, 5), ds.spec.feature_dim, seed=1)
    return SamplingProfile.measure(sampler, 256, num_probes=4)


@pytest.fixture(scope="module")
def fpga_pm(small_products, profile):
    dims = layer_dims(small_products.spec.feature_dim, 64,
                      small_products.spec.num_classes, 2)
    return PerformanceModel(hyscale_cpu_fpga_platform(2), dims, "gcn",
                            profile)


def _split(n_accel=2, cpu=128):
    return WorkloadSplit(cpu_targets=cpu,
                         accel_targets=(256,) * n_accel,
                         sample_threads=96, load_threads=64,
                         train_threads=96)


class TestSamplingProfile:
    def test_measure_stats_sane(self, profile):
        st = profile.mean_stats
        assert st.num_targets == 256
        assert st.num_input_nodes >= st.num_targets
        assert all(e > 0 for e in st.num_edges_per_layer)
        assert profile.rel_std >= 0

    def test_expected_stats_scaling(self, profile):
        half = profile.expected_stats(128)
        assert half.num_targets == pytest.approx(128, rel=0.05)
        with pytest.raises(SamplingError):
            profile.expected_stats(0)

    def test_sampling_time_monotone(self, profile):
        t1 = profile.sampling_time(256, 1e6)
        t2 = profile.sampling_time(512, 1e6)
        assert t2 > t1
        assert profile.sampling_time(256, 2e6) == pytest.approx(t1 / 2)

    def test_projection_exceeds_scaled(self, small_products, profile):
        """At full scale, dedup collapses far less: |V^0| grows."""
        proj = project_full_scale_stats(small_products.graph,
                                        small_products.spec,
                                        (10, 5), 256)
        assert proj.num_input_nodes > profile.mean_stats.num_input_nodes
        assert proj.num_targets == 256

    def test_projection_respects_fanout_cap(self, small_products):
        proj = project_full_scale_stats(small_products.graph,
                                        small_products.spec,
                                        (10, 5), 256)
        # Hop-1 edges can't exceed targets x fanout.
        assert proj.num_edges_per_layer[-1] <= 256 * 10


class TestWorkloadSplit:
    def test_totals(self):
        s = _split()
        assert s.total_targets == 128 + 512
        assert s.total_threads == 256

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSplit(cpu_targets=-1, accel_targets=(256,))
        with pytest.raises(ConfigError):
            WorkloadSplit(cpu_targets=0, accel_targets=(256,),
                          sample_threads=0)
        with pytest.raises(ConfigError):
            WorkloadSplit(cpu_targets=10, accel_targets=(),
                          train_threads=0)
        with pytest.raises(ConfigError):
            WorkloadSplit(cpu_targets=0, accel_targets=(256,),
                          accel_sample_fraction=1.5)


class TestStageTimes:
    def test_composition(self):
        st = StageTimes(t_sample_cpu=1.0, t_sample_accel=2.0,
                        t_load=0.5, t_transfer=3.0, t_train_cpu=1.5,
                        t_train_accel=2.5, t_sync=0.1)
        assert st.t_sample == 2.0
        assert st.t_accel == 3.0
        assert st.t_prop == 2.6
        assert st.iteration_time(True) == pytest.approx(3.0)
        assert st.iteration_time(False) == pytest.approx(
            2.0 + 0.5 + 3.0 + 2.6)
        assert set(st.as_dict()) == {
            "sample_cpu", "sample_accel", "load", "transfer",
            "train_cpu", "train_accel", "sync"}

    def test_throughput_mteps(self):
        assert throughput_mteps(2e6, 1.0) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            throughput_mteps(1.0, 0.0)


class TestPerformanceModel:
    def test_stage_times_positive(self, fpga_pm):
        st = fpga_pm.stage_times(_split())
        d = st.as_dict()
        for key in ("sample_cpu", "load", "transfer", "train_cpu",
                    "train_accel", "sync"):
            assert d[key] > 0, key

    def test_sync_matches_eq13(self, fpga_pm):
        st = fpga_pm.stage_times(_split())
        expected = 2.0 * model_size_bytes(fpga_pm.dims, "gcn",
                                          S_FEAT_BYTES) / \
            fpga_pm.platform.pcie.bandwidth
        assert st.t_sync == pytest.approx(expected)

    def test_load_scales_with_trainers(self, fpga_pm):
        light = fpga_pm.stage_times(_split(cpu=0))
        heavy = fpga_pm.stage_times(_split(cpu=256))
        assert heavy.t_load > light.t_load

    def test_transfer_excludes_cpu_batch(self, fpga_pm):
        a = fpga_pm.stage_times(_split(cpu=0))
        b = fpga_pm.stage_times(_split(cpu=512))
        # CPU batches never cross PCIe.
        assert a.t_transfer == pytest.approx(b.t_transfer)

    def test_accel_sampling_split(self, fpga_pm):
        none = fpga_pm.stage_times(_split())
        some = fpga_pm.stage_times(
            _split().with_updates(accel_sample_fraction=0.5))
        assert some.t_sample_accel > 0
        assert some.t_sample_cpu < none.t_sample_cpu
        assert none.t_sample_accel == 0.0

    def test_split_validation(self, fpga_pm):
        with pytest.raises(ConfigError):
            fpga_pm.stage_times(_split(n_accel=3))
        with pytest.raises(ConfigError):
            fpga_pm.stage_times(_split().with_updates(
                sample_threads=300))

    def test_epoch_time_scales_with_train_count(self, fpga_pm):
        s = _split()
        assert fpga_pm.epoch_time(s, 100_000) > \
            fpga_pm.epoch_time(s, 10_000)

    def test_throughput_positive(self, fpga_pm):
        assert fpga_pm.throughput(_split()) > 0

    def test_gpu_platform_model(self, small_products, profile):
        dims = layer_dims(small_products.spec.feature_dim, 64,
                          small_products.spec.num_classes, 2)
        pm = PerformanceModel(hyscale_cpu_gpu_platform(2), dims, "gcn",
                              profile)
        st = pm.stage_times(_split())
        assert st.t_train_accel > 0

    def test_rejects_bad_model_name(self, small_products, profile):
        dims = layer_dims(small_products.spec.feature_dim, 64,
                          small_products.spec.num_classes, 2)
        with pytest.raises(ConfigError):
            PerformanceModel(hyscale_cpu_fpga_platform(2), dims, "gat",
                             profile)


class TestMapping:
    def test_mapping_feasible(self, fpga_pm):
        res = initial_mapping(fpga_pm, 256)
        fpga_pm.validate_split(res.split)
        assert res.predicted_iteration_s > 0
        assert res.candidates_evaluated >= 3

    def test_fine_beats_or_matches_coarse(self, fpga_pm):
        coarse = initial_mapping(fpga_pm, 256, coarse=True)
        fine = initial_mapping(fpga_pm, 256, coarse=False)
        per_t = lambda r: r.predicted_iteration_s / \
            r.split.total_targets
        assert per_t(fine) <= per_t(coarse) * 1.001

    def test_non_hybrid_mapping_has_no_cpu_work(self, fpga_pm):
        res = initial_mapping(fpga_pm, 256, hybrid=False)
        assert res.split.cpu_targets == 0

    def test_invalid_minibatch(self, fpga_pm):
        with pytest.raises(ConfigError):
            initial_mapping(fpga_pm, 0)
