"""Resource-control units: monitor, estimator, allocator, and the
timing-plane hooks they plug into.

The resctl package closes the loop between the *modelled* timing plane
and the *realized* one: :class:`StageMonitor` samples wall times from
the live backends, :class:`OnlineEstimator` calibrates the analytic
model against them, :class:`NodeAllocator` arbitrates look-ahead depth
across concurrent sessions. The estimator sits directly upstream of
``drm_step``/``adaptive_depth``, so its safety contract — corrections
always positive and finite, calibrated times never non-finite or
negative, exact no-op until warm — is pinned here as hypothesis
properties, alongside the empty-fold and duplex-derate regression
fixes this PR ships.
"""

import math
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig, TrainingConfig
from repro.errors import ProtocolError
from repro.perfmodel.model import StageTimes
from repro.runtime import TrainingSession
from repro.runtime.backends.pipelined import fold_stage_stats
from repro.runtime.resctl import (
    DEFAULT_DEPTH_BUDGET,
    NodeAllocator,
    OnlineEstimator,
    REALIZED_STAGES,
    StageMonitor,
    fold_worker_realized,
    map_worker_totals,
    summarize_calibration,
)

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

#: Non-negative finite stage seconds, the shape a well-behaved plane
#: observes.
finite_seconds = st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False)

#: Arbitrary floats, the shape a misbehaving plane might observe.
hostile_seconds = st.floats(allow_nan=True, allow_infinity=True)


def _times(value: float = 0.01) -> StageTimes:
    return StageTimes(t_sample_cpu=value, t_sample_accel=value,
                      t_load=value, t_transfer=value,
                      t_train_cpu=value, t_train_accel=value,
                      t_sync=value)


class TestStageMonitor:
    def test_ewma_and_counts(self):
        mon = StageMonitor(window=8, alpha=0.5)
        for v in (1.0, 3.0):
            mon.observe("load", v)
        assert mon.count("load") == 2
        assert mon.ewma("load") == pytest.approx(2.0)   # 0.5*3 + 0.5*1
        assert mon.stages() == ("load",)

    def test_ring_is_bounded_but_totals_are_not(self):
        mon = StageMonitor(window=4)
        for v in range(100):
            mon.observe("sync", float(v))
        assert mon.count("sync") == 100
        assert mon.percentile("sync", 0) == 96.0   # ring kept last 4
        assert mon.summary()["sync"].total_s == sum(range(100))

    def test_percentiles_over_window(self):
        mon = StageMonitor(window=100)
        for v in range(1, 101):
            mon.observe("train_cpu", float(v))
        assert mon.percentile("train_cpu", 50) == pytest.approx(50.5)
        assert mon.percentile("train_cpu", 95) > 90
        with pytest.raises(ProtocolError):
            mon.percentile("train_cpu", 101)

    def test_invalid_samples_rejected(self):
        mon = StageMonitor()
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ProtocolError):
                mon.observe("load", bad)

    def test_merge_totals_feeds_summary_without_ring(self):
        mon = StageMonitor()
        mon.merge_totals({"train_accel": (10, 5.0)})
        mon.merge_totals({"train_accel": (10, 3.0)})
        digest = mon.summary()["train_accel"]
        assert digest.count == 20
        assert digest.total_s == pytest.approx(8.0)
        assert digest.ewma_s == pytest.approx(0.4)   # totals-only mean
        with pytest.raises(ProtocolError):
            mon.merge_totals({"train_accel": (-1, 1.0)})

    def test_summary_orders_canonical_stages_first(self):
        mon = StageMonitor()
        mon.observe("zz_custom", 1.0)
        mon.observe("sync", 1.0)
        mon.observe("sample_cpu", 1.0)
        assert list(mon.summary()) == ["sample_cpu", "sync",
                                       "zz_custom"]
        assert "sync" in mon.describe()

    def test_thread_safety_under_concurrent_observers(self):
        mon = StageMonitor(window=16)

        def hammer(stage):
            for _ in range(500):
                mon.observe(stage, 0.001)

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in REALIZED_STAGES]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for s in REALIZED_STAGES:
            assert mon.count(s) == 500

    def test_invalid_construction_rejected(self):
        with pytest.raises(ProtocolError):
            StageMonitor(window=0)
        with pytest.raises(ProtocolError):
            StageMonitor(alpha=0.0)


class TestFoldWorkerRealized:
    def test_kind_aware_reductions(self):
        realized = fold_worker_realized(
            [("cpu", {"sample": 1.0, "load": 2.0, "train": 3.0}),
             ("accel", {"sample": 0.5, "load": 1.0, "transfer": 0.2,
                        "train": 4.0}),
             ("accel", {"sample": 0.7, "load": 0.5, "transfer": 0.6,
                        "train": 2.0})],
            sync_s=0.1)
        assert realized["sample_cpu"] == pytest.approx(1.0)
        assert realized["sample_accel"] == pytest.approx(0.7)  # max
        assert realized["load"] == pytest.approx(3.5)          # sum
        assert realized["transfer"] == pytest.approx(0.6)      # max
        assert realized["train_cpu"] == pytest.approx(3.0)
        assert realized["train_accel"] == pytest.approx(4.0)   # max
        assert realized["sync"] == pytest.approx(0.1)

    def test_idle_and_invalid_entries_skipped(self):
        realized = fold_worker_realized(
            [("cpu", {}),
             ("accel", {"train": float("nan"), "load": -1.0}),
             ("cpu", {"train": 2.0})])
        assert realized == {"train_cpu": 2.0}

    def test_cpu_transfer_contributions_dropped(self):
        # CPU trainers never cross PCIe; a stray measurement must not
        # surface as transfer time.
        assert fold_worker_realized([("cpu", {"transfer": 5.0})]) == {}

    def test_map_worker_totals_by_kind(self):
        totals = {"sample": (3, 1.5), "load": (3, 0.9),
                  "transfer": (3, 0.3), "train": (3, 2.1),
                  "mystery": (1, 1.0)}
        cpu = map_worker_totals("cpu", totals)
        accel = map_worker_totals("accel", totals)
        assert cpu == {"sample_cpu": (3, 1.5), "load": (3, 0.9),
                       "train_cpu": (3, 2.1)}
        assert accel == {"sample_accel": (3, 1.5), "load": (3, 0.9),
                         "transfer": (3, 0.3), "train_accel": (3, 2.1)}


class TestOnlineEstimator:
    def test_cold_estimator_is_exact_noop(self):
        est = OnlineEstimator(warmup=3)
        times = _times(0.02)
        est.observe({"load": 0.5}, times)   # 1 observation < warmup
        assert not est.is_warm()
        assert est.correction("load") == 1.0
        assert est.calibrate(times) is times

    @common_settings
    @given(scale=st.floats(min_value=0.5, max_value=3.0),
           noise=st.lists(st.floats(min_value=-0.05, max_value=0.05),
                          min_size=20, max_size=60),
           alpha=st.floats(min_value=0.1, max_value=0.9))
    def test_corrections_converge_under_stationary_noise(
            self, scale, noise, alpha):
        """Realized = scale x model x (1 + eps), |eps| <= 5%: the
        correction must land inside the confidence-weighted envelope
        of the true scale."""
        est = OnlineEstimator(alpha=alpha, warmup=3)
        model = _times(0.01)
        for eps in noise:
            est.observe({"load": 0.01 * scale * (1.0 + eps)}, model)
        n = len(noise)
        w = n / (n + est.warmup)
        lo = 1.0 + w * (0.95 * scale - 1.0)
        hi = 1.0 + w * (1.05 * scale - 1.0)
        c = est.correction("load")
        assert lo - 1e-9 <= c <= hi + 1e-9
        # And the calibrated field is the analytic one scaled by it.
        assert est.calibrate(model).t_load == \
            pytest.approx(0.01 * c)

    @common_settings
    @given(observations=st.lists(
        st.dictionaries(st.sampled_from(REALIZED_STAGES),
                        hostile_seconds, max_size=7),
        max_size=25),
        model_value=st.floats(min_value=0.0, max_value=1e12,
                              allow_nan=False, allow_infinity=False))
    def test_calibrated_times_always_finite_and_nonnegative(
            self, observations, model_value):
        """Whatever a plane observes — nan, inf, negatives, absurd
        magnitudes — calibration must never emit a non-finite or
        negative stage time into drm_step/adaptive_depth."""
        est = OnlineEstimator(warmup=1)
        model = _times(model_value)
        for realized in observations:
            est.observe(realized, model)
        calibrated = est.calibrate(model)
        for stage_field in ("t_sample_cpu", "t_sample_accel", "t_load",
                            "t_transfer", "t_train_cpu",
                            "t_train_accel", "t_sync"):
            v = getattr(calibrated, stage_field)
            assert math.isfinite(v) and v >= 0.0

    def test_observation_forwarding_to_monitor(self):
        mon = StageMonitor()
        est = OnlineEstimator(monitor=mon)
        est.observe({"load": 0.5, "sync": float("nan")}, _times())
        assert mon.count("load") == 1
        assert mon.count("sync") == 0   # invalid sample filtered

    def test_summary_and_error_report(self):
        est = OnlineEstimator(warmup=2)
        model = _times(0.01)
        for _ in range(5):
            est.observe({"load": 0.02}, model)
        digest = est.summary()["load"]
        assert digest["warm"]
        assert digest["observations"] == 5
        assert digest["error"] == pytest.approx(0.5)   # |m - r| / r
        assert digest["correction"] > 1.0
        assert "load:50%" in summarize_calibration(est.summary())

    def test_summarize_calibration_cold_is_dash(self):
        assert summarize_calibration({}) == "-"
        assert summarize_calibration(
            {"load": {"warm": False, "error": 0.4}}) == "-"

    def test_invalid_construction_rejected(self):
        with pytest.raises(ProtocolError):
            OnlineEstimator(alpha=0.0)
        with pytest.raises(ProtocolError):
            OnlineEstimator(warmup=0)
        with pytest.raises(ProtocolError):
            OnlineEstimator(ratio_bounds=(0.0, 1.0))


class TestNodeAllocator:
    def test_single_session_gets_its_cap(self):
        alloc = NodeAllocator(depth_budget=16)
        grant = alloc.register("a", max_depth=6)
        assert grant.depth_cap == 6      # own cap below fair share
        assert alloc.active_count == 1
        grant.release()
        assert alloc.active_count == 0

    def test_fair_share_across_concurrent_sessions(self):
        alloc = NodeAllocator(depth_budget=8)
        a = alloc.register("a", max_depth=8)
        b = alloc.register("b", max_depth=8)
        assert a.depth_cap == 4 and b.depth_cap == 4
        c = alloc.register("c", max_depth=8)
        assert {a.depth_cap, b.depth_cap, c.depth_cap} == {2}
        # Releasing one raises the survivors' caps immediately — the
        # live re-read is the whole point of DepthGrant.depth_cap.
        c.release()
        assert a.depth_cap == 4 and b.depth_cap == 4
        b.release()
        assert a.depth_cap == 8

    def test_share_never_below_one(self):
        alloc = NodeAllocator(depth_budget=2)
        grants = [alloc.register(f"s{i}", max_depth=4)
                  for i in range(5)]
        assert all(g.depth_cap == 1 for g in grants)
        for g in grants:
            g.release()

    def test_release_is_idempotent_and_cap_read_after_release_raises(
            self):
        alloc = NodeAllocator(depth_budget=8)
        grant = alloc.register("a", max_depth=4)
        grant.release()
        grant.release()                      # no-op, never raises
        assert grant.released
        with pytest.raises(ProtocolError):
            grant.depth_cap

    def test_context_manager_releases(self):
        alloc = NodeAllocator(depth_budget=8)
        with alloc.register("a", max_depth=4) as grant:
            assert grant.depth_cap == 4
        assert alloc.active_count == 0

    def test_events_audit_and_snapshot(self):
        alloc = NodeAllocator(depth_budget=8)
        a = alloc.register("first", max_depth=4)
        b = alloc.register("second", max_depth=4)
        a.release()
        snap = alloc.snapshot()
        assert snap["depth_budget"] == 8
        assert snap["active_sessions"] == 1
        assert snap["sessions"] == {"second": 4}
        assert ("register", "first") in alloc.events
        assert ("release", "first") in alloc.events
        b.release()
        assert alloc.available_depth == 8

    def test_default_budget_and_validation(self):
        assert NodeAllocator().snapshot()["depth_budget"] == \
            DEFAULT_DEPTH_BUDGET
        with pytest.raises(ProtocolError):
            NodeAllocator(depth_budget=0)
        with pytest.raises(ProtocolError):
            NodeAllocator(depth_budget=4).register("a", max_depth=0)


class TestFoldStageStatsEmpty:
    """Regression: ``fold_stage_stats`` on an empty entry list used to
    trip ``max()``/``np.mean`` — both call sites (the pipelined plane's
    in-process fold, the fused plane's per-worker pipe fold) can reach
    it with a stage no buffer ever carried."""

    def test_empty_entries_fold_to_zeroed_stats(self):
        stats = fold_stage_stats("sample", [])
        assert (stats.stage, stats.items, stats.high_water,
                stats.mean_occupancy) == ("sample", 0, 0, 0.0)
        assert "items=0" in stats.describe()

    def test_zeroed_fold_survives_the_overlap_summary(self):
        # The fused plane's report path renders the folded record.
        from repro.runtime.backends.pipelined import summarize_overlap
        summary = summarize_overlap(
            {"sample": fold_stage_stats("sample", [])}, [(0, 1)])
        assert "depth=1-1" in summary

    def test_nonempty_fold_unchanged(self):
        stats = fold_stage_stats("train",
                                 [(3, 2, 0.5), (5, 1, 1.5)])
        assert stats.items == 8
        assert stats.high_water == 2
        assert stats.mean_occupancy == pytest.approx(1.0)


class TestDurationRowGating:
    """Regression for the duplex-derate bug: the PCIe contention derate
    must be priced only when the executing backend genuinely overlaps
    the next transfer with the gradient pull — not whenever
    ``sys_cfg.prefetch`` happens to be set."""

    @pytest.fixture()
    def timing_session(self, tiny_ds, fpga_platform):
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11)
        return TrainingSession(
            tiny_ds, cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            fpga_platform, profile_probes=2)

    def test_virtual_plane_row_unchanged(self, timing_session):
        """Legacy callers (no ``overlapped``) keep the prefetch-gated
        derate — the virtual reference's rows must not move."""
        times = _times(0.01)
        legacy = timing_session.duration_row(times)
        explicit = timing_session.duration_row(times, overlapped=True)
        assert legacy == explicit
        derate = timing_session.platform.pcie.duplex_derate
        assert derate > 0.0
        assert legacy[2] == pytest.approx(0.01 * (1.0 + derate))

    def test_non_overlapping_backend_skips_derate(self, timing_session):
        times = _times(0.01)
        row = timing_session.duration_row(times, overlapped=False)
        assert row[2] == pytest.approx(0.01)
        # Only the transfer entry moves.
        legacy = timing_session.duration_row(times)
        assert row[0] == legacy[0]
        assert row[1] == legacy[1]
        assert row[3] == legacy[3]

    def test_zero_transfer_immune(self, timing_session):
        times = _times(0.0)
        assert timing_session.duration_row(times)[2] == 0.0

    def test_backend_capability_flags(self):
        from repro.runtime import (
            PipelinedBackend,
            ProcessPipelinedBackend,
            ProcessPoolBackend,
            ProcessSamplingBackend,
            ThreadedBackend,
        )
        from repro.runtime.backends.virtual import VirtualTimeBackend
        # Strict planes must price rows exactly like the reference.
        assert VirtualTimeBackend.overlaps_transfer
        assert ThreadedBackend.overlaps_transfer
        assert ProcessPoolBackend.overlaps_transfer
        # The lock-step statistical plane is the one exception...
        assert not ProcessSamplingBackend.overlaps_transfer
        # ...and its fused subclass overlaps again.
        assert ProcessPipelinedBackend.overlaps_transfer
        assert PipelinedBackend.overlaps_transfer


class TestTimingStepHooks:
    """``timing_step``'s resctl kwargs are strictly opt-in: passing an
    estimator without ``calibrate`` observes but returns bit-identical
    results; calibrating feeds corrected times to row/DRM."""

    @pytest.fixture()
    def session_pair(self, tiny_ds, fpga_platform):
        def build():
            cfg = TrainingConfig(model="sage", minibatch_size=32,
                                 fanouts=(4, 3), hidden_dim=16,
                                 learning_rate=0.05, seed=11)
            return TrainingSession(
                tiny_ds, cfg,
                SystemConfig(hybrid=True, drm=True, prefetch=True),
                fpga_platform, profile_probes=2)
        return build(), build()

    def _stats(self, session):
        planned = next(iter(session.plan.iterate(1)))[1]
        stats_cpu = None
        stats_accel = []
        for idx, trainer in enumerate(session.trainers):
            targets = planned.assignments[idx]
            st_ = None if targets is None else \
                session.sampler.sample(targets).stats()
            if trainer.kind == "cpu":
                stats_cpu = st_
            else:
                stats_accel.append(st_)
        return stats_cpu, stats_accel

    def test_observe_only_is_bit_identical(self, session_pair):
        plain, hooked = session_pair
        stats_cpu, stats_accel = self._stats(plain)
        h_cpu, h_accel = self._stats(hooked)
        est = OnlineEstimator(warmup=1)
        for _ in range(4):   # warm it: corrections would bite if used
            est.observe({"load": 123.0}, _times(0.01))
        t0, r0, s0 = plain.timing_step(stats_cpu, stats_accel, 0)
        t1, r1, s1 = hooked.timing_step(
            h_cpu, h_accel, 0, estimator=est,
            realized={"load": 123.0}, calibrate=False)
        assert t0 == t1
        assert r0 == r1
        assert s0 == s1

    def test_calibrate_feeds_corrected_times(self, session_pair):
        plain, hooked = session_pair
        stats_cpu, stats_accel = self._stats(plain)
        h_cpu, h_accel = self._stats(hooked)
        t0, _, _ = plain.timing_step(stats_cpu, stats_accel, 0)
        est = OnlineEstimator(warmup=1)
        scale = 3.0
        for _ in range(50):
            est.observe({"load": t0.t_load * scale}, t0)
        t1, _, _ = hooked.timing_step(
            h_cpu, h_accel, 0, estimator=est,
            realized={"load": t0.t_load * scale}, calibrate=True)
        assert t1.t_load > t0.t_load
        assert t1.t_load == pytest.approx(
            t0.t_load * est.correction("load"))
