"""Unit tests for repro.config and error hierarchy."""

import logging

import pytest

from repro.config import (
    ABLATION_PRESETS,
    SystemConfig,
    TrainingConfig,
    layer_dims,
)
from repro.errors import (
    CapacityError,
    ConfigError,
    DeviceError,
    GraphError,
    ReproError,
)
from repro.logging_utils import get_logger, log_duration


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        cfg = TrainingConfig()
        assert cfg.minibatch_size == 1024
        assert cfg.fanouts == (25, 10)
        assert cfg.hidden_dim == 256
        assert cfg.num_layers == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainingConfig(model="gat")
        with pytest.raises(ConfigError):
            TrainingConfig(minibatch_size=0)
        with pytest.raises(ConfigError):
            TrainingConfig(fanouts=())
        with pytest.raises(ConfigError):
            TrainingConfig(fanouts=(5, -1))
        with pytest.raises(ConfigError):
            TrainingConfig(hidden_dim=0)
        with pytest.raises(ConfigError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0)

    def test_with_updates(self):
        cfg = TrainingConfig().with_updates(hidden_dim=32)
        assert cfg.hidden_dim == 32
        assert cfg.minibatch_size == 1024


class TestSystemConfig:
    def test_drm_requires_hybrid(self):
        with pytest.raises(ConfigError):
            SystemConfig(hybrid=False, drm=True)

    def test_prefetch_depth_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(prefetch_depth=0)

    def test_work_step_bounds(self):
        with pytest.raises(ConfigError):
            SystemConfig(drm_work_step=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(drm_work_step=0.6)

    def test_ablation_presets_ordering(self):
        names = list(ABLATION_PRESETS)
        assert names == ["baseline", "hybrid_static", "hybrid_drm",
                         "hybrid_drm_tfp"]
        assert not ABLATION_PRESETS["baseline"].hybrid
        assert ABLATION_PRESETS["hybrid_static"].hybrid
        assert not ABLATION_PRESETS["hybrid_static"].drm
        assert ABLATION_PRESETS["hybrid_drm"].drm
        assert not ABLATION_PRESETS["hybrid_drm"].prefetch
        assert ABLATION_PRESETS["hybrid_drm_tfp"].prefetch


class TestLayerDims:
    def test_two_layer(self):
        assert layer_dims(100, 256, 47, 2) == (100, 256, 47)

    def test_three_layer(self):
        assert layer_dims(100, 256, 47, 3) == (100, 256, 256, 47)

    def test_one_layer(self):
        assert layer_dims(100, 256, 47, 1) == (100, 47)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            layer_dims(100, 256, 47, 0)
        with pytest.raises(ConfigError):
            layer_dims(0, 256, 47, 2)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(GraphError, ReproError)
        assert issubclass(CapacityError, DeviceError)
        assert issubclass(DeviceError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise CapacityError("full")


class TestLogging:
    def test_get_logger_namespaced(self):
        lg = get_logger("runtime.drm")
        assert lg.name == "repro.runtime.drm"
        assert get_logger().name == "repro"

    def test_log_duration(self, caplog):
        lg = get_logger("test")
        with caplog.at_level(logging.DEBUG, logger="repro.test"):
            with log_duration(lg, "block"):
                pass
        assert any("block took" in r.message for r in caplog.records)
