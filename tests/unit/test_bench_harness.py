"""Unit tests for the bench harness (formatting, aggregation)."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    format_series,
    format_table,
    geomean,
)
from repro.errors import ConfigError


class TestFormatTable:
    def test_basic_render(self):
        text = format_table("T", ["a", "b"], [(1, 2.5), ("x", 0.001)])
        assert "== T ==" in text
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "0.001" in text

    def test_notes_rendered(self):
        text = format_table("T", ["a"], [(1,)], notes=["hello"])
        assert "note: hello" in text

    def test_empty_rows(self):
        text = format_table("T", ["col"], [])
        assert "col" in text

    def test_large_values_compact(self):
        text = format_table("T", ["v"], [(12345.678,)])
        assert "12346" in text


class TestExperimentResult:
    def test_add_row_and_column(self):
        res = ExperimentResult("t", ["x", "y"])
        res.add_row(1, 2)
        res.add_row(3, 4)
        assert res.column("y") == [2, 4]
        assert "== t ==" in res.render()

    def test_row_arity_checked(self):
        res = ExperimentResult("t", ["x", "y"])
        with pytest.raises(ConfigError):
            res.add_row(1)

    def test_unknown_column(self):
        res = ExperimentResult("t", ["x"])
        with pytest.raises(ValueError):
            res.column("z")


class TestSeries:
    def test_format_series(self):
        text = format_series("S", "n", [1, 2, 4],
                             {"gcn": [1.0, 1.9, 3.5]})
        assert "gcn" in text and "3.50" in text


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            geomean([0.0])
