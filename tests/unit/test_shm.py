"""SharedFeatureStore: layout, attach parity, and lifetime/cleanup.

The store backs the process-pool backend: the dataset's features,
labels, and CSR topology live once in a single shared-memory segment
that worker processes map zero-copy. These tests pin the manifest
round trip, array bit-parity, and — most importantly — the cleanup
contract (owner unlinks exactly once, no segment survives)."""

import glob
import os

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.runtime.shm import SharedFeatureStore


def _segment_paths():
    return set(glob.glob("/dev/shm/" + SharedFeatureStore.NAME_PREFIX
                         + "*"))


@pytest.fixture()
def store(tiny_ds):
    s = SharedFeatureStore.create(tiny_ds)
    yield s
    s.close()
    try:
        s.unlink()
    except Exception:
        pass


class TestLayout:
    def test_shared_arrays_bit_equal_source(self, tiny_ds, store):
        np.testing.assert_array_equal(store.features, tiny_ds.features)
        np.testing.assert_array_equal(store.labels, tiny_ds.labels)
        np.testing.assert_array_equal(store.indptr,
                                      tiny_ds.graph.indptr)
        np.testing.assert_array_equal(store.indices,
                                      tiny_ds.graph.indices)

    def test_dtypes_preserved(self, tiny_ds, store):
        assert store.features.dtype == tiny_ds.features.dtype
        assert store.labels.dtype == tiny_ds.labels.dtype
        assert store.indptr.dtype == np.int64

    def test_degrees_match_graph(self, tiny_ds, store):
        np.testing.assert_array_equal(store.degrees,
                                      tiny_ds.graph.out_degrees)

    def test_offsets_aligned_and_disjoint(self, store):
        specs = store.manifest.arrays
        end = 0
        for spec in specs:
            assert spec.offset % 64 == 0
            assert spec.offset >= end
            end = spec.offset + spec.nbytes
        assert store.nbytes == end


class TestAttach:
    def test_attach_sees_same_bits(self, tiny_ds, store):
        attached = SharedFeatureStore.attach(store.manifest)
        try:
            np.testing.assert_array_equal(attached.features,
                                          tiny_ds.features)
            np.testing.assert_array_equal(attached.degrees,
                                          tiny_ds.graph.out_degrees)
            assert not attached.owner
        finally:
            attached.close()

    def test_attached_store_may_not_unlink(self, store):
        attached = SharedFeatureStore.attach(store.manifest)
        try:
            with pytest.raises(ProtocolError):
                attached.unlink()
        finally:
            attached.close()

    def test_manifest_is_picklable(self, store):
        import pickle
        manifest = pickle.loads(pickle.dumps(store.manifest))
        assert manifest == store.manifest


class TestLifetime:
    @pytest.fixture(autouse=True)
    def _needs_dev_shm(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")

    def test_create_then_unlink_leaves_no_segment(self, tiny_ds):
        before = _segment_paths()
        s = SharedFeatureStore.create(tiny_ds)
        assert len(_segment_paths()) == len(before) + 1
        s.close()
        s.unlink()
        assert _segment_paths() == before

    def test_context_manager_owner_unlinks(self, tiny_ds):
        before = _segment_paths()
        with SharedFeatureStore.create(tiny_ds) as s:
            assert s.owner
            assert len(_segment_paths()) == len(before) + 1
        assert _segment_paths() == before

    def test_unlink_is_idempotent(self, tiny_ds):
        s = SharedFeatureStore.create(tiny_ds)
        s.close()
        s.unlink()
        s.unlink()   # second unlink must not raise

    def test_close_invalidates_views(self, tiny_ds):
        s = SharedFeatureStore.create(tiny_ds)
        s.close()
        with pytest.raises(ProtocolError):
            s.features
        s.unlink()

    def test_gc_finalizer_unlinks_leaked_owner(self, tiny_ds):
        """Dropping the last reference without close/unlink must still
        destroy the segment (the last-resort guard)."""
        import gc
        before = _segment_paths()
        s = SharedFeatureStore.create(tiny_ds)
        name = s.manifest.segment
        del s
        gc.collect()
        assert _segment_paths() == before
        assert not os.path.exists("/dev/shm/" + name)
