"""The bench regression gate (``benchmarks/check_regression.py``) and
the committed baselines it guards: the ``bench-kernels/v1`` kernel
micro-bench and the ``bench-serving/v1`` serving smoke."""

import copy
import importlib.util
import json
import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parents[2] / "benchmarks"


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", _BENCH_DIR / "check_regression.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


gate = _load_gate()


def _doc(**kernels):
    return {
        "schema": "bench-kernels/v1",
        "fixture": {"dataset": "ogbn-products"},
        "timing": {"number": 20, "repeats": 5},
        "kernels": {
            name: {"reference_s": ref, "fast_s": fastv,
                   "speedup": ref / fastv}
            for name, (ref, fastv) in kernels.items()},
    }


BASE = _doc(gather=(1.0, 1.0), gather_quantize_int8=(4.0, 1.0),
            segment_sum=(3.0, 1.0))


class TestCompare:
    def test_identical_run_passes(self):
        assert gate.compare(BASE, copy.deepcopy(BASE)) == []

    def test_missing_kernel_fails(self):
        cur = copy.deepcopy(BASE)
        del cur["kernels"]["segment_sum"]
        problems = gate.compare(BASE, cur)
        assert any("missing" in p for p in problems)

    def test_hard_floor_on_fused_int8(self):
        cur = _doc(gather=(1.0, 1.0),
                   gather_quantize_int8=(4.0, 2.5),   # 1.6x < 2.0
                   segment_sum=(3.0, 1.0))
        problems = gate.compare(BASE, cur)
        assert any("hard floor" in p for p in problems)

    def test_speedup_collapse_fails_even_when_floor_holds(self):
        # segment_sum falls from 3.0x to 1.0x: above any hard floor,
        # but below 60% of its own baseline.
        cur = _doc(gather=(1.0, 1.0), gather_quantize_int8=(4.0, 1.0),
                   segment_sum=(3.0, 3.0))
        problems = gate.compare(BASE, cur)
        assert any("below 60% of baseline" in p for p in problems)

    def test_absolute_time_blowup_fails(self):
        # Ratios intact, but everything 10x slower than baseline — an
        # accidental reference fallback or debug build.
        cur = _doc(gather=(10.0, 10.0),
                   gather_quantize_int8=(40.0, 10.0),
                   segment_sum=(30.0, 10.0))
        problems = gate.compare(BASE, cur)
        assert any("exceeds 3.0x baseline" in p for p in problems)

    def test_slack_is_tunable(self):
        cur = _doc(gather=(2.0, 2.0), gather_quantize_int8=(8.0, 2.0),
                   segment_sum=(6.0, 2.0))
        assert gate.compare(BASE, cur, time_slack=1.5)
        assert gate.compare(BASE, cur, time_slack=4.0) == []

    def test_unknown_schema_rejected(self):
        bad = copy.deepcopy(BASE)
        bad["schema"] = "bench-kernels/v0"
        assert gate.compare(bad, BASE)
        assert gate.compare(BASE, bad)


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def baseline(self):
        with open(_BENCH_DIR / "BENCH_kernels.json") as fh:
            return json.load(fh)

    def test_schema_and_required_kernels(self, baseline):
        assert baseline["schema"] == "bench-kernels/v1"
        for name in ("gather", "gather_quantize_int8",
                     "gather_quantize_fp16", "quantize_int8",
                     "segment_sum"):
            row = baseline["kernels"][name]
            assert row["reference_s"] > 0 and row["fast_s"] > 0
            assert row["speedup"] == pytest.approx(
                row["reference_s"] / row["fast_s"])

    def test_baseline_meets_acceptance_floor(self, baseline):
        # The PR's acceptance criterion, pinned: fused gather+int8 at
        # >= 2x over the reference composition on the products-scale
        # fixture.
        assert baseline["kernels"]["gather_quantize_int8"][
            "speedup"] >= 2.0

    def test_baseline_passes_its_own_gate(self, baseline):
        assert gate.compare(baseline, copy.deepcopy(baseline)) == []


def _serving_doc(budget_s=0.25, **scenarios):
    return {
        "schema": "bench-serving/v1",
        "latency_budget_s": budget_s,
        "scenarios": {
            name: {"offered": off, "accepted": off - sum(shed.values()),
                   "completed": off - sum(shed.values()),
                   "shed": dict(shed),
                   "shed_rate": sum(shed.values()) / off,
                   "latency_p99_ms": p99_ms,
                   "throughput_rps": rps}
            for name, (off, shed, p99_ms, rps) in scenarios.items()},
    }


SERVING_BASE = _serving_doc(
    nominal=(150, {}, 30.0, 150.0),
    overload=(2000, {"queue_full": 200}, 12.0, 3800.0))


class TestCompareServing:
    def test_identical_run_passes(self):
        assert gate.compare_serving(
            SERVING_BASE, copy.deepcopy(SERVING_BASE)) == []

    def test_missing_scenario_fails(self):
        cur = copy.deepcopy(SERVING_BASE)
        del cur["scenarios"]["overload"]
        assert any("missing" in p
                   for p in gate.compare_serving(SERVING_BASE, cur))

    def test_budget_blowout_fails(self):
        cur = copy.deepcopy(SERVING_BASE)
        cur["scenarios"]["overload"]["latency_p99_ms"] = 400.0
        problems = gate.compare_serving(SERVING_BASE, cur)
        assert any("latency budget" in p for p in problems)

    def test_dropped_requests_fail(self):
        cur = copy.deepcopy(SERVING_BASE)
        cur["scenarios"]["nominal"]["completed"] -= 3
        problems = gate.compare_serving(SERVING_BASE, cur)
        assert any("never completed" in p for p in problems)

    def test_untyped_shed_fails(self):
        cur = copy.deepcopy(SERVING_BASE)
        cur["scenarios"]["overload"]["shed"] = {"vibes": 80}
        problems = gate.compare_serving(SERVING_BASE, cur)
        assert any("untyped" in p for p in problems)

    def test_overload_that_stops_shedding_fails(self):
        cur = copy.deepcopy(SERVING_BASE)
        cur["scenarios"]["overload"]["shed"] = {}
        cur["scenarios"]["overload"]["shed_rate"] = 0.0
        problems = gate.compare_serving(SERVING_BASE, cur)
        assert any("stopped gating" in p for p in problems)

    def test_throughput_collapse_fails_and_slack_is_tunable(self):
        cur = copy.deepcopy(SERVING_BASE)
        cur["scenarios"]["nominal"]["throughput_rps"] = 10.0
        assert any("throughput" in p
                   for p in gate.compare_serving(SERVING_BASE, cur))
        assert gate.compare_serving(SERVING_BASE, cur,
                                    throughput_slack=0.01) == []

    def test_schema_mismatch_rejected(self):
        bad = copy.deepcopy(SERVING_BASE)
        bad["schema"] = "bench-serving/v2"
        assert gate.compare_serving(SERVING_BASE, bad)


class TestCommittedServingBaseline:
    @pytest.fixture(scope="class")
    def baseline(self):
        with open(_BENCH_DIR / "BENCH_serving.json") as fh:
            return json.load(fh)

    def test_schema_and_required_scenarios(self, baseline):
        assert baseline["schema"] == "bench-serving/v1"
        budget_ms = baseline["latency_budget_s"] * 1e3
        for name in ("nominal", "overload", "credits"):
            row = baseline["scenarios"][name]
            assert row["completed"] == row["accepted"]
            assert row["latency_p99_ms"] <= budget_ms
            assert row["throughput_rps"] > 0

    def test_baseline_pins_the_acceptance_criteria(self, baseline):
        # The PR's acceptance criterion: typed shed under overload
        # while accepted p99 stays within the budget.
        overload = baseline["scenarios"]["overload"]
        assert overload["shed"].get("queue_full", 0) > 0
        assert baseline["scenarios"]["nominal"]["shed"] == {}
        assert baseline["scenarios"]["credits"]["shed"].get(
            "no_credit", 0) > 0

    def test_baseline_passes_its_own_gate(self, baseline):
        assert gate.compare_serving(baseline,
                                    copy.deepcopy(baseline)) == []
