"""Unit tests for runtime components: protocol, synchronizer, trainer,
prefetch buffer, and the DRM engine."""

import threading
import time

import numpy as np
import pytest

from repro.config import SystemConfig, layer_dims
from repro.errors import ProtocolError, ShapeError
from repro.nn.models import build_model
from repro.perfmodel.model import StageTimes, WorkloadSplit
from repro.runtime.drm import MIN_ACCEL_TARGETS, DRMEngine
from repro.runtime.prefetch import PrefetchBuffer
from repro.runtime.protocol import (
    ProtocolLog,
    Signal,
    validate_protocol,
)
from repro.runtime.synchronizer import GradientSynchronizer
from repro.runtime.trainer import TrainerNode


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

def _good_log(n=3, iterations=2):
    log = ProtocolLog()
    for it in range(iterations):
        for i in range(n):
            log.record(it, Signal.DONE, f"t{i}")
        log.record(it, Signal.SYNC, "sync")
        for i in range(n):
            log.record(it, Signal.ACK, f"t{i}")
    return log


class TestProtocol:
    def test_valid_log_passes(self):
        validate_protocol(_good_log(), 3)

    def test_missing_done_fails(self):
        log = ProtocolLog()
        log.record(0, Signal.DONE, "t0")
        log.record(0, Signal.SYNC, "sync")
        log.record(0, Signal.ACK, "t0")
        log.record(0, Signal.ACK, "t1")
        with pytest.raises(ProtocolError):
            validate_protocol(log, 2)

    def test_ack_before_sync_fails(self):
        log = ProtocolLog()
        log.record(0, Signal.DONE, "t0")
        log.record(0, Signal.ACK, "t0")
        log.record(0, Signal.SYNC, "sync")
        with pytest.raises(ProtocolError):
            validate_protocol(log, 1)

    def test_duplicate_sender_fails(self):
        log = ProtocolLog()
        log.record(0, Signal.DONE, "t0")
        log.record(0, Signal.DONE, "t0")
        log.record(0, Signal.SYNC, "sync")
        log.record(0, Signal.ACK, "t0")
        log.record(0, Signal.ACK, "t1")
        with pytest.raises(ProtocolError):
            validate_protocol(log, 2)

    def test_interleaved_iterations_fail(self):
        log = ProtocolLog()
        log.record(1, Signal.DONE, "t0")   # iteration 1 starts first
        log.record(1, Signal.SYNC, "sync")
        log.record(1, Signal.ACK, "t0")
        log.record(0, Signal.DONE, "t0")
        log.record(0, Signal.SYNC, "sync")
        log.record(0, Signal.ACK, "t0")
        with pytest.raises(ProtocolError):
            validate_protocol(log, 1)

    def test_counts(self):
        log = _good_log(2, 1)
        assert log.count(0, Signal.DONE) == 2
        assert log.num_iterations == 1


# ---------------------------------------------------------------------------
# Synchronizer
# ---------------------------------------------------------------------------

def _replicas(n=3, seed=0):
    return [build_model("gcn", (4, 6, 2), seed=seed) for _ in range(n)]


class TestSynchronizer:
    def test_weighted_average(self):
        models = _replicas(2)
        sync = GradientSynchronizer(models, weighting="batch")
        models[0].layers[0].linear.dW += 1.0
        models[1].layers[0].linear.dW += 3.0
        sync.all_reduce(batch_sizes=[1, 3])
        expected = (1.0 * 1 + 3.0 * 3) / 4
        for m in models:
            assert np.allclose(m.layers[0].linear.dW, expected)

    def test_uniform_average(self):
        models = _replicas(2)
        sync = GradientSynchronizer(models, weighting="uniform")
        models[0].layers[0].linear.dW += 2.0
        sync.all_reduce()
        for m in models:
            assert np.allclose(m.layers[0].linear.dW, 1.0)

    def test_zero_weight_trainer_excluded(self):
        models = _replicas(2)
        sync = GradientSynchronizer(models)
        models[0].layers[0].linear.dW += 2.0
        models[1].layers[0].linear.dW += 999.0
        sync.all_reduce(batch_sizes=[4, 0])
        for m in models:
            assert np.allclose(m.layers[0].linear.dW, 2.0)

    def test_done_counting_with_log(self):
        models = _replicas(2)
        sync = GradientSynchronizer(models)
        log = ProtocolLog()
        sync.attach_log(log)
        sync.signal_done("a", 0)
        with pytest.raises(ProtocolError):
            sync.all_reduce(batch_sizes=[1, 1], iteration=0)
        sync.signal_done("b", 0)
        sync.all_reduce(batch_sizes=[1, 1], iteration=0)
        assert log.count(0, Signal.DONE) == 2

    def test_too_many_dones(self):
        sync = GradientSynchronizer(_replicas(1))
        sync.signal_done("a")
        with pytest.raises(ProtocolError):
            sync.signal_done("b")

    def test_broadcast_parameters(self):
        models = [build_model("gcn", (4, 2), seed=i) for i in range(3)]
        sync = GradientSynchronizer(models)
        assert not sync.replicas_consistent()
        sync.broadcast_parameters(0)
        assert sync.replicas_consistent()

    def test_batch_sizes_required(self):
        sync = GradientSynchronizer(_replicas(2))
        with pytest.raises(ProtocolError):
            sync.all_reduce()
        with pytest.raises(ShapeError):
            sync.all_reduce(batch_sizes=[1])

    def test_mismatched_replicas(self):
        with pytest.raises(ShapeError):
            GradientSynchronizer([build_model("gcn", (4, 2), 0),
                                  build_model("gcn", (4, 3), 0)])


# ---------------------------------------------------------------------------
# TrainerNode
# ---------------------------------------------------------------------------

class TestTrainerNode:
    def test_functional_training(self, tiny_ds, tiny_sampler):
        dims = layer_dims(tiny_ds.spec.feature_dim, 8,
                          tiny_ds.spec.num_classes, 2)
        node = TrainerNode("t", "cpu", build_model("sage", dims, 0),
                           None, dims, "sage")
        mb = tiny_sampler.sample(tiny_ds.train_ids[:16])
        x0 = tiny_ds.features[mb.input_nodes].astype(np.float64)
        rep = node.train_minibatch(mb, x0, tiny_ds.labels[mb.targets],
                                   tiny_ds.graph.out_degrees)
        assert rep.loss > 0
        assert rep.batch_targets == 16
        assert rep.propagation is None
        grads = node.model.get_flat_grads()
        assert np.abs(grads).sum() > 0

    def test_kernel_model_timing_attached(self, tiny_ds, tiny_sampler):
        from repro.hw.kernels import CPUKernelModel
        from repro.hw.specs import AMD_EPYC_7763
        dims = layer_dims(tiny_ds.spec.feature_dim, 8,
                          tiny_ds.spec.num_classes, 2)
        node = TrainerNode("t", "cpu", build_model("gcn", dims, 0),
                           CPUKernelModel(AMD_EPYC_7763), dims, "gcn")
        mb = tiny_sampler.sample(tiny_ds.train_ids[:8])
        x0 = tiny_ds.features[mb.input_nodes].astype(np.float64)
        rep = node.train_minibatch(mb, x0, tiny_ds.labels[mb.targets],
                                   tiny_ds.graph.out_degrees)
        assert rep.propagation is not None
        assert rep.propagation.total_s > 0

    def test_evaluate_leaves_grads_untouched(self, tiny_ds,
                                             tiny_sampler):
        dims = layer_dims(tiny_ds.spec.feature_dim, 8,
                          tiny_ds.spec.num_classes, 2)
        node = TrainerNode("t", "cpu", build_model("gcn", dims, 0),
                           None, dims, "gcn")
        mb = tiny_sampler.sample(tiny_ds.train_ids[:8])
        x0 = tiny_ds.features[mb.input_nodes].astype(np.float64)
        loss, acc = node.evaluate(mb, x0, tiny_ds.labels[mb.targets],
                                  tiny_ds.graph.out_degrees)
        assert loss > 0 and 0.0 <= acc <= 1.0
        assert not node.model.get_flat_grads().any()


# ---------------------------------------------------------------------------
# PrefetchBuffer
# ---------------------------------------------------------------------------

class TestPrefetchBuffer:
    def test_fifo_order(self):
        buf = PrefetchBuffer(3)
        for i in range(3):
            buf.put(i)
        assert [buf.get() for _ in range(3)] == [0, 1, 2]

    def test_depth_blocks_put(self):
        buf = PrefetchBuffer(1)
        buf.put("a")
        with pytest.raises(ProtocolError):
            buf.put("b", timeout=0.05)

    def test_close_drains(self):
        buf = PrefetchBuffer(2)
        buf.put("x")
        buf.close()
        assert buf.get() == "x"
        assert buf.get() is None
        with pytest.raises(ProtocolError):
            buf.put("y")

    def test_threaded_producer_consumer(self):
        buf = PrefetchBuffer(2)
        got = []

        def consumer():
            while True:
                item = buf.get(timeout=5)
                if item is None:
                    return
                got.append(item)

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(20):
            buf.put(i, timeout=5)
        buf.close()
        t.join(timeout=5)
        assert got == list(range(20))
        assert buf.high_water <= 2
        assert buf.total_puts == 20

    def test_invalid_depth(self):
        with pytest.raises(ProtocolError):
            PrefetchBuffer(0)


class TestPrefetchBufferEdgeCases:
    def test_get_times_out_on_empty_buffer(self):
        buf = PrefetchBuffer(2)
        with pytest.raises(ProtocolError, match="get timed out"):
            buf.get(timeout=0.05)

    def test_put_times_out_on_full_buffer(self):
        buf = PrefetchBuffer(1)
        buf.put("a")
        with pytest.raises(ProtocolError, match="put timed out"):
            buf.put("b", timeout=0.05)
        # The timed-out put must not have corrupted occupancy.
        assert buf.occupancy == 1
        assert buf.get() == "a"

    def test_put_after_close_rejected_even_when_space_free(self):
        buf = PrefetchBuffer(4)
        buf.close()
        with pytest.raises(ProtocolError, match="closed"):
            buf.put("x")
        assert buf.occupancy == 0
        assert buf.total_puts == 0

    def test_put_blocked_on_full_buffer_unblocks_on_close(self):
        """close() must wake a producer stuck in put() — the error path
        the threaded backend relies on for fast shutdown."""
        buf = PrefetchBuffer(1)
        buf.put("a")
        errors = []

        def producer():
            try:
                buf.put("b", timeout=5)
            except ProtocolError as exc:
                errors.append(exc)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        buf.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert len(errors) == 1 and "closed" in str(errors[0])

    def test_occupancy_accounting_under_concurrent_producers(self):
        """N producers racing one consumer: occupancy never exceeds
        depth, high_water is sane, and total_puts counts every item."""
        depth, producers, per_producer = 3, 4, 25
        buf = PrefetchBuffer(depth)
        got = []
        occupancy_samples = []

        def producer(tag):
            for i in range(per_producer):
                buf.put((tag, i), timeout=5)
                occupancy_samples.append(buf.occupancy)

        def consumer():
            while True:
                item = buf.get(timeout=5)
                if item is None:
                    return
                got.append(item)

        consume = threading.Thread(target=consumer)
        consume.start()
        threads = [threading.Thread(target=producer, args=(p,))
                   for p in range(producers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        buf.close()
        consume.join(timeout=10)

        total = producers * per_producer
        assert buf.total_puts == total
        assert len(got) == total
        assert sorted(got) == sorted((p, i) for p in range(producers)
                                     for i in range(per_producer))
        assert 1 <= buf.high_water <= depth
        assert all(0 <= o <= depth for o in occupancy_samples)
        assert buf.occupancy == 0


class TestPrefetchDeadlineSemantics:
    """Timeouts are monotonic deadlines, not per-wait restarts.

    ``Condition.wait(timeout)`` restarts its timer on every call; the
    old put/get loops re-armed the full timeout after every wakeup, so
    a peer that kept notifying without making the predicate true could
    block a caller far past its requested deadline. These tests provoke
    exactly that: a waker thread repeatedly notifies the buffer's
    conditions (the legal spurious-wakeup scenario) while the predicate
    stays false, and assert the blocked call still fails on time.
    """

    def _spin_waker(self, buf, stop):
        wakeups = [0]

        def waker():
            while not stop.is_set():
                with buf._lock:
                    buf._not_full.notify_all()
                    buf._not_empty.notify_all()
                wakeups[0] += 1
                time.sleep(0.02)

        t = threading.Thread(target=waker, daemon=True)
        t.start()
        return t, wakeups

    def test_put_deadline_survives_repeated_wakeups(self):
        buf = PrefetchBuffer(1)
        buf.put("occupying")
        stop = threading.Event()
        waker, wakeups = self._spin_waker(buf, stop)
        outcome = []

        def blocked_put():
            try:
                buf.put("late", timeout=0.25)
                outcome.append("returned")
            except ProtocolError as exc:
                outcome.append(exc)

        t = threading.Thread(target=blocked_put, daemon=True)
        start = time.monotonic()
        t.start()
        t.join(timeout=2.0)
        elapsed = time.monotonic() - start
        stop.set()
        waker.join(timeout=5.0)
        # Old semantics: every 20 ms wakeup re-armed the 250 ms wait,
        # so the put outlives the 2 s join. New semantics: it fails at
        # ~250 ms no matter how many wakeups occurred in between.
        assert not t.is_alive(), \
            "put blocked past its deadline under repeated wakeups"
        assert elapsed < 1.5
        assert wakeups[0] >= 2, "scenario never provoked re-wakeups"
        assert len(outcome) == 1
        assert isinstance(outcome[0], ProtocolError)
        assert "put timed out" in str(outcome[0])

    def test_get_deadline_survives_repeated_wakeups(self):
        buf = PrefetchBuffer(1)          # stays empty
        stop = threading.Event()
        waker, wakeups = self._spin_waker(buf, stop)
        outcome = []

        def blocked_get():
            try:
                outcome.append(buf.get(timeout=0.25))
            except ProtocolError as exc:
                outcome.append(exc)

        t = threading.Thread(target=blocked_get, daemon=True)
        t.start()
        t.join(timeout=2.0)
        stop.set()
        waker.join(timeout=5.0)
        assert not t.is_alive(), \
            "get blocked past its deadline under repeated wakeups"
        assert wakeups[0] >= 2, "scenario never provoked re-wakeups"
        assert len(outcome) == 1
        assert isinstance(outcome[0], ProtocolError)
        assert "get timed out" in str(outcome[0])

    def test_zero_ish_timeout_fails_fast_when_full(self):
        buf = PrefetchBuffer(1)
        buf.put("a")
        start = time.monotonic()
        with pytest.raises(ProtocolError, match="put timed out"):
            buf.put("b", timeout=0.001)
        assert time.monotonic() - start < 0.5


class TestPrefetchResize:
    def test_grow_unblocks_waiting_producer(self):
        buf = PrefetchBuffer(1)
        buf.put("a")
        done = threading.Event()

        def producer():
            buf.put("b", timeout=5)
            done.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()
        buf.resize(2)
        assert done.wait(timeout=5)
        t.join(timeout=5)
        assert buf.occupancy == 2

    def test_shrink_keeps_items_and_blocks_puts(self):
        buf = PrefetchBuffer(3)
        for i in range(3):
            buf.put(i)
        buf.resize(1)
        # Nothing dropped; puts blocked until drained below new depth.
        assert buf.occupancy == 3
        with pytest.raises(ProtocolError, match="put timed out"):
            buf.put(99, timeout=0.05)
        assert [buf.get() for _ in range(3)] == [0, 1, 2]
        buf.put(99)                       # occupancy 0 < depth 1 again
        assert buf.get() == 99

    def test_resize_validates_depth(self):
        buf = PrefetchBuffer(2)
        with pytest.raises(ProtocolError):
            buf.resize(0)

    def test_occupancy_statistics(self):
        buf = PrefetchBuffer(4)
        assert buf.mean_occupancy == 0.0
        buf.put("a")                      # occ 1
        buf.put("b")                      # occ 2
        buf.get()                         # occ 1
        buf.get()                         # occ 0
        assert buf.total_puts == 2
        assert buf.total_gets == 2
        assert buf.high_water == 2
        assert buf.mean_occupancy == pytest.approx((1 + 2 + 1 + 0) / 4)


# ---------------------------------------------------------------------------
# DRM engine
# ---------------------------------------------------------------------------

def _times(**kw):
    base = dict(t_sample_cpu=1.0, t_sample_accel=0.0, t_load=1.0,
                t_transfer=1.0, t_train_cpu=1.0, t_train_accel=1.0,
                t_sync=0.01)
    base.update(kw)
    return StageTimes(**base)


def _drm(**kw):
    cfg = SystemConfig(hybrid=True, drm=True, prefetch=True)
    defaults = dict(minibatch_size=256, hybrid=True, hysteresis=0.05)
    defaults.update(kw)
    return DRMEngine(cfg, **defaults)


def _split(cpu=128):
    return WorkloadSplit(cpu_targets=cpu, accel_targets=(256, 256),
                         sample_threads=96, load_threads=64,
                         train_threads=96)


class TestDRM:
    def test_hysteresis_no_action(self):
        drm = _drm()
        split = _split()
        out = drm.adjust(split, _times(), 0)
        assert out is split
        assert drm.decisions[-1].action == "none"

    def test_accel_bottleneck_moves_work_to_cpu(self):
        drm = _drm()
        split = _split()
        out = drm.adjust(split, _times(t_train_accel=5.0), 0)
        assert out.cpu_targets > split.cpu_targets
        assert out.total_targets == split.total_targets
        assert drm.decisions[-1].action == "balance_work"

    def test_transfer_bottleneck_also_counts_as_accel(self):
        drm = _drm()
        out = drm.adjust(_split(), _times(t_transfer=5.0), 0)
        assert out.cpu_targets > 128

    def test_load_bottleneck_moves_threads(self):
        drm = _drm()
        split = _split()
        out = drm.adjust(split, _times(t_load=5.0), 0)
        assert out.load_threads > split.load_threads
        assert out.total_threads == split.total_threads
        assert drm.decisions[-1].action == "balance_thread"

    def test_cpu_sample_bottleneck_offloads_to_accel(self):
        drm = _drm()
        # T_SA fastest (zero) -> Algorithm 1 moves sampling to accels.
        out = drm.adjust(_split(), _times(t_sample_cpu=5.0), 0)
        assert out.accel_sample_fraction > 0

    def test_cpu_train_bottleneck_with_fast_accel_moves_work(self):
        drm = _drm()
        out = drm.adjust(
            _split(cpu=256),
            _times(t_train_cpu=5.0, t_sample_accel=0.2,
                   t_train_accel=0.1, t_transfer=0.1), 0)
        assert out.cpu_targets < 256

    def test_work_conservation_under_many_adjustments(self):
        drm = _drm()
        split = _split()
        rng = np.random.default_rng(0)
        total = split.total_targets
        for it in range(50):
            kw = {k: float(v) for k, v in zip(
                ("t_sample_cpu", "t_load", "t_transfer", "t_train_cpu",
                 "t_train_accel"), rng.uniform(0.5, 5.0, 5))}
            split = drm.adjust(split, _times(**kw), it)
            assert split.total_targets == total

    def test_accel_floor_respected(self):
        drm = _drm()
        split = WorkloadSplit(cpu_targets=0,
                              accel_targets=(MIN_ACCEL_TARGETS,) * 2,
                              sample_threads=96, load_threads=64,
                              train_threads=96)
        out = drm.adjust(split, _times(t_train_accel=9.0), 0)
        assert all(t >= MIN_ACCEL_TARGETS for t in out.accel_targets)

    def test_revert_on_regression(self):
        drm = _drm(revert_tolerance=0.01)
        split = _split()
        moved = drm.adjust(split, _times(t_train_accel=5.0), 0)
        assert moved is not split
        # Next iteration is much slower -> engine must revert.
        reverted = drm.adjust(moved, _times(t_train_accel=20.0), 1)
        assert drm.decisions[-1].action == "revert"
        assert reverted.cpu_targets == split.cpu_targets

    def test_non_hybrid_never_assigns_cpu_work(self):
        drm = _drm(hybrid=False)
        split = WorkloadSplit(cpu_targets=0, accel_targets=(256, 256),
                              sample_threads=96, load_threads=64,
                              train_threads=0)
        out = drm.adjust(split, _times(t_train_accel=9.0), 0)
        assert out.cpu_targets == 0

    def test_thread_floor(self):
        drm = _drm()
        split = WorkloadSplit(cpu_targets=128,
                              accel_targets=(256, 256),
                              sample_threads=2, load_threads=64,
                              train_threads=96)
        # Sampler at near-floor cannot donate below 1 thread.
        out = drm.adjust(split, _times(t_load=9.0,
                                       t_sample_cpu=0.1), 0)
        assert out.sample_threads >= 1
