"""Unit tests for the nn package (layers, models, loss, optim)."""

import numpy as np
import pytest

from repro.config import layer_dims
from repro.errors import ConfigError, ShapeError
from repro.nn.activations import relu, relu_grad
from repro.nn.aggregators import (
    SparseAggregator,
    add_self_edges,
    gcn_edge_weights,
    mean_edge_weights,
    segment_sum_aggregate,
)
from repro.nn.gradcheck import check_model_gradients
from repro.nn.init import xavier_uniform, zeros_init
from repro.nn.layers import GCNLayer, SAGELayer
from repro.nn.linear import Linear
from repro.nn.loss import accuracy, softmax_cross_entropy
from repro.nn.models import GNNModel, build_model, model_size_bytes
from repro.nn.optim import SGD, Adam
from repro.sampling.base import LayerBlock


def _rng():
    return np.random.default_rng(0)


def _block():
    # 3 sources, 2 destinations, 4 edges.
    return LayerBlock(np.array([0, 1, 2, 2]), np.array([0, 0, 1, 0]),
                      3, 2)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert list(relu(x)) == [0.0, 0.0, 2.0]

    def test_relu_grad_zero_at_kink(self):
        x = np.array([-1.0, 0.0, 2.0])
        g = relu_grad(x, np.ones(3))
        assert list(g) == [0.0, 0.0, 1.0]


class TestInit:
    def test_xavier_bounds(self):
        W = xavier_uniform((50, 30), _rng())
        bound = np.sqrt(6.0 / 80)
        assert np.abs(W).max() <= bound
        assert W.shape == (50, 30)

    def test_xavier_requires_2d(self):
        with pytest.raises(ShapeError):
            xavier_uniform((5,), _rng())

    def test_zeros(self):
        assert not zeros_init((3,)).any()


class TestAggregators:
    def test_sparse_forward(self):
        agg = SparseAggregator(_block())
        h = np.arange(6, dtype=np.float64).reshape(3, 2)
        out = agg.forward(h)
        # dst0 <- src0 + src1 + src2 ; dst1 <- src2
        assert np.allclose(out[0], h[0] + h[1] + h[2])
        assert np.allclose(out[1], h[2])

    def test_sparse_backward_is_transpose(self):
        agg = SparseAggregator(_block())
        rng = _rng()
        h = rng.standard_normal((3, 4))
        g = rng.standard_normal((2, 4))
        # <S h, g> == <h, S^T g>
        lhs = np.sum(agg.forward(h) * g)
        rhs = np.sum(h * agg.backward(g))
        assert np.isclose(lhs, rhs)

    def test_segment_sum_matches_sparse(self):
        blk = _block()
        rng = _rng()
        h = rng.standard_normal((3, 5))
        w = rng.random(4)
        a = SparseAggregator(blk, w).forward(h)
        b = segment_sum_aggregate(blk, h, w)
        assert np.allclose(a, b)

    def test_duplicate_edges_sum(self):
        blk = LayerBlock(np.array([0, 0]), np.array([0, 0]), 1, 1)
        h = np.ones((1, 3))
        out = SparseAggregator(blk).forward(h)
        assert np.allclose(out, 2.0)

    def test_mean_weights(self):
        w = mean_edge_weights(_block())
        # dst0 has 3 in-edges, dst1 has 1.
        assert np.allclose(w, [1 / 3, 1 / 3, 1.0, 1 / 3])

    def test_mean_weights_isolated_dst(self):
        blk = LayerBlock(np.array([0]), np.array([0]), 2, 2)
        w = mean_edge_weights(blk)
        assert w.shape == (1,)

    def test_gcn_weights(self):
        blk = _block()
        w = gcn_edge_weights(blk, np.array([1, 1, 3, 3]),
                             np.array([1, 1, 1, 1]))
        assert np.allclose(w[0], 1.0 / 2.0)        # 1/sqrt(2*2)
        assert np.allclose(w[2], 1.0 / np.sqrt(8))

    def test_gcn_weights_shape_check(self):
        with pytest.raises(ShapeError):
            gcn_edge_weights(_block(), np.array([1.0]), np.array([1.0]))

    def test_add_self_edges(self):
        blk = add_self_edges(_block())
        assert blk.num_edges == 6
        pairs = set(zip(blk.src_local.tolist(), blk.dst_local.tolist()))
        assert (0, 0) in pairs and (1, 1) in pairs

    def test_shape_mismatch_raises(self):
        agg = SparseAggregator(_block())
        with pytest.raises(ShapeError):
            agg.forward(np.zeros((4, 2)))
        with pytest.raises(ShapeError):
            agg.backward(np.zeros((3, 2)))


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(4, 3, _rng())
        y = lin.forward(np.ones((5, 4)))
        assert y.shape == (5, 3)

    def test_backward_accumulates(self):
        lin = Linear(2, 2, _rng())
        x = np.ones((3, 2))
        g = np.ones((3, 2))
        lin.backward(x, g)
        dW1 = lin.dW.copy()
        lin.backward(x, g)
        assert np.allclose(lin.dW, 2 * dW1)
        lin.zero_grad()
        assert not lin.dW.any() and not lin.db.any()

    def test_backward_returns_input_grad(self):
        lin = Linear(3, 2, _rng())
        x = _rng().standard_normal((4, 3))
        g = _rng().standard_normal((4, 2))
        dx = lin.backward(x, g)
        assert np.allclose(dx, g @ lin.W.T)

    def test_invalid_dims(self):
        with pytest.raises(ShapeError):
            Linear(0, 3, _rng())
        lin = Linear(2, 2, _rng())
        with pytest.raises(ShapeError):
            lin.forward(np.zeros((3, 5)))


class TestLoss:
    def test_uniform_logits_loss(self):
        logits = np.zeros((4, 8))
        loss, dl = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert np.isclose(loss, np.log(8))
        assert dl.shape == (4, 8)

    def test_gradient_sums_to_zero(self):
        rng = _rng()
        logits = rng.standard_normal((6, 5))
        _, dl = softmax_cross_entropy(logits, rng.integers(0, 5, 6))
        assert np.allclose(dl.sum(axis=1), 0.0)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_numeric_gradient(self):
        rng = _rng()
        logits = rng.standard_normal((3, 4))
        labels = np.array([0, 2, 1])
        _, dl = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                lp, _ = softmax_cross_entropy(logits, labels)
                logits[i, j] -= 2 * eps
                lm, _ = softmax_cross_entropy(logits, labels)
                logits[i, j] += eps
                assert np.isclose((lp - lm) / (2 * eps), dl[i, j],
                                  atol=1e-6)

    def test_errors(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)),
                                  np.array([0, 5]))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((0, 3)),
                                  np.zeros(0, dtype=int))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0
        assert accuracy(np.zeros((0, 2)), np.zeros(0)) == 0.0


class TestModels:
    def test_build_model_layer_shapes(self):
        m = build_model("gcn", (8, 16, 4), seed=0)
        assert len(m.layers) == 2
        assert m.layers[0].linear.W.shape == (8, 16)
        assert m.layers[1].linear.W.shape == (16, 4)
        assert m.layers[0].activation and not m.layers[1].activation

    def test_sage_doubles_input(self):
        m = build_model("sage", (8, 16, 4), seed=0)
        assert m.layers[0].linear.W.shape == (16, 16)

    def test_build_model_rejects_unknown(self):
        with pytest.raises(ConfigError):
            build_model("gat", (8, 4))
        with pytest.raises(ConfigError):
            build_model("gcn", (8,))

    def test_same_seed_identical(self):
        a = build_model("gcn", (8, 16, 4), seed=5)
        b = build_model("gcn", (8, 16, 4), seed=5)
        assert np.array_equal(a.get_flat_params(), b.get_flat_params())

    def test_flat_roundtrip(self):
        m = build_model("sage", (6, 12, 3), seed=1)
        flat = m.get_flat_params()
        m2 = build_model("sage", (6, 12, 3), seed=2)
        m2.set_flat_params(flat)
        assert np.array_equal(m2.get_flat_params(), flat)
        with pytest.raises(ShapeError):
            m2.set_flat_params(flat[:-1])

    def test_state_dict_roundtrip(self):
        m = build_model("gcn", (4, 8, 2), seed=3)
        state = m.state_dict()
        m2 = build_model("gcn", (4, 8, 2), seed=4)
        m2.load_state_dict(state)
        assert np.array_equal(m.get_flat_params(),
                              m2.get_flat_params())

    def test_model_size_bytes(self):
        dims = (128, 256, 172)
        assert model_size_bytes(dims, "gcn") == \
            (128 * 256 + 256 * 172) * 4
        assert model_size_bytes(dims, "sage") == \
            2 * (128 * 256 + 256 * 172) * 4

    def test_backward_before_forward_raises(self):
        m = build_model("gcn", (4, 2), seed=0)
        with pytest.raises(ShapeError):
            m.backward(np.zeros((1, 2)))


class TestGradcheck:
    @pytest.mark.parametrize("model", ["gcn", "sage"])
    def test_model_gradients(self, model, tiny_ds, tiny_sampler):
        mb = tiny_sampler.sample(tiny_ds.train_ids[:8])
        x0 = tiny_ds.features[mb.input_nodes].astype(np.float64)
        labels = tiny_ds.labels[mb.targets]
        m = build_model(model,
                        layer_dims(tiny_ds.spec.feature_dim, 10,
                                   tiny_ds.spec.num_classes, 2), seed=3)
        worst = check_model_gradients(
            m, mb, x0, labels,
            global_degrees=tiny_ds.graph.out_degrees, max_entries=12)
        assert worst < 1e-3


class TestOptim:
    def _loss(self, m, x):
        return float(((x @ m.layers[0].linear.W) ** 2).sum())

    def test_sgd_step_direction(self):
        m = build_model("gcn", (3, 2), seed=0)
        opt = SGD(m, lr=0.1)
        g = np.ones_like(m.layers[0].linear.dW)
        m.layers[0].linear.dW += g
        before = m.layers[0].linear.W.copy()
        opt.step()
        assert np.allclose(m.layers[0].linear.W, before - 0.1)

    def test_sgd_momentum_accumulates(self):
        m = build_model("gcn", (3, 2), seed=0)
        opt = SGD(m, lr=0.1, momentum=0.9)
        before = m.layers[0].linear.W.copy()
        for _ in range(2):
            m.zero_grad()
            m.layers[0].linear.dW += 1.0
            opt.step()
        # Second step includes momentum: total = 0.1 + 0.1*1.9.
        assert np.allclose(m.layers[0].linear.W, before - 0.1 - 0.19)

    def test_adam_converges_quadratic(self):
        m = build_model("gcn", (3, 3), seed=1)
        opt = Adam(m, lr=0.05)
        for _ in range(300):
            m.zero_grad()
            m.layers[0].linear.dW += 2 * m.layers[0].linear.W
            m.layers[0].linear.db += 2 * m.layers[0].linear.b
            opt.step()
        assert np.abs(m.layers[0].linear.W).max() < 1e-2

    def test_invalid_hyperparams(self):
        m = build_model("gcn", (3, 2), seed=0)
        with pytest.raises(ConfigError):
            SGD(m, lr=0.0)
        with pytest.raises(ConfigError):
            SGD(m, lr=0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            Adam(m, lr=-1.0)
        with pytest.raises(ConfigError):
            Adam(m, beta1=1.0)
