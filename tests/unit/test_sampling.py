"""Unit tests for the sampling package."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.base import (
    LayerBlock,
    MiniBatch,
    MiniBatchStats,
    local_index_of,
    union_preserving_order,
)
from repro.sampling.full import FullBatchSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.saint import (
    SaintEdgeSampler,
    SaintNodeSampler,
    SaintRWSampler,
    induced_block,
)


class TestHelpers:
    def test_union_preserving_order(self):
        base = np.array([5, 2, 9])
        extra = np.array([2, 7, 5, 1])
        out = union_preserving_order(base, extra)
        assert list(out[:3]) == [5, 2, 9]
        assert set(out) == {5, 2, 9, 7, 1}

    def test_union_empty_base(self):
        out = union_preserving_order(np.array([], dtype=np.int64),
                                     np.array([3, 1, 3]))
        assert list(out) == [1, 3]

    def test_local_index_of(self):
        universe = np.array([10, 3, 7])
        idx = local_index_of(np.array([7, 10]), universe)
        assert list(idx) == [2, 0]

    def test_local_index_missing_raises(self):
        with pytest.raises(SamplingError):
            local_index_of(np.array([99]), np.array([1, 2]))


class TestLayerBlock:
    def test_valid_block(self):
        b = LayerBlock(np.array([0, 1]), np.array([0, 0]), 2, 1)
        assert b.num_edges == 2

    def test_out_of_range(self):
        with pytest.raises(SamplingError):
            LayerBlock(np.array([2]), np.array([0]), 2, 1)
        with pytest.raises(SamplingError):
            LayerBlock(np.array([0]), np.array([1]), 2, 1)

    def test_dst_exceeds_src(self):
        with pytest.raises(SamplingError):
            LayerBlock(np.array([0]), np.array([0]), 1, 2)


class TestMiniBatchStats:
    def test_properties(self):
        st = MiniBatchStats((100, 40, 10), (300, 60), 32)
        assert st.num_layers == 2
        assert st.num_input_nodes == 100
        assert st.num_targets == 10
        assert st.total_edges == 360
        assert st.input_feature_bytes == 100 * 32 * 4

    def test_scaled(self):
        st = MiniBatchStats((100, 10), (200,), 8)
        s2 = st.scaled(0.5)
        assert s2.num_nodes_per_layer == (50, 5)
        assert s2.num_edges_per_layer == (100,)
        with pytest.raises(SamplingError):
            st.scaled(0.0)

    def test_scaled_never_zero(self):
        st = MiniBatchStats((3, 1), (2,), 8)
        s2 = st.scaled(0.01)
        assert min(s2.num_nodes_per_layer) >= 1


class TestNeighborSampler:
    def test_batch_structure(self, tiny_ds, tiny_sampler):
        mb = tiny_sampler.sample(tiny_ds.train_ids[:16])
        mb.validate()
        assert mb.num_layers == 2
        assert mb.targets.size == 16
        # Prefix alignment: layer node lists nest.
        for l in range(mb.num_layers):
            nxt = mb.node_ids[l + 1]
            assert np.array_equal(mb.node_ids[l][:nxt.size], nxt)

    def test_fanout_respected(self, medium_graph):
        s = NeighborSampler(medium_graph,
                            np.arange(medium_graph.num_vertices),
                            (5,), 8, seed=0)
        mb = s.sample(np.arange(50))
        st = mb.stats()
        # Each target contributes at most fanout edges.
        assert st.num_edges_per_layer[0] <= 50 * 5
        indeg = np.bincount(mb.blocks[0].dst_local, minlength=50)
        assert indeg.max() <= 5

    def test_edges_exist_in_graph(self, medium_graph):
        s = NeighborSampler(medium_graph,
                            np.arange(medium_graph.num_vertices),
                            (6, 4), 8, seed=1)
        mb = s.sample(np.array([0, 5, 10]))
        for l, blk in enumerate(mb.blocks):
            src_g = mb.node_ids[l][blk.src_local]
            dst_g = mb.node_ids[l + 1][blk.dst_local]
            for u, v in zip(src_g[:200], dst_g[:200]):
                # Sampled edge (u -> v) means u ∈ neighbors(v).
                assert u in medium_graph.neighbors(int(v))

    def test_no_duplicate_edges_per_dst(self, medium_graph):
        s = NeighborSampler(medium_graph,
                            np.arange(medium_graph.num_vertices),
                            (8,), 8, seed=2)
        mb = s.sample(np.arange(30))
        blk = mb.blocks[0]
        pairs = set(zip(blk.src_local.tolist(), blk.dst_local.tolist()))
        assert len(pairs) == blk.num_edges

    def test_low_degree_vertex_gets_all_neighbors(self, line_graph):
        s = NeighborSampler(line_graph, np.arange(4), (10,), 4, seed=0)
        mb = s.sample(np.array([0]))
        # Vertex 0 has exactly one neighbor (1) — must appear exactly once.
        assert mb.stats().num_edges_per_layer[0] == 1

    def test_deterministic_given_seed(self, medium_graph):
        def batch(seed):
            s = NeighborSampler(medium_graph,
                                np.arange(medium_graph.num_vertices),
                                (5, 5), 8, seed=seed)
            return s.sample(np.arange(20))
        a, b = batch(3), batch(3)
        assert all(np.array_equal(x, y)
                   for x, y in zip(a.node_ids, b.node_ids))

    def test_epoch_covers_train_set(self, tiny_ds, tiny_sampler):
        seen = []
        for mb in tiny_sampler.epoch_batches(32, seed=1):
            seen.append(mb.targets)
        seen = np.sort(np.concatenate(seen))
        assert np.array_equal(seen, np.sort(tiny_ds.train_ids))

    def test_rejects_duplicates_and_empty(self, tiny_sampler):
        with pytest.raises(SamplingError):
            tiny_sampler.sample(np.array([1, 1]))
        with pytest.raises(SamplingError):
            tiny_sampler.sample(np.array([], dtype=np.int64))

    def test_rejects_bad_constructor_args(self, medium_graph):
        ids = np.arange(10)
        with pytest.raises(SamplingError):
            NeighborSampler(medium_graph, ids, (), 8)
        with pytest.raises(SamplingError):
            NeighborSampler(medium_graph, ids, (0,), 8)
        with pytest.raises(SamplingError):
            NeighborSampler(medium_graph, np.array([], dtype=np.int64),
                            (5,), 8)
        with pytest.raises(SamplingError):
            NeighborSampler(medium_graph,
                            np.array([medium_graph.num_vertices]),
                            (5,), 8)


class TestSaint:
    def test_induced_block_correct(self, line_graph):
        nodes = np.array([0, 1, 2])
        src, dst = induced_block(line_graph, nodes)
        edges = {(nodes[s], nodes[d]) for s, d in zip(src, dst)}
        assert edges == {(0, 1), (1, 2), (1, 0), (2, 1)}

    def test_node_sampler(self, tiny_ds):
        s = SaintNodeSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                             tiny_ds.spec.feature_dim, seed=0)
        mb = next(iter(s.epoch_batches(64)))
        mb.validate()
        assert mb.node_ids[0].size <= 64
        # Subgraph batches use the same node set at every layer.
        assert np.array_equal(mb.node_ids[0], mb.node_ids[-1])

    def test_edge_sampler(self, tiny_ds):
        s = SaintEdgeSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                             tiny_ds.spec.feature_dim, seed=1)
        mb = next(iter(s.epoch_batches(64)))
        mb.validate()
        assert mb.stats().num_edges_per_layer[0] > 0

    def test_rw_sampler(self, tiny_ds):
        s = SaintRWSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                           tiny_ds.spec.feature_dim, seed=2,
                           walk_length=3)
        mb = next(iter(s.epoch_batches(64)))
        mb.validate()

    def test_rw_invalid_walk(self, tiny_ds):
        with pytest.raises(SamplingError):
            SaintRWSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                           tiny_ds.spec.feature_dim, walk_length=0)

    def test_epoch_batch_count(self, tiny_ds):
        s = SaintNodeSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                             tiny_ds.spec.feature_dim, seed=0)
        n = sum(1 for _ in s.epoch_batches(50))
        assert n == -(-tiny_ds.train_ids.size // 50)


class TestFullBatch:
    def test_full_batch(self, tiny_ds):
        s = FullBatchSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                             tiny_ds.spec.feature_dim)
        mb = s.sample()
        mb.validate()
        assert mb.node_ids[0].size == tiny_ds.graph.num_vertices
        assert mb.stats().num_edges_per_layer[0] == \
            tiny_ds.graph.num_edges
        assert s.target_mask.sum() == tiny_ds.train_ids.size

    def test_epoch_is_single_batch(self, tiny_ds):
        s = FullBatchSampler(tiny_ds.graph, tiny_ds.train_ids, 2,
                             tiny_ds.spec.feature_dim)
        assert len(list(s.epoch_batches(10))) == 1
