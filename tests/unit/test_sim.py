"""Unit tests for the sim package (clock, pipeline engine, trace)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.engine import PipelineSimulator
from repro.sim.trace import Span, Timeline, render_gantt


class TestClock:
    def test_advance(self):
        c = VirtualClock()
        assert c.now == 0.0
        c.advance(1.5)
        assert c.now == 1.5
        c.advance_to(1.0)          # no-op backwards
        assert c.now == 1.5
        c.advance_to(2.0)
        assert c.now == 2.0
        c.reset()
        assert c.now == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)
        with pytest.raises(SimulationError):
            VirtualClock().advance(-0.1)


class TestSpansTimeline:
    def test_span_validation(self):
        with pytest.raises(SimulationError):
            Span("s", 0, 1.0, 0.5)

    def test_timeline_aggregates(self):
        t = Timeline([Span("a", 0, 0.0, 1.0), Span("b", 0, 1.0, 3.0),
                      Span("a", 1, 1.0, 2.0)])
        assert t.makespan == 3.0
        busy = t.stage_busy_time()
        assert busy == {"a": 2.0, "b": 2.0}
        assert t.bottleneck_stage() in ("a", "b")
        assert len(t.iteration_spans(0)) == 2
        assert t.stage_durations("a") == [1.0, 1.0]

    def test_empty_timeline(self):
        t = Timeline()
        assert t.makespan == 0.0
        assert t.bottleneck_stage() is None
        assert render_gantt(t) == "(empty timeline)"

    def test_render_gantt(self):
        t = Timeline([Span("sample", 0, 0.0, 0.001),
                      Span("train", 0, 0.001, 0.002)])
        text = render_gantt(t)
        assert "sample" in text and "train" in text and "#" in text


class TestPipelineSimulator:
    def test_serialized_is_sum(self):
        sim = PipelineSimulator(["a", "b"], prefetch_depth=0)
        rows = [[1.0, 2.0]] * 3
        assert sim.makespan(rows) == pytest.approx(9.0)

    def test_pipelined_steady_state_is_max(self):
        sim = PipelineSimulator(["a", "b", "c"], prefetch_depth=4)
        rows = [[1.0, 3.0, 2.0]] * 20
        # fill (1 + 3 + 2) + 19 * max(3) ≈ 63; exact: a and c hide
        # behind b after fill.
        makespan = sim.makespan(rows)
        assert makespan == pytest.approx(1.0 + 20 * 3.0 + 2.0)

    def test_pipelined_beats_serialized(self):
        rows = [[1.0, 1.5, 0.5]] * 10
        piped = PipelineSimulator(["a", "b", "c"], 2).makespan(rows)
        serial = PipelineSimulator(["a", "b", "c"], 0).makespan(rows)
        assert piped < serial

    def test_depth_one_limits_overlap(self):
        rows = [[1.0, 1.0]] * 10
        d1 = PipelineSimulator(["a", "b"], 1).makespan(rows)
        d4 = PipelineSimulator(["a", "b"], 4).makespan(rows)
        assert d4 <= d1

    def test_data_dependency_ordering(self):
        sim = PipelineSimulator(["a", "b"], 2)
        schedules = sim.schedules([[1.0, 1.0], [1.0, 1.0]])
        a, b = schedules
        # b of iteration i starts only after a of iteration i finished.
        assert (b.start >= a.finish - 1e-12).all()
        # stage busy: no overlapping executions within one stage.
        assert (a.start[1:] >= a.finish[:-1] - 1e-12).all()

    def test_empty_and_invalid(self):
        sim = PipelineSimulator(["a"], 1)
        assert sim.makespan([]) == 0.0
        with pytest.raises(SimulationError):
            sim.run([[1.0, 2.0]])          # wrong width
        with pytest.raises(SimulationError):
            sim.run([[-1.0]])
        with pytest.raises(SimulationError):
            PipelineSimulator([], 1)
        with pytest.raises(SimulationError):
            PipelineSimulator(["a"], -1)

    def test_variable_durations_straggler(self):
        sim = PipelineSimulator(["a", "b"], 2)
        rows = [[0.1, 1.0], [0.1, 5.0], [0.1, 1.0]]
        # The straggler in iteration 1 delays iteration 2's b stage.
        tl = sim.run(rows)
        b_spans = sorted((s for s in tl.spans if s.stage == "b"),
                         key=lambda s: s.iteration)
        assert b_spans[2].start >= b_spans[1].end - 1e-12
