"""Unit tests for repro.graph.coo and repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.coo import (
    coalesce_edges,
    sort_edges_by_src,
    source_run_lengths,
    unique_sources,
)
from repro.graph.generators import (
    connected_training_mask,
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.graph.validate import check_graph


class TestCOO:
    def test_sort_edges_by_src(self):
        src = np.array([2, 0, 1, 0])
        dst = np.array([9, 8, 7, 6])
        s, d = sort_edges_by_src(src, dst)
        assert list(s) == [0, 0, 1, 2]
        assert list(d) == [8, 6, 7, 9]   # stable within equal src

    def test_sort_shape_mismatch(self):
        with pytest.raises(GraphError):
            sort_edges_by_src(np.array([0]), np.array([0, 1]))

    def test_source_run_lengths(self):
        runs = source_run_lengths(np.array([0, 0, 0, 1, 3, 3]))
        assert list(runs) == [3, 1, 2]

    def test_source_run_lengths_empty(self):
        assert source_run_lengths(np.array([])).size == 0

    def test_run_lengths_sum_to_edges(self):
        src = np.sort(np.random.default_rng(0).integers(0, 50, 300))
        assert source_run_lengths(src).sum() == 300

    def test_coalesce_edges(self):
        s, d = coalesce_edges(np.array([1, 0, 1]), np.array([2, 1, 2]), 3)
        assert list(s) == [0, 1]
        assert list(d) == [1, 2]

    def test_coalesce_empty(self):
        s, d = coalesce_edges(np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64), 3)
        assert s.size == 0 and d.size == 0

    def test_unique_sources(self):
        assert list(unique_sources(np.array([3, 1, 3, 1]))) == [1, 3]


class TestGenerators:
    def test_erdos_renyi_shape(self):
        g = erdos_renyi_graph(500, 6.0, seed=1)
        check_graph(g)
        assert g.num_vertices == 500
        assert 0.5 * 3000 < g.num_edges <= 3000

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi_graph(200, 4.0, seed=9)
        b = erdos_renyi_graph(200, 4.0, seed=9)
        assert a == b

    def test_power_law_edge_count(self):
        g = power_law_graph(2000, 8.0, seed=2)
        check_graph(g)
        assert g.num_edges == 16000

    def test_power_law_heavy_tail(self):
        g = power_law_graph(3000, 10.0, seed=4)
        t = g.transpose()
        degs = np.sort(t.out_degrees)[::-1]
        # Top 1% of vertices should hold well above 1% of edges.
        top = degs[:30].sum()
        assert top > 0.05 * g.num_edges

    def test_power_law_max_degree_cap(self):
        g = power_law_graph(2000, 10.0, max_degree_fraction=0.01,
                            seed=5)
        t = g.transpose()
        # Expected cap is 1% of vertices = 20; allow sampling slack.
        assert t.out_degrees.max() < 0.03 * g.num_vertices

    def test_power_law_source_skew(self):
        g = power_law_graph(3000, 10.0, seed=6)
        degs = g.out_degrees
        assert np.median(degs) < degs.mean()

    def test_power_law_invalid_args(self):
        with pytest.raises(GraphError):
            power_law_graph(0, 5.0)
        with pytest.raises(GraphError):
            power_law_graph(10, -1.0)
        with pytest.raises(GraphError):
            power_law_graph(10, 5.0, exponent=0.9)
        with pytest.raises(GraphError):
            power_law_graph(10, 5.0, max_degree_fraction=0.0)

    def test_rmat_shape(self):
        g = rmat_graph(10, 8.0, seed=3)
        check_graph(g)
        assert g.num_vertices == 1024
        assert g.num_edges == 8192

    def test_rmat_skew(self):
        g = rmat_graph(11, 16.0, seed=1)
        degs = np.sort(g.out_degrees)[::-1]
        assert degs[0] > 4 * degs.mean()

    def test_rmat_invalid(self):
        with pytest.raises(GraphError):
            rmat_graph(0, 4.0)
        with pytest.raises(GraphError):
            rmat_graph(5, 4.0, a=0.9, b=0.2, c=0.2)

    def test_training_mask(self):
        g = erdos_renyi_graph(400, 4.0, seed=1)
        mask = connected_training_mask(g, 0.25, seed=2)
        assert mask.sum() == 100
        with pytest.raises(GraphError):
            connected_training_mask(g, 0.0)
