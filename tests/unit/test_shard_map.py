"""Unit + property tests for the shard translation layer and the
degree-aware remote-feature cache.

The sharded plane's correctness rests on three pieces of arithmetic
that must be exact, not approximately right: the global ↔ (shard,
local-row) translation of :class:`~repro.graph.shard_map.ShardMap`
(a wrong row silently trains on the wrong features), the halo sets
(a missing halo vertex silently misses the cache forever), and the
:class:`~repro.runtime.remote_cache.RemoteFeatureCache` counters the
report's byte accounting is built from (hits + misses must equal
lookups, bytes must be dtype-exact, and the static degree-ordered
admission must realize the analytic hit-ratio model the PaGraph
baseline charges PCIe traffic with).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.common import degree_ordered_hit_ratio
from repro.errors import ConfigError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.shard_map import ShardMap
from repro.runtime.remote_cache import RemoteFeatureCache

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def partitions(draw, max_vertices=60, max_shards=8):
    n = draw(st.integers(1, max_vertices))
    num_shards = draw(st.integers(1, max_shards))
    parts = draw(st.lists(st.integers(0, num_shards - 1),
                          min_size=n, max_size=n))
    return np.array(parts, dtype=np.int64), num_shards


class TestShardMap:
    @common_settings
    @given(partitions())
    def test_locate_to_global_round_trip(self, data):
        parts, num_shards = data
        smap = ShardMap.from_partition(parts, num_shards=num_shards)
        ids = np.arange(parts.size, dtype=np.int64)
        shard, local = smap.locate(ids)
        np.testing.assert_array_equal(shard, parts)
        assert local.min() >= 0
        np.testing.assert_array_equal(smap.to_global(shard, local), ids)

    @common_settings
    @given(partitions())
    def test_owned_slices_partition_the_vertices(self, data):
        parts, num_shards = data
        smap = ShardMap.from_partition(parts, num_shards=num_shards)
        owned = [smap.owned(k) for k in range(num_shards)]
        assert sum(o.size for o in owned) == parts.size
        np.testing.assert_array_equal(
            np.sort(np.concatenate(owned)), np.arange(parts.size))
        for k, o in enumerate(owned):
            assert (parts[o] == k).all()
            assert o.size == smap.shard_sizes()[k]

    @common_settings
    @given(partitions())
    def test_shard_major_order_is_consistent(self, data):
        parts, num_shards = data
        smap = ShardMap.from_partition(parts, num_shards=num_shards)
        # order/shard_row are mutual inverses, and indexing a
        # shard-major matrix by shard_row recovers global order.
        np.testing.assert_array_equal(
            smap.order[smap.shard_row], np.arange(parts.size))
        features = np.arange(parts.size, dtype=np.float64)[:, None]
        sliced = features[smap.order]
        np.testing.assert_array_equal(sliced[smap.shard_row], features)

    def test_trailing_empty_shards(self):
        parts = np.array([0, 0, 1], dtype=np.int64)
        smap = ShardMap.from_partition(parts, num_shards=5)
        np.testing.assert_array_equal(smap.shard_sizes(),
                                      [2, 1, 0, 0, 0])
        for k in (2, 3, 4):
            assert smap.owned(k).size == 0

    def test_halo_matches_brute_force(self):
        rng = np.random.default_rng(9)
        n = 30
        src = rng.integers(0, n, size=120)
        dst = rng.integers(0, n, size=120)
        graph = CSRGraph.from_edges(src, dst, n)
        parts = rng.integers(0, 3, size=n).astype(np.int64)
        smap = ShardMap.from_partition(parts, num_shards=3)
        for k in range(3):
            want = sorted({int(d) for s, d in zip(src, dst)
                           if parts[s] == k and parts[d] != k})
            np.testing.assert_array_equal(smap.halo(graph, k), want)

    def test_halo_of_empty_shard_is_empty(self, line_graph):
        parts = np.zeros(line_graph.num_vertices, dtype=np.int64)
        smap = ShardMap.from_partition(parts, num_shards=2)
        assert smap.halo(line_graph, 1).size == 0
        # ...and a one-shard map has no remote vertices at all.
        assert smap.halo(line_graph, 0).size == 0

    def test_rejects_bad_input(self):
        with pytest.raises(GraphError):
            ShardMap.from_partition(np.array([[0, 1]]))
        with pytest.raises(GraphError):
            ShardMap.from_partition(np.array([0, -1]))
        with pytest.raises(GraphError):
            ShardMap.from_partition(np.array([0, 3]), num_shards=2)
        smap = ShardMap.from_partition(np.array([0, 1]))
        with pytest.raises(GraphError):
            smap.owned(2)


class TestRemoteFeatureCache:
    @pytest.fixture()
    def features(self):
        rng = np.random.default_rng(3)
        return rng.standard_normal((50, 6)).astype(np.float32)

    def test_counter_conservation(self, features):
        rng = np.random.default_rng(4)
        degrees = rng.integers(0, 20, size=50)
        cache = RemoteFeatureCache(capacity_rows=10)
        cache.admit(np.arange(50), degrees, features)
        row_bytes = features.dtype.itemsize * features.shape[1]
        assert cache.row_bytes == row_bytes
        total = 0
        for _ in range(5):
            ids = rng.integers(0, 50, size=rng.integers(1, 30))
            cache.lookup(ids)
            total += ids.size
        assert cache.hits + cache.misses == cache.lookups == total
        assert cache.served_bytes == cache.hits * row_bytes
        assert cache.missed_bytes == cache.misses * row_bytes
        stats = cache.stats()
        assert stats["remote_cache_hits"] == cache.hits
        assert stats["remote_cache_misses"] == cache.misses
        assert stats["remote_cache_served_bytes"] == cache.served_bytes
        assert stats["remote_cache_rows"] == 10

    def test_hits_serve_the_right_rows(self, features):
        degrees = np.arange(50)          # vertex 49 hottest
        cache = RemoteFeatureCache(capacity_rows=8)
        admitted = cache.admit(np.arange(50), degrees, features)
        np.testing.assert_array_equal(admitted, np.arange(42, 50))
        ids = np.array([49, 3, 45, 45, 10])
        hit_mask, hit_rows = cache.lookup(ids)
        np.testing.assert_array_equal(hit_mask,
                                      [True, False, True, True, False])
        np.testing.assert_array_equal(hit_rows,
                                      features[[49, 45, 45]])

    def test_admission_translates_shard_rows(self, features):
        """``rows_of`` maps global ids into a shard-major matrix: the
        cache must serve the same bits either way."""
        degrees = np.arange(50)
        perm = np.random.default_rng(8).permutation(50)
        shard_major = features[perm]             # row perm[i] -> i?
        rows_of = np.empty(50, dtype=np.int64)
        rows_of[perm] = np.arange(50)            # global id -> row
        flat = RemoteFeatureCache(6)
        flat.admit(np.arange(50), degrees, features)
        mapped = RemoteFeatureCache(6)
        mapped.admit(np.arange(50), degrees, shard_major,
                     rows_of=rows_of)
        ids = np.array([49, 44, 48])
        _, a = flat.lookup(ids)
        _, b = mapped.lookup(ids)
        np.testing.assert_array_equal(a, b)

    def test_admit_is_one_shot(self, features):
        cache = RemoteFeatureCache(4)
        cache.admit(np.arange(10), np.arange(50), features)
        with pytest.raises(ConfigError):
            cache.admit(np.arange(10), np.arange(50), features)
        with pytest.raises(ConfigError):
            RemoteFeatureCache(-1)

    def test_zero_capacity_always_misses(self, features):
        cache = RemoteFeatureCache(0)
        cache.admit(np.arange(50), np.arange(50), features)
        hit_mask, hit_rows = cache.lookup(np.array([1, 2, 3]))
        assert not hit_mask.any()
        assert hit_rows.shape == (0, 6)
        assert cache.hit_rate == 0.0
        assert cache.misses == 3

    def test_degree_ordered_admission_matches_analytic_model(
            self, tiny_ds):
        """Degree-proportional traffic against the cache realizes
        exactly the closed-form hit ratio the PaGraph baseline charges
        with (``degree_ordered_hit_ratio``): the admitted top-k degree
        mass over the total."""
        degrees = tiny_ds.graph.out_degrees
        n = degrees.size
        k = n // 5
        cache = RemoteFeatureCache(capacity_rows=k)
        cache.admit(np.arange(n), degrees, tiny_ds.features)
        # One lookup per out-edge endpoint: traffic exactly
        # proportional to degree, the model's sampling assumption.
        traffic = np.repeat(np.arange(n), degrees)
        cache.lookup(traffic)
        want = degree_ordered_hit_ratio(tiny_ds, k / n)
        assert cache.hit_rate == pytest.approx(want, rel=1e-12)
