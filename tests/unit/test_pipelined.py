"""Pipelined-backend concurrency properties.

Two kinds of guarantee, per the conformance story:

* the **adaptive-depth policy** is a pure function of modelled stage
  times — hypothesis drives it over the whole input space (including
  degenerate zero/inf times) and asserts it can never starve a stage
  (depth >= 1) nor exceed the configured cap;
* the **live pipeline** honors those bounds end-to-end: a run with DRM
  shifting the split never records a depth outside ``[1, max_depth]``,
  and every stage shows real occupancy whenever work remained (no
  producer stage ever idles the train stage out of existence).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig, TrainingConfig
from repro.errors import ProtocolError
from repro.perfmodel.model import StageTimes
from repro.runtime import PipelinedBackend, TrainingSession
from repro.runtime.backends.pipelined import adaptive_depth

common_settings = settings(max_examples=60, deadline=None)

#: Non-negative stage durations, including the degenerate extremes the
#: perf model can produce (zero-cost stages, inf on a mis-calibrated
#: platform).
durations = st.one_of(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.just(0.0),
    st.just(float("inf")))


@st.composite
def stage_times(draw):
    return StageTimes(
        t_sample_cpu=draw(durations), t_sample_accel=draw(durations),
        t_load=draw(durations), t_transfer=draw(durations),
        t_train_cpu=draw(durations), t_train_accel=draw(durations),
        t_sync=draw(durations))


class TestAdaptiveDepthPolicy:
    @common_settings
    @given(stage_times(), st.integers(1, 64))
    def test_depth_never_exceeds_cap_never_starves(self, times, cap):
        """The two safety bounds: 1 <= depth <= cap for *any* stage
        times — a depth of 0 would wedge every stage handoff, a depth
        above the cap would blow the configured memory budget."""
        depth = adaptive_depth(times, cap=cap)
        assert 1 <= depth <= cap

    @common_settings
    @given(stage_times(), st.integers(1, 64), st.integers(1, 64))
    def test_floor_respected(self, times, cap, floor):
        if floor > cap:
            floor, cap = cap, floor
        depth = adaptive_depth(times, cap=cap, floor=floor)
        assert floor <= depth <= cap

    @common_settings
    @given(st.floats(0.001, 1e3), st.floats(0.001, 1e3),
           st.floats(1.0, 4.0), st.integers(1, 32))
    def test_monotone_in_producer_time(self, producer, consumer,
                                       scale, cap):
        """A slower producer never gets *less* look-ahead: depth is
        monotone in the producer/consumer ratio."""
        def mk(p):
            return StageTimes(t_sample_cpu=p, t_sample_accel=0.0,
                              t_load=0.0, t_transfer=0.0,
                              t_train_cpu=consumer,
                              t_train_accel=0.0, t_sync=0.0)
        assert adaptive_depth(mk(producer * scale), cap=cap) >= \
            adaptive_depth(mk(producer), cap=cap)

    def test_ratio_is_the_steady_state_depth(self):
        """Producer 3x slower than consumer -> exactly 3 in flight."""
        times = StageTimes(t_sample_cpu=1.0, t_sample_accel=0.0,
                           t_load=1.0, t_transfer=1.0,
                           t_train_cpu=1.0, t_train_accel=0.0,
                           t_sync=0.0)
        assert adaptive_depth(times, cap=8) == 3

    def test_degenerate_times(self):
        zero = StageTimes(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        assert adaptive_depth(zero, cap=8) == 1
        free_train = StageTimes(1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0)
        assert adaptive_depth(free_train, cap=8) == 8

    def test_ratio_overflow_clamps_to_cap(self):
        """Finite producer over a denormal consumer overflows the
        ratio to inf; the policy must clamp to the cap, not raise
        OverflowError from ceil (regression: hypothesis found this)."""
        times = StageTimes(t_sample_cpu=0.0, t_sample_accel=0.0,
                           t_load=299.0, t_transfer=0.0,
                           t_train_cpu=1.66e-306,
                           t_train_accel=0.0, t_sync=0.0)
        assert adaptive_depth(times, cap=8) == 8

    def test_invalid_bounds_rejected(self):
        times = StageTimes(1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0)
        with pytest.raises(ProtocolError):
            adaptive_depth(times, cap=0)
        with pytest.raises(ProtocolError):
            adaptive_depth(times, cap=2, floor=4)


class TestLivePipelineBounds:
    """The running backend honors the policy bounds end-to-end."""

    @pytest.fixture()
    def drm_session(self, tiny_ds, fpga_platform):
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11)
        return TrainingSession(
            tiny_ds, cfg,
            SystemConfig(hybrid=True, drm=True, prefetch=True),
            fpga_platform, profile_probes=2)

    def test_depth_trajectory_stays_within_bounds(self, drm_session):
        cap = 3
        backend = PipelinedBackend(drm_session, initial_depth=2,
                                   max_depth=cap, timeout_s=30)
        per_epoch = drm_session.iterations_per_epoch()
        rep = backend.run(per_epoch + 2)   # roll into a second epoch
        # Under the default depth_source="realized" a timing+prefetch
        # session seeds its first window from the floor (no realized
        # signal yet), not the configured depth.
        assert rep.depth_history[0] == (0, 1)
        for _, depth in rep.depth_history:
            assert 1 <= depth <= cap
        # The adaptive policy actually ran (timing plane present).
        assert len(rep.stage_history) == rep.iterations

    def test_model_source_seeds_configured_depth(self, drm_session):
        """``depth_source="model"`` preserves the pre-calibration
        iteration-0 behavior: the first window opens at the configured
        depth (the regression pin for PR7-era trajectories)."""
        backend = PipelinedBackend(drm_session, initial_depth=2,
                                   max_depth=3, timeout_s=30,
                                   depth_source="model")
        rep = backend.run(4)
        assert rep.depth_history[0] == (0, 2)

    def test_no_stage_starves_while_work_remains(self, drm_session):
        """Occupancy > 0 on every stage whenever work remains: each
        stage buffer saw at least one item in flight, and every
        dispatched item reached the train stage (none lost, none
        stuck)."""
        backend = PipelinedBackend(drm_session, timeout_s=30)
        rep = backend.run_epoch()
        n = drm_session.num_trainers
        assert rep.iterations >= 2
        for stage, stats in rep.stage_stats.items():
            assert stats.items == rep.iterations * n, \
                f"stage {stage} lost items"
            assert stats.high_water >= 1, f"stage {stage} starved"
        # All buffers drained: occupancy sampling ends at zero items
        # in flight, i.e. gets == puts stage-wise.
        train = rep.stage_stats["train"]
        assert train.items == rep.iterations * n

    def test_fixed_depth_without_timing_plane(self, tiny_ds):
        """Platform-less sessions have no stage times to adapt from:
        the depth trajectory is exactly the initial depth."""
        cfg = TrainingConfig(model="sage", minibatch_size=32,
                             fanouts=(4, 3), hidden_dim=16,
                             learning_rate=0.05, seed=11)
        session = TrainingSession(
            tiny_ds, cfg,
            SystemConfig(hybrid=True, drm=False, prefetch=True),
            num_trainers=2)
        rep = PipelinedBackend(session, initial_depth=3,
                               timeout_s=30).run(3)
        assert rep.depth_history == [(0, 3)]
