"""Docs link check: no dead intra-repo links in the documentation.

The docs tree (``docs/``) plus the top-level pages (README, ROADMAP)
cross-link each other and point into the source tree. A rename that
breaks one of those links would otherwise rot silently; this suite
fails it in tier 1 (and in the dedicated CI docs job).

Checked: every relative markdown link ``[text](target)`` whose target
is not an external URL or pure in-page anchor must resolve to an
existing file or directory, relative to the page that links it.
External (``http(s)://``, ``mailto:``) links are out of scope — CI
must not flake on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

#: repo root (tests/unit/ -> tests/ -> root)
ROOT = Path(__file__).resolve().parents[2]

#: The markdown pages whose links are part of the repo's contract.
PAGES = sorted(
    [ROOT / "README.md", ROOT / "ROADMAP.md"]
    + list((ROOT / "docs").glob("*.md"))
    if (ROOT / "README.md").exists() else []
)

#: ``[text](target)`` — good enough for the plain markdown used here
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not intra-repo files.
_EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Fenced code blocks may contain link-shaped content (shell
    snippets, doctest output) that is not a hyperlink."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _intra_repo_links(page: Path) -> list[str]:
    text = _strip_code_blocks(page.read_text(encoding="utf-8"))
    out = []
    for target in _LINK_RE.findall(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        out.append(target)
    return out


def test_docs_tree_exists():
    """The documented subsystem layout: architecture, backend-author
    guide, and benchmark map pages must all exist."""
    for name in ("architecture.md", "backends.md", "benchmarks.md"):
        assert (ROOT / "docs" / name).is_file(), \
            f"docs/{name} is missing"


def test_readme_links_into_docs():
    """The README is an overview that links into the docs tree."""
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("architecture.md", "backends.md", "benchmarks.md"):
        assert f"docs/{name}" in text, \
            f"README no longer links docs/{name}"


@pytest.mark.parametrize("page", PAGES,
                         ids=[str(p.relative_to(ROOT)) for p in PAGES])
def test_no_dead_intra_repo_links(page: Path):
    """Every relative link on every documentation page resolves."""
    dead = []
    for target in _intra_repo_links(page):
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (page.parent / path).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, \
        (f"{page.relative_to(ROOT)} has dead intra-repo links: {dead}")


def test_pages_collected():
    """Guard the guard: the parametrization saw the docs pages (an
    empty glob would vacuously pass everything)."""
    names = {p.name for p in PAGES}
    assert {"README.md", "ROADMAP.md", "architecture.md",
            "backends.md", "benchmarks.md"} <= names
