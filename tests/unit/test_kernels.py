"""Unit + property tests for the kernel registry (:mod:`repro.kernels`).

Three layers of guarantee:

* **registry mechanics** — registration, tier resolution, the
  ``REPRO_KERNELS`` selection ladder and its fallback warning, loud
  errors on unknown ops/tiers;
* **exactness** (hypothesis) — the fast tier matches the reference
  oracle *bit for bit* for gather / quantize / fused gather_quantize
  (including empty batches, duplicate and negative indices,
  non-contiguous feature stores, float32 and float64 storage), and to
  floating-point tolerance for ``segment_sum`` (accumulation order
  differs by design);
* **accounting** — buffer-pool reuse (steady-state zero allocation)
  and the traffic counters the backends attach to their reports.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.errors import ConfigError
from repro.kernels import (
    BufferPool,
    COUNTERS,
    KernelCounters,
    fast,
    format_traffic,
    kernel_tier,
    merge_counts,
    payload_bytes,
    reference,
    register_kernel,
    set_kernel_tier,
)

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

MODES = ("fp32", "fp16", "int8")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def gather_cases(draw):
    """A feature store (possibly non-contiguous, f32 or f64) plus an
    index vector (possibly empty, with duplicates and negatives)."""
    n = draw(st.integers(1, 40))
    cols = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**16))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    layout = draw(st.sampled_from(["c", "rows", "cols"]))
    rng = np.random.default_rng(seed)
    feats = rng.standard_normal((2 * n, 2 * cols)).astype(dtype)
    if layout == "rows":
        feats = feats[::2, :cols]          # row-strided view
    elif layout == "cols":
        feats = feats[:n, ::2]             # column-strided view
    else:
        feats = np.ascontiguousarray(feats[:n, :cols])
    m = draw(st.integers(0, 30))
    idx = draw(st.lists(st.integers(-n, n - 1), min_size=m, max_size=m))
    return feats, np.array(idx, dtype=np.int64)


@st.composite
def quantize_inputs(draw):
    rows = draw(st.integers(0, 24))
    cols = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**16))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols)).astype(dtype)
    if draw(st.booleans()):
        x[rng.random(x.shape) < 0.3] = 0.0     # zero rows are likely
    return x


@st.composite
def segment_cases(draw):
    num_src = draw(st.integers(1, 20))
    num_dst = draw(st.integers(1, 20))
    cols = draw(st.integers(1, 8))
    m = draw(st.integers(0, 60))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_src, size=m)
    dst = rng.integers(0, num_dst, size=m)
    h = rng.standard_normal((num_src, cols))
    w = rng.random(m) if draw(st.booleans()) else None
    return src, dst, h, num_dst, w


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_shipped_tiers_registered(self):
        for op in kernels.OPS:
            tiers = kernels.available_tiers(op)
            assert "reference" in tiers and "fast" in tiers

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel op"):
            kernels.available_tiers("scatter")
        with pytest.raises(ConfigError, match="unknown kernel op"):
            register_kernel("scatter", "fast", lambda: None)

    def test_empty_tier_name_rejected(self):
        with pytest.raises(ConfigError):
            register_kernel("gather", "", lambda: None)

    def test_register_decorator_and_custom_tier_dispatch(self):
        @register_kernel("gather", "_test_tier")
        def my_gather(features, index, out=None, pool=None):
            return np.full((index.size, features.shape[1]), 7.0)

        try:
            assert "_test_tier" in kernels.available_tiers("gather")
            with kernel_tier("_test_tier"):
                assert kernels.active_tier("gather") == "_test_tier"
                got = kernels.gather_rows(np.zeros((3, 2)),
                                          np.array([0, 1]))
                assert (got == 7.0).all()
                # The custom tier ships no quantize: non-ladder tiers
                # never fall back silently.
                with pytest.raises(ConfigError,
                                   match="provides no 'quantize'"):
                    kernels.quantize(np.zeros((2, 2)), "int8")
        finally:
            kernels.KERNELS["gather"].pop("_test_tier")

    def test_unknown_tier_is_loud(self):
        with pytest.raises(ConfigError, match="unknown kernel tier"):
            set_kernel_tier("turbo")
        with pytest.raises(ConfigError, match="unknown kernel tier"):
            with kernel_tier("turbo"):
                pass

    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        assert kernels.requested_tier() == "reference"
        assert kernels.active_tier("gather") == "reference"
        monkeypatch.setenv("REPRO_KERNELS", "")
        assert kernels.requested_tier() == kernels.DEFAULT_TIER

    def test_programmatic_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        with kernel_tier("fast"):
            assert kernels.active_tier("gather") == "fast"
        assert kernels.active_tier("gather") == "reference"

    def test_numba_request_falls_down_ladder(self):
        if kernels.available_tiers("gather").count("numba"):
            pytest.skip("numba is installed; no fallback to observe")
        kernels._warned_fallbacks.clear()
        with kernel_tier("numba"):
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert kernels.active_tier("gather") == "fast"
            # One-time warning per (requested, got) pair.
            assert kernels.active_tier("gather") == "fast"

    def test_validation_errors(self):
        with pytest.raises(ConfigError, match="2-D"):
            kernels.gather_rows(np.zeros(4), np.array([0]))
        with pytest.raises(ConfigError, match="transfer precision"):
            kernels.quantize(np.zeros((2, 2)), "int4")
        with pytest.raises(ConfigError, match="transfer precision"):
            kernels.gather_quantize(np.zeros((2, 2)), np.array([0]),
                                    "bf16")
        with pytest.raises(ConfigError, match="transfer precision"):
            payload_bytes("int4", 2, 2)

    def test_out_of_bounds_index_raises_on_both_tiers(self):
        feats = np.zeros((4, 3))
        for tier in ("reference", "fast"):
            with kernel_tier(tier):
                with pytest.raises(IndexError):
                    kernels.gather_rows(feats, np.array([0, 4]))
                with pytest.raises(IndexError):
                    kernels.gather_rows(feats, np.array([-5]))


# ---------------------------------------------------------------------------
# Exactness: fast tier vs the reference oracle
# ---------------------------------------------------------------------------

class TestGatherExactness:
    @common_settings
    @given(gather_cases())
    def test_fast_matches_reference_bitwise(self, case):
        feats, idx = case
        want = reference.gather(feats, idx)
        got = fast.gather(feats, idx)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(want, got)

    @common_settings
    @given(gather_cases())
    def test_pooled_and_out_paths_identical(self, case):
        feats, idx = case
        want = reference.gather(feats, idx)
        pool = BufferPool()
        np.testing.assert_array_equal(
            want, fast.gather(feats, idx, pool=pool))
        # Steady state: same answer out of the reused buffer.
        np.testing.assert_array_equal(
            want, fast.gather(feats, idx, pool=pool))
        out = np.empty((idx.size, feats.shape[1]), dtype=np.float64)
        got = fast.gather(feats, idx, out=out)
        assert got is out
        np.testing.assert_array_equal(want, got)


class TestQuantizeExactness:
    @common_settings
    @given(quantize_inputs(), st.sampled_from(MODES))
    def test_fast_matches_reference_bitwise(self, x, mode):
        want = reference.quantize(x, mode)
        got = fast.quantize(x, mode)
        assert got.dtype == x.dtype          # dtype preservation
        np.testing.assert_array_equal(want, got)

    def test_tie_rounding_and_clip_order(self):
        # 127.5/absmax boundaries: round-then-clip must match the
        # reference on exact ties (bankers' rounding at ±.5).
        x = np.array([[127.5, -127.5, 254.0, -254.0, 1.0]],
                     dtype=np.float64) / 254.0 * 2.0
        np.testing.assert_array_equal(reference.quantize(x, "int8"),
                                      fast.quantize(x, "int8"))

    def test_zero_and_nonfinite_rows(self):
        x = np.zeros((3, 4), dtype=np.float32)
        np.testing.assert_array_equal(reference.quantize(x, "int8"),
                                      fast.quantize(x, "int8"))
        assert not fast.quantize(x, "int8").any()


class TestFusedExactness:
    @common_settings
    @given(gather_cases(), st.sampled_from(MODES))
    def test_fused_matches_reference_composition(self, case, mode):
        feats, idx = case
        want = reference.gather_quantize(feats, idx, mode)
        got = fast.gather_quantize(feats, idx, mode)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(want, got)

    @common_settings
    @given(gather_cases(), st.sampled_from(MODES))
    def test_fused_pooled_matches(self, case, mode):
        feats, idx = case
        want = reference.gather_quantize(feats, idx, mode)
        pool = BufferPool()
        for _ in range(2):                    # cold + steady state
            np.testing.assert_array_equal(
                want, fast.gather_quantize(feats, idx, mode,
                                           pool=pool))

    @common_settings
    @given(gather_cases(), st.sampled_from(MODES))
    def test_dispatch_equals_direct_composition(self, case, mode):
        feats, idx = case
        with kernel_tier("fast"):
            fused = kernels.gather_quantize(feats, idx, mode)
            composed = kernels.quantize(
                kernels.gather_rows(feats, idx), mode)
        np.testing.assert_array_equal(fused, composed)


class TestSegmentSumTolerance:
    @common_settings
    @given(segment_cases())
    def test_fast_matches_reference_allclose(self, case):
        src, dst, h, num_dst, w = case
        want = reference.segment_sum(src, dst, h, num_dst,
                                     edge_weights=w)
        got = fast.segment_sum(src, dst, h, num_dst, edge_weights=w)
        assert got.shape == want.shape
        np.testing.assert_allclose(want, got, rtol=1e-12, atol=1e-12)
        # Destinations with no edges are exactly zero on both tiers.
        untouched = np.setdiff1d(np.arange(num_dst), dst)
        assert not got[untouched].any()


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

class TestBufferPool:
    def test_steady_state_reuses_memory(self):
        pool = BufferPool()
        a = pool.take(8, 4, np.float64)
        base = a.base
        assert base is not None
        b = pool.take(6, 4, np.float64)
        assert b.base is base                 # same backing buffer
        assert b.shape == (6, 4)
        assert pool.hits == 1 and pool.misses == 1

    def test_grow_reallocates_then_stabilizes(self):
        pool = BufferPool()
        pool.take(4, 4, np.float64)
        big = pool.take(16, 4, np.float64)    # grow: counted as miss
        assert pool.misses == 2
        again = pool.take(16, 4, np.float64)
        assert again.base is big.base
        assert pool.hits == 1

    def test_dtype_and_cols_are_distinct_classes(self):
        pool = BufferPool()
        a = pool.take(4, 4, np.float64)
        b = pool.take(4, 4, np.float32)
        c = pool.take(4, 8, np.float64)
        assert a.base is not b.base and a.base is not c.base
        assert pool.misses == 3

    def test_clear_releases(self):
        pool = BufferPool()
        pool.take(4, 4, np.float64)
        assert pool.nbytes > 0
        pool.clear()
        assert pool.nbytes == 0


# ---------------------------------------------------------------------------
# Counters & traffic accounting
# ---------------------------------------------------------------------------

class TestCounters:
    def test_gather_counts_bytes(self):
        feats = np.ones((50, 10), dtype=np.float32)
        idx = np.arange(20)
        before = COUNTERS.snapshot()
        kernels.gather_rows(feats, idx)
        d = COUNTERS.delta(before)
        assert d["gather_calls"] == 1
        assert d["gather_rows"] == 20
        assert d["gather_src_bytes"] == 20 * 10 * 4
        assert d["gather_out_bytes"] == 20 * 10 * 8

    def test_fused_counts_payload(self):
        feats = np.ones((50, 10), dtype=np.float32)
        idx = np.arange(20)
        before = COUNTERS.snapshot()
        kernels.gather_quantize(feats, idx, "int8")
        d = COUNTERS.delta(before)
        assert d["fused_calls"] == 1
        assert d["payload_bytes"] == 20 * 10 * 1 + 20 * 4

    def test_payload_bytes_table(self):
        assert payload_bytes("fp32", 3, 5) == 60
        assert payload_bytes("fp16", 3, 5) == 30
        assert payload_bytes("int8", 3, 5) == 15 + 12

    def test_delta_drops_zero_entries(self):
        c = KernelCounters()
        c.add(a=3, b=0)
        snap = c.snapshot()
        c.add(a=2)
        assert c.delta(snap) == {"a": 2}

    def test_merge_counts(self):
        into = {"a": 1}
        merge_counts(into, {"a": 2, "b": 3})
        assert into == {"a": 3, "b": 3}

    def test_format_traffic(self):
        assert format_traffic({}) == "-"
        line = format_traffic(
            {"gather_src_bytes": 4_000_000, "payload_bytes": 2_000_000,
             "fused_calls": 2, "pool_hits": 3, "pool_misses": 1},
            iterations=2)
        assert "gather 2.00 MB/it" in line
        assert "payload 1.00 MB/it" in line
        assert "pool 3/4 hits" in line

    def test_gather_feature_rows_out_and_pool(self):
        from types import SimpleNamespace

        from repro.runtime.core import gather_feature_rows
        feats = np.random.default_rng(0).standard_normal(
            (30, 6)).astype(np.float32)
        mb = SimpleNamespace(input_nodes=np.arange(12))
        want = feats[np.arange(12)].astype(np.float64)
        out = np.empty((12, 6), dtype=np.float64)
        got = gather_feature_rows(feats, mb, out=out)
        assert got is out
        np.testing.assert_array_equal(want, got)
        pool = BufferPool()
        np.testing.assert_array_equal(
            want, gather_feature_rows(feats, mb, pool=pool))
        assert pool.misses > 0


# ---------------------------------------------------------------------------
# Tier invariance of the dispatch surface
# ---------------------------------------------------------------------------

class TestTierInvariance:
    """The chokepoints must produce bit-identical results whichever
    registered ladder tier serves them — this is what lets ``fast`` be
    the default without perturbing any backend trajectory."""

    @common_settings
    @given(gather_cases(), st.sampled_from(MODES))
    def test_gather_quantize_across_tiers(self, case, mode):
        feats, idx = case
        results = []
        for tier in ("reference", "fast"):
            with kernel_tier(tier):
                results.append(
                    kernels.gather_quantize(feats, idx, mode))
        np.testing.assert_array_equal(results[0], results[1])

    def test_quantize_dequantize_preserves_dtype(self):
        from repro.runtime.quantize import quantize_dequantize
        for dtype in (np.float32, np.float64):
            x = np.random.default_rng(3).standard_normal(
                (8, 5)).astype(dtype)
            for mode in MODES:
                for tier in ("reference", "fast"):
                    with kernel_tier(tier):
                        assert quantize_dequantize(
                            x, mode).dtype == dtype

    def test_segment_sum_aggregate_routes_through_registry(self):
        from repro.nn.aggregators import segment_sum_aggregate
        from repro.sampling.base import LayerBlock
        block = LayerBlock(np.array([0, 1, 2, 1]),
                           np.array([0, 0, 1, 1]), 3, 2)
        h = np.random.default_rng(4).standard_normal((3, 5))
        outs = []
        for tier in ("reference", "fast"):
            with kernel_tier(tier):
                outs.append(segment_sum_aggregate(block, h))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-12,
                                   atol=1e-12)
