"""Property-based tests (hypothesis) for :mod:`repro.graph.partition`.

The sharded training plane trusts the partitioners for three
invariants the example-based tests in ``test_datasets_partition.py``
only spot-check: every vertex is assigned to exactly one in-range
shard, BFS growing respects its size budget, and the quality metrics
the distributed baselines charge communication with agree with a
brute-force recount. Plus the two edge shapes the sharded plane must
survive (regression: both used to crash or were never exercised):
``num_parts > num_vertices`` (empty shards are representable, not an
error) and ``num_parts == 1``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    bfs_partition,
    hash_partition,
    partition_quality,
)
from repro.graph.shard_map import ShardMap

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

PARTITIONERS = (hash_partition, bfs_partition)


@st.composite
def partition_inputs(draw, max_vertices=40, max_edges=160):
    """A small random graph plus a partition count that deliberately
    straddles the ``num_parts > num_vertices`` edge."""
    n = draw(st.integers(1, max_vertices))
    m = draw(st.integers(0, max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    graph = CSRGraph.from_edges(np.array(src, dtype=np.int64),
                                np.array(dst, dtype=np.int64), n)
    num_parts = draw(st.integers(1, n + 5))
    seed = draw(st.integers(0, 2**16))
    return graph, num_parts, seed


class TestAssignmentTotality:
    @pytest.mark.parametrize("partition", PARTITIONERS)
    @common_settings
    @given(partition_inputs())
    def test_every_vertex_assigned_in_range(self, partition, data):
        graph, num_parts, seed = data
        parts = partition(graph, num_parts, seed=seed)
        assert parts.shape == (graph.num_vertices,)
        assert parts.dtype == np.int64
        assert parts.min() >= 0
        assert parts.max() < num_parts

    @common_settings
    @given(partition_inputs())
    def test_bfs_respects_size_budget(self, data):
        graph, num_parts, seed = data
        parts = bfs_partition(graph, num_parts, seed=seed)
        budget = -(-graph.num_vertices // num_parts)
        sizes = np.bincount(parts, minlength=num_parts)
        assert sizes.sum() == graph.num_vertices
        assert sizes.max() <= budget

    @pytest.mark.parametrize("partition", PARTITIONERS)
    @common_settings
    @given(partition_inputs())
    def test_quality_matches_brute_force(self, partition, data):
        graph, num_parts, seed = data
        parts = partition(graph, num_parts, seed=seed)
        q = partition_quality(graph, parts)

        src, dst = graph.edges()
        pairs = list(zip(src.tolist(), dst.tolist()))
        cut = [(s, d) for s, d in pairs if parts[s] != parts[d]]
        want_cut = len(cut) / len(pairs) if pairs else 0.0
        assert q.edge_cut_fraction == pytest.approx(want_cut)

        # partition_quality derives its shard count from the
        # assignment itself (max + 1), so recount on that basis.
        realized = int(parts.max()) + 1
        sizes = [int(np.sum(parts == p)) for p in range(realized)]
        want_imbalance = max(sizes) / (sum(sizes) / realized)
        assert q.imbalance == pytest.approx(want_imbalance)

        halo_pairs = {(int(parts[d]), int(s)) for s, d in cut}
        want_repl = 1.0 + len(halo_pairs) / max(1, graph.num_vertices)
        assert q.replication_factor == pytest.approx(want_repl)


class TestEdgeShapes:
    """The two regression edges the sharded plane depends on."""

    @pytest.fixture()
    def small_graph(self):
        rng = np.random.default_rng(5)
        src = rng.integers(0, 10, size=40)
        dst = rng.integers(0, 10, size=40)
        return CSRGraph.from_edges(src, dst, 10)

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_more_parts_than_vertices(self, small_graph, partition):
        """``num_parts > n`` yields a legal assignment with (possibly)
        empty shards — it used to raise in ``bfs_partition`` — and the
        result must survive the downstream ShardMap translation."""
        num_parts = small_graph.num_vertices + 7
        parts = partition(small_graph, num_parts, seed=1)
        assert parts.shape == (small_graph.num_vertices,)
        assert parts.min() >= 0 and parts.max() < num_parts
        smap = ShardMap.from_partition(parts, num_shards=num_parts)
        sizes = smap.shard_sizes()
        assert sizes.sum() == small_graph.num_vertices
        assert (sizes == 0).any()          # empty shards representable
        for k in np.flatnonzero(sizes == 0):
            assert smap.owned(int(k)).size == 0

    def test_bfs_more_parts_than_vertices_stays_balanced(
            self, small_graph):
        parts = bfs_partition(small_graph,
                              small_graph.num_vertices + 7, seed=1)
        # budget = ceil(n / num_parts) = 1: perfect spread, one vertex
        # per non-empty shard.
        sizes = np.bincount(parts,
                            minlength=small_graph.num_vertices + 7)
        assert sizes.max() == 1

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_single_partition(self, small_graph, partition):
        parts = partition(small_graph, 1, seed=3)
        np.testing.assert_array_equal(
            parts, np.zeros(small_graph.num_vertices, dtype=np.int64))
        q = partition_quality(small_graph, parts)
        assert q.edge_cut_fraction == 0.0
        assert q.imbalance == 1.0

    @pytest.mark.parametrize("partition", PARTITIONERS)
    def test_invalid_num_parts_rejected(self, small_graph, partition):
        with pytest.raises(GraphError):
            partition(small_graph, 0)
