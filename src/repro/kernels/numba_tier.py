"""Optional numba-jitted kernel tier.

Registered only when :mod:`numba` imports (``HAVE_NUMBA``); the library
never requires it. Request with ``REPRO_KERNELS=numba`` — when numba is
absent the dispatcher falls back down the ladder to the fast NumPy tier
with a one-time warning, so the same configuration runs everywhere
(CI's numba matrix leg relies on exactly this).

What gets jitted: the row gather (parallel row loop, widening on the
fly) and the fused int8 gather+quantize (per-row absmax / scale /
round / clip / rescale in one pass, no staging buffer at all — the one
kernel where loop fusion beats NumPy's per-ufunc passes outright). The
serial scatter-add of ``segment_sum`` accumulates in exactly the
reference's edge order, so this tier is bit-exact even where the fast
NumPy tier is only tolerance-equivalent. fp16 modes delegate to the
fast tier (numba has no float16 support).

Kernels compile lazily on first call (``cache=True`` persists the
compilation across processes where the platform allows it).
"""

from __future__ import annotations

import numpy as np

from . import fast

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    numba = None
    HAVE_NUMBA = False

if HAVE_NUMBA:  # pragma: no cover - exercised by the CI numba leg

    @njit(cache=True, parallel=True)
    def _gather_into(features, index, out):
        for i in prange(index.shape[0]):
            row = index[i]
            for j in range(features.shape[1]):
                out[i, j] = features[row, j]

    @njit(cache=True, parallel=True)
    def _gather_quantize_int8(features, index, out):
        cols = features.shape[1]
        for i in prange(index.shape[0]):
            row = index[i]
            amax = 0.0
            for j in range(cols):
                v = abs(np.float64(features[row, j]))
                if v > amax:
                    amax = v
            scale = amax / 127.0 if amax > 0.0 else 1.0
            for j in range(cols):
                q = np.rint(np.float64(features[row, j]) / scale)
                if q > 127.0:
                    q = 127.0
                elif q < -127.0:
                    q = -127.0
                out[i, j] = q * scale

    @njit(cache=True)
    def _scatter_add(out, dst, messages):
        for e in range(dst.shape[0]):
            d = dst[e]
            for j in range(messages.shape[1]):
                out[d, j] += messages[e, j]

    def gather(features, index, out=None, pool=None):
        dest = fast._dest(index.shape[0], features.shape[1],
                          np.float64, out, pool)
        _gather_into(features, index, dest)
        return dest

    def quantize(x, mode, out=None, pool=None):
        # Row-local work with no gather to fuse against: the fast
        # NumPy tier is already optimal here.
        return fast.quantize(x, mode, out=out, pool=pool)

    def gather_quantize(features, index, mode, out=None, pool=None):
        if mode != "int8":
            return fast.gather_quantize(features, index, mode,
                                        out=out, pool=pool)
        dest = fast._dest(index.shape[0], features.shape[1],
                          np.float64, out, pool)
        _gather_quantize_int8(features, index, dest)
        return dest

    def segment_sum(src, dst, h_src, num_dst, edge_weights=None):
        order = np.argsort(src, kind="stable")
        dst_o = dst[order]
        messages = h_src[src[order]]
        if messages.dtype != np.float64:
            messages = messages.astype(np.float64)
        if edge_weights is not None:
            messages *= edge_weights[order][:, None]
        out = np.zeros((num_dst, h_src.shape[1]), dtype=np.float64)
        _scatter_add(out, dst_o, messages)
        return out
