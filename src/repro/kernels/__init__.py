"""Hot-path kernel registry: one op, several tiers, one chokepoint.

The per-iteration numeric work of every execution backend funnels
through four ops — feature-row **gather**, transfer **quantize**, the
fused **gather_quantize**, and **segment_sum** aggregation. This
module gives each op a registry of interchangeable implementations
("tiers"), mirroring the backend registry
(:mod:`repro.runtime.backends`): a name, a lookup that lists what is
registered when it fails, and a :func:`register_kernel` hook for
out-of-tree variants.

Shipped tiers, in fallback order:

* ``"numba"`` — jitted loops, auto-registered only when :mod:`numba`
  imports (:mod:`repro.kernels.numba_tier`);
* ``"fast"`` — preallocated / fused / reduceat NumPy
  (:mod:`repro.kernels.fast`), the **default**;
* ``"reference"`` — the original implementations, kept as the
  conformance oracle (:mod:`repro.kernels.reference`).

Selection: the ``REPRO_KERNELS`` environment variable (read at each
dispatch, so worker processes inherit it under any start method), or
programmatically via :func:`set_kernel_tier` / the :func:`kernel_tier`
context manager. Requesting a ladder tier that is not registered
(``numba`` without numba) falls back down the ladder with a one-time
warning — the suite runs unchanged, just slower. Requesting an unknown
non-ladder tier is a loud :class:`~repro.errors.ConfigError`.

Every dispatch also feeds :data:`COUNTERS` (bytes gathered, payload
bytes quantized, pool hits/misses) — the per-iteration traffic
accounting the wall-clock bench reports next to its overlap column.

``docs/kernels.md`` is the author guide: calling convention, pooling
aliasing rules, and the exactness contract each tier owes the
reference.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..registry import Registry
from . import fast as _fast
from . import reference as _reference
from .pool import BufferPool
from .stats import (
    COUNTERS,
    KernelCounters,
    format_shard_io,
    format_traffic,
    merge_counts,
    record,
    scoped_counters,
)

#: The registered ops (fixed: callers dispatch through the functions
#: below; tiers provide implementations per op).
OPS = ("gather", "quantize", "gather_quantize", "segment_sum")

#: Bytes per feature element on the PCIe link, per precision mode
#: (ground truth; ``repro.runtime.quantize`` re-exports it).
TRANSFER_BYTES = {"fp32": 4, "fp16": 2, "int8": 1}

#: Tier preference ladder: a request resolves to the first registered
#: tier at or below it.
TIER_LADDER = ("numba", "fast", "reference")

#: The tier served when ``REPRO_KERNELS`` is unset and no programmatic
#: override is active.
DEFAULT_TIER = "fast"

#: op -> tier -> implementation: a :class:`~repro.registry.Registry`
#: of per-op tier registries (the unified registry discipline shared
#: with backends and samplers), dict-compatible for legacy call sites.
#: Mutated only via :func:`register_kernel`.
KERNELS: Registry = Registry("kernel op")
for _op in OPS:
    KERNELS.register(_op, Registry("kernel tier"))
del _op

_requested: str | None = None          # programmatic override
_warned_fallbacks: set[tuple[str, str]] = set()


def register_kernel(op: str, tier: str, fn: Callable | None = None):
    """Register ``fn`` as op ``op``'s ``tier`` implementation.

    Usable directly or as a decorator (``@register_kernel(op, tier)``);
    returns the function unchanged. Re-registering a ``(op, tier)``
    pair replaces the implementation (how an out-of-tree tier would
    override a shipped one).
    """
    if op not in KERNELS:
        raise KERNELS.unknown_error(op)
    if not tier:
        raise ConfigError("kernel tier needs a non-empty name")

    def _do(f: Callable) -> Callable:
        KERNELS[op].register(tier, f)
        return f

    return _do if fn is None else _do(fn)


def available_tiers(op: str = "gather") -> tuple[str, ...]:
    """Registered tier names for ``op``, sorted (the unified
    ``available_*`` surface shared with backends and samplers)."""
    return KERNELS.get(op).available()


def requested_tier() -> str:
    """The tier selection in effect (override, env var, or default) —
    before fallback."""
    if _requested is not None:
        return _requested
    return os.environ.get("REPRO_KERNELS", "").strip() or DEFAULT_TIER


def set_kernel_tier(tier: str | None) -> str | None:
    """Set (or with ``None`` clear) the programmatic tier override.

    Returns the previous override so callers can restore it; prefer
    the :func:`kernel_tier` context manager.
    """
    global _requested
    if tier is not None:
        _check_requestable(tier)
    prev = _requested
    _requested = tier
    return prev


@contextmanager
def kernel_tier(tier: str):
    """Run a block under the given tier request (restores on exit)."""
    prev = set_kernel_tier(tier)
    try:
        yield
    finally:
        set_kernel_tier(prev)


def active_tier(op: str = "gather") -> str:
    """The tier a dispatch of ``op`` would actually use right now
    (after ladder fallback)."""
    tier, _ = _resolve(op)
    return tier


def _check_requestable(tier: str) -> None:
    known = set(TIER_LADDER)
    for impls in KERNELS.values():
        known.update(impls)
    if tier not in known:
        raise ConfigError(
            f"unknown kernel tier {tier!r}; known: {sorted(known)}")


def _resolve(op: str) -> tuple[str, Callable]:
    tier = requested_tier()
    impls = KERNELS[op]
    if tier not in TIER_LADDER:
        _check_requestable(tier)
        impl = impls.get(tier, None)
        if impl is None:
            raise ConfigError(
                f"kernel tier {tier!r} provides no {op!r}; registered "
                f"for {op!r}: {sorted(impls)}")
        return tier, impl
    for t in TIER_LADDER[TIER_LADDER.index(tier):]:
        impl = impls.get(t, None)
        if impl is not None:
            if t != tier and (tier, t) not in _warned_fallbacks:
                _warned_fallbacks.add((tier, t))
                warnings.warn(
                    f"kernel tier {tier!r} unavailable for {op!r}; "
                    f"falling back to {t!r}", RuntimeWarning,
                    stacklevel=3)
            return t, impl
    raise ConfigError(
        f"no kernel registered for {op!r} at or below tier {tier!r}; "
        f"registered: {sorted(impls)}")


def payload_bytes(mode: str, rows: int, cols: int) -> int:
    """Wire bytes one quantized batch occupies on the PCIe link:
    the payload at the mode's element width, plus one fp32 scale per
    row for the int8 format."""
    if mode not in TRANSFER_BYTES:
        raise ConfigError(
            f"unknown transfer precision {mode!r}; "
            f"expected one of {sorted(TRANSFER_BYTES)}")
    wire = rows * cols * TRANSFER_BYTES[mode]
    if mode == "int8":
        wire += rows * 4
    return wire


# ---------------------------------------------------------------------------
# Dispatchers (validate once, count, then call the resolved tier)
# ---------------------------------------------------------------------------

def _check_matrix(x: np.ndarray, what: str) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 2:
        raise ConfigError(f"expected a 2-D {what} matrix")
    return x


def _check_mode(mode: str) -> None:
    if mode not in TRANSFER_BYTES:
        raise ConfigError(
            f"unknown transfer precision {mode!r}; "
            f"expected one of {sorted(TRANSFER_BYTES)}")


def gather_rows(features: np.ndarray, index: np.ndarray, *,
                out: np.ndarray | None = None,
                pool: BufferPool | None = None) -> np.ndarray:
    """Gather feature rows as float64 — the load-stage kernel.

    ``out`` (a float64 ``(len(index), features.shape[1])`` buffer) or
    ``pool`` make the fast tier allocation-free; see ``docs/kernels.md``
    for the aliasing rules pooling imposes on the caller.
    """
    features = _check_matrix(features, "feature")
    index = np.asarray(index)
    _, impl = _resolve("gather")
    result = impl(features, index, out=out, pool=pool)
    record(
        gather_calls=1, gather_rows=index.size,
        gather_src_bytes=index.size * features.shape[1]
        * features.itemsize,
        gather_out_bytes=result.nbytes)
    return result


def quantize(x: np.ndarray, mode: str, *,
             out: np.ndarray | None = None,
             pool: BufferPool | None = None) -> np.ndarray:
    """Transfer-precision round trip (dequantized result, input float
    dtype preserved) — the transfer-stage kernel."""
    _check_mode(mode)
    x = _check_matrix(x, "feature")
    _, impl = _resolve("quantize")
    result = impl(x, mode, out=out, pool=pool)
    record(
        quantize_calls=1, quantize_in_bytes=x.nbytes,
        payload_bytes=payload_bytes(mode, x.shape[0], x.shape[1]))
    return result


def gather_quantize(features: np.ndarray, index: np.ndarray,
                    mode: str, *,
                    out: np.ndarray | None = None,
                    pool: BufferPool | None = None) -> np.ndarray:
    """Fused gather + quantized-transfer round trip (float64 result) —
    the load+transfer chokepoint accelerator-bound batches take."""
    _check_mode(mode)
    features = _check_matrix(features, "feature")
    index = np.asarray(index)
    _, impl = _resolve("gather_quantize")
    result = impl(features, index, mode, out=out, pool=pool)
    record(
        fused_calls=1, gather_rows=index.size,
        gather_src_bytes=index.size * features.shape[1]
        * features.itemsize,
        gather_out_bytes=result.nbytes,
        payload_bytes=payload_bytes(mode, index.size,
                                    features.shape[1]))
    return result


def segment_sum(src: np.ndarray, dst: np.ndarray, h_src: np.ndarray,
                num_dst: int,
                edge_weights: np.ndarray | None = None) -> np.ndarray:
    """Segment-sum aggregation over an edge list (float64 result).

    The FPGA-kernel-equivalent path of paper Eq. 1; the production
    model layers aggregate through scipy spmm instead, so tiers here
    may reorder the accumulation (tolerance-equivalent).
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    h_src = _check_matrix(h_src, "message")
    if edge_weights is not None:
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
    _, impl = _resolve("segment_sum")
    result = impl(src, dst, h_src, int(num_dst),
                  edge_weights=edge_weights)
    record(segment_sum_calls=1,
                 segment_sum_edges=src.size)
    return result


# ---------------------------------------------------------------------------
# Shipped registrations
# ---------------------------------------------------------------------------

register_kernel("gather", "reference", _reference.gather)
register_kernel("quantize", "reference", _reference.quantize)
register_kernel("gather_quantize", "reference",
                _reference.gather_quantize)
register_kernel("segment_sum", "reference", _reference.segment_sum)

register_kernel("gather", "fast", _fast.gather)
register_kernel("quantize", "fast", _fast.quantize)
register_kernel("gather_quantize", "fast", _fast.gather_quantize)
register_kernel("segment_sum", "fast", _fast.segment_sum)

from . import numba_tier as _numba_tier  # noqa: E402  (needs `fast`)

if _numba_tier.HAVE_NUMBA:  # pragma: no cover - CI numba leg
    register_kernel("gather", "numba", _numba_tier.gather)
    register_kernel("quantize", "numba", _numba_tier.quantize)
    register_kernel("gather_quantize", "numba",
                    _numba_tier.gather_quantize)
    register_kernel("segment_sum", "numba", _numba_tier.segment_sum)

__all__ = [
    "OPS",
    "TIER_LADDER",
    "DEFAULT_TIER",
    "TRANSFER_BYTES",
    "KERNELS",
    "register_kernel",
    "available_tiers",
    "requested_tier",
    "active_tier",
    "set_kernel_tier",
    "kernel_tier",
    "payload_bytes",
    "gather_rows",
    "quantize",
    "gather_quantize",
    "segment_sum",
    "BufferPool",
    "COUNTERS",
    "KernelCounters",
    "record",
    "scoped_counters",
    "format_traffic",
    "format_shard_io",
    "merge_counts",
]
