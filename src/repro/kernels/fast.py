"""Fast kernel tier: preallocated, fused, reduction-restructured NumPy.

The default tier (``REPRO_KERNELS`` unset). Three levers, all pure
NumPy so every platform gets them:

* **Preallocation** — every kernel takes ``out=``/``pool=`` and writes
  through ``np.take(..., out=...)`` / ufunc ``out=`` into reusable
  buffers, so steady-state iterations at a pooled call site allocate
  nothing (the pool grows to the largest batch seen, then only hands
  out views).
* **Fusion** — :func:`gather_quantize` produces the dequantized
  trainer input in a single pass over the gathered rows: the float32
  rows are staged once, the per-row scales come from two ``(rows,)``
  reductions (no full-size ``abs`` temporary), and the divide / round /
  clip / rescale chain runs in place on the float64 output. The
  reference composition materializes ~7 full-size temporaries for the
  same result.
* **Reduction restructuring** — :func:`segment_sum` replaces the
  edge-serial ``np.add.at`` scatter (notoriously slow: one bounds-
  checked inner-loop dispatch per edge) with destination-sorted
  ``np.add.reduceat`` runs.

Exactness contract (held by the property suite): ``gather`` and
``gather_quantize``/``quantize`` match the reference tier **bit for
bit** on finite inputs — the float64 widen is exact, the per-row
absmax equals ``max(max(x), -min(x))`` exactly, and round-then-clip
runs in the same order on the same dtypes as the reference. Only
``segment_sum`` is tolerance-equivalent (sum order differs); it is off
the training path (models aggregate through
:class:`~repro.nn.aggregators.SparseAggregator`), so backend
trajectories are identical under either tier.
"""

from __future__ import annotations

import numpy as np

from .pool import BufferPool


def _dest(rows: int, cols: int, dtype, out: np.ndarray | None,
          pool: BufferPool | None) -> np.ndarray:
    """Resolve a kernel's destination buffer: caller's ``out``, a
    pooled view, or a fresh allocation."""
    if out is not None:
        return out
    if pool is not None:
        return pool.take(rows, cols, dtype)
    return np.empty((rows, cols), dtype=dtype)


def _checked_take(features: np.ndarray, index: np.ndarray,
                  out: np.ndarray) -> None:
    """``np.take`` into ``out`` with an explicit up-front bounds check.

    ``mode="raise"`` routes through a bounds-checking inner loop (and a
    temporary) that is ~2.5× slower than the unchecked copy; validating
    the index vector once with two scalar reductions and then taking
    with ``mode="wrap"`` keeps the reference's semantics — including
    negative indices, which wrap exactly like fancy indexing once the
    range check has passed — at full copy speed.
    """
    if index.size:
        lo, hi = int(index.min()), int(index.max())
        if lo < -features.shape[0] or hi >= features.shape[0]:
            bad = hi if hi >= features.shape[0] else lo
            raise IndexError(
                f"index {bad} is out of bounds for axis 0 with size "
                f"{features.shape[0]}")
    np.take(features, index, axis=0, out=out, mode="wrap")


def _take_rows(features: np.ndarray, index: np.ndarray,
               pool: BufferPool | None) -> np.ndarray:
    """Stage the selected rows in the feature store's own dtype (one
    ``np.take`` into pooled or fresh memory — ``np.take`` requires a
    dtype-matched destination)."""
    rows, cols = index.shape[0], features.shape[1]
    if pool is not None:
        stage = pool.take(rows, cols, features.dtype)
    else:
        stage = np.empty((rows, cols), dtype=features.dtype)
    _checked_take(features, index, stage)
    return stage


def gather(features: np.ndarray, index: np.ndarray,
           out: np.ndarray | None = None,
           pool: BufferPool | None = None) -> np.ndarray:
    """Row gather + float64 widen, allocation-free when pooled.

    float64 stores gather straight into the destination; narrower
    stores stage in their own dtype (a second pooled buffer class) and
    widen with one ``copyto`` — same two passes as the reference, but
    into reused memory.
    """
    rows, cols = index.shape[0], features.shape[1]
    dest = _dest(rows, cols, np.float64, out, pool)
    if features.dtype == np.float64:
        _checked_take(features, index, dest)
    else:
        stage = _take_rows(features, index, pool)
        np.copyto(dest, stage)
    return dest


def _row_scales(x: np.ndarray) -> np.ndarray:
    """Per-row symmetric int8 scales as float64 ``(rows, 1)``.

    ``max(|x|)`` computed as ``max(max(x), -min(x))`` — two ``(rows,)``
    reductions instead of a full-size ``abs`` temporary; bit-equal
    because negation of a float is exact. The divide by 127 happens in
    float64 so the scales match the reference path's widened
    computation bit for bit whatever the store dtype.
    """
    absmax = np.maximum(x.max(axis=1), -x.min(axis=1))
    absmax = absmax.astype(np.float64, copy=False)[:, None]
    return np.where(absmax > 0, absmax / 127.0, 1.0)


def _dequantize_inplace(dest: np.ndarray, scale: np.ndarray) -> None:
    """Round / clip / rescale ``dest`` (already ``x / scale``) in
    place. Round *then* clip, like the reference — the order matters at
    the ±127.5 boundary."""
    np.rint(dest, out=dest)
    np.clip(dest, -127, 127, out=dest)
    dest *= scale


def quantize(x: np.ndarray, mode: str,
             out: np.ndarray | None = None,
             pool: BufferPool | None = None) -> np.ndarray:
    """Transfer-precision round trip without the reference's int8 and
    float64 temporaries: one destination buffer, ufunc ``out=`` all the
    way through. Preserves the input float dtype."""
    if mode == "fp32":
        if out is None:
            return x
        np.copyto(out, x)
        return out
    rows, cols = x.shape
    dest = _dest(rows, cols, x.dtype, out, pool)
    if mode == "fp16":
        np.copyto(dest, x.astype(np.float16))
        return dest
    # int8: scales in x's dtype to match the reference computation.
    absmax = np.maximum(x.max(axis=1), -x.min(axis=1))[:, None]
    scale = np.where(absmax > 0, absmax / 127.0, 1.0)
    np.divide(x, scale, out=dest)
    _dequantize_inplace(dest, scale)
    return dest


def gather_quantize(features: np.ndarray, index: np.ndarray, mode: str,
                    out: np.ndarray | None = None,
                    pool: BufferPool | None = None) -> np.ndarray:
    """Fused gather + dequantized transfer: int8/fp16 payload semantics
    applied directly from the feature store, no float64 intermediate
    between the stages.

    The rows are staged once in store dtype; the scales come from the
    staged rows (exact — see :func:`_row_scales`); the divide widens
    straight into the float64 destination, and round / clip / rescale
    run in place. Bit-identical to the reference gather → quantize
    composition on finite inputs.
    """
    if mode == "fp32":
        return gather(features, index, out=out, pool=pool)
    rows, cols = index.shape[0], features.shape[1]
    dest = _dest(rows, cols, np.float64, out, pool)
    if features.dtype == np.float64:
        # Gather straight into the destination and quantize in place
        # (the scales are reduced out before the divide overwrites).
        _checked_take(features, index, dest)
        stage = dest
    else:
        stage = _take_rows(features, index, pool)
    if mode == "fp16":
        np.copyto(dest, stage.astype(np.float16))
        return dest
    scale = _row_scales(stage)
    np.divide(stage, scale, out=dest)
    _dequantize_inplace(dest, scale)
    return dest


def segment_sum(src: np.ndarray, dst: np.ndarray, h_src: np.ndarray,
                num_dst: int,
                edge_weights: np.ndarray | None = None) -> np.ndarray:
    """Destination-sorted ``np.add.reduceat`` aggregation.

    Sorts edges by destination, gathers the messages once, and reduces
    each destination's contiguous run in one vectorized pass — the CSR
    row-sum formulation of the same Eq.-1 sum. Accumulation order
    within a destination differs from the reference's source-sorted
    stream, so equality is to floating-point tolerance (documented in
    ``docs/kernels.md``); absent/zero-degree destinations stay zero
    rows exactly as in the reference.
    """
    order = np.argsort(dst, kind="stable")
    dst_o = dst[order]
    messages = h_src[src[order]]
    if messages.dtype != np.float64:
        messages = messages.astype(np.float64)
    if edge_weights is not None:
        # ``messages`` is a fresh fancy-index copy: in-place is safe.
        messages *= edge_weights[order][:, None]
    out = np.zeros((num_dst, h_src.shape[1]), dtype=np.float64)
    if dst_o.size:
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(dst_o)) + 1])
        out[dst_o[starts]] = np.add.reduceat(messages, starts, axis=0)
    return out
