"""Grow-only buffer pool for the gather/transfer hot path.

The reference gather allocates a fresh ``(rows, features)`` array every
mini-batch — at products scale that is tens of megabytes per iteration
of allocator traffic before a single useful byte moves. The pool keeps
one buffer per ``(columns, dtype)`` shape class and hands out row-count
views into it, so the steady state (batch sizes stabilize after the
first few iterations) allocates nothing: the fast kernels' ``out=``
paths write straight into pooled memory.

Aliasing contract — the reason pooling is **opt-in** per call site: a
view returned by :meth:`BufferPool.take` is valid only until the next
``take`` of the same ``(columns, dtype)`` class. That is exactly the
lifetime of a mini-batch's ``x0`` in the sequential planes (the virtual
backend and the process-plane workers train each batch to completion
before gathering the next; ``Model.backward`` drops its activation
caches, so nothing outlives the call). The overlapped planes (threaded,
pipelined, and the fused workers' stage threads) keep several batches
in flight inside ``PrefetchBuffer`` queues, so they must **not** pass a
pool — and do not. ``docs/kernels.md`` spells the rule out for kernel
authors.

Not thread-safe by design: a pool belongs to one call site on one
thread (per-worker, per-backend-run). Cross-thread sharing would
reintroduce the aliasing hazard the opt-in rule exists to prevent.
"""

from __future__ import annotations

import numpy as np

from .stats import COUNTERS


class BufferPool:
    """Reusable 2-D scratch buffers keyed by ``(columns, dtype)``.

    Grow-only: a request for more rows than the pooled buffer holds
    reallocates it (counted as a miss); every smaller or equal request
    is served as a zero-copy view (a hit). ``take`` never zeroes the
    buffer — callers own every row of the returned view.
    """

    def __init__(self) -> None:
        self._bufs: dict[tuple[int, str], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, rows: int, cols: int, dtype) -> np.ndarray:
        """A C-contiguous ``(rows, cols)`` view of pooled memory."""
        key = (int(cols), np.dtype(dtype).str)
        buf = self._bufs.get(key)
        if buf is None or buf.shape[0] < rows:
            buf = np.empty((int(rows), int(cols)), dtype=dtype)
            self._bufs[key] = buf
            self.misses += 1
            COUNTERS.add(pool_misses=1, pool_alloc_bytes=buf.nbytes)
        else:
            self.hits += 1
            COUNTERS.add(pool_hits=1)
        return buf[:rows]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held."""
        return sum(b.nbytes for b in self._bufs.values())

    def clear(self) -> None:
        """Drop every pooled buffer (releases the memory)."""
        self._bufs.clear()
