"""Reference kernel tier: the conformance oracle.

These are the library's original hot-path implementations, moved here
verbatim so the fast tiers have a fixed semantic target: plain, easily
auditable NumPy with no buffer reuse, no fusion, and no layout tricks.
The property suite (``tests/unit/test_kernels.py``) holds every other
registered tier to this tier's outputs — bit-exactly for ``gather``
and the fused ``gather_quantize``, to floating-point tolerance for
``segment_sum`` (whose fast variant reorders the accumulation).

Tier implementations receive pre-validated inputs from the dispatchers
in :mod:`repro.kernels` (mode and shape checks happen once, above the
registry), and share one calling convention: ``out=`` is an optional
caller-owned destination buffer, ``pool=`` an optional
:class:`~repro.kernels.pool.BufferPool` for scratch staging. The
reference tier honors ``out`` (so it can be A/B-swapped under pooled
call sites) but never pools — its role is to be the obviously-correct
allocation-per-call baseline the benches compare against.
"""

from __future__ import annotations

import numpy as np


def gather(features: np.ndarray, index: np.ndarray,
           out: np.ndarray | None = None, pool=None) -> np.ndarray:
    """Row gather + float64 widen via one fancy-index copy.

    Fancy indexing already yields a fresh C-contiguous array, so the
    ``ascontiguousarray`` on the float64 branch is a no-op check, not a
    copy; narrower stores pay one extra ``astype`` pass.
    """
    x0 = features[index]
    if x0.dtype != np.float64:
        x0 = x0.astype(np.float64)
    else:
        x0 = np.ascontiguousarray(x0)
    if out is not None:
        np.copyto(out, x0)
        return out
    return x0


def quantize(x: np.ndarray, mode: str,
             out: np.ndarray | None = None, pool=None) -> np.ndarray:
    """Transfer-precision round trip, one temporary per step.

    Per-row symmetric int8 (each row ships an fp32 scale alongside the
    payload) or an IEEE-half round trip. Preserves the input float
    dtype — a float32 batch comes back float32.
    """
    if mode == "fp32":
        result = x
    elif mode == "fp16":
        result = x.astype(np.float16).astype(x.dtype)
    else:  # int8: symmetric per-row scale.
        absmax = np.abs(x).max(axis=1, keepdims=True)
        scale = np.where(absmax > 0, absmax / 127.0, 1.0)
        q = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
        result = q.astype(x.dtype) * scale
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def gather_quantize(features: np.ndarray, index: np.ndarray, mode: str,
                    out: np.ndarray | None = None,
                    pool=None) -> np.ndarray:
    """Unfused composition: gather (with its float64 widen), then the
    quantization round trip — the baseline the fused fast kernel must
    beat (and match bit-for-bit)."""
    return quantize(gather(features, index), mode, out=out)


def segment_sum(src: np.ndarray, dst: np.ndarray, h_src: np.ndarray,
                num_dst: int,
                edge_weights: np.ndarray | None = None) -> np.ndarray:
    """Edge-serial scatter-add in source-sorted order.

    Mirrors the FPGA scatter-gather kernel's streaming order (paper
    §IV-C): edges sorted by source, accumulated one at a time into the
    destination rows. ``np.add.at`` applies duplicates in index order,
    so the accumulation order is exactly the stream order.
    """
    order = np.argsort(src, kind="stable")
    src_o = src[order]
    dst_o = dst[order]
    messages = h_src[src_o]
    if edge_weights is not None:
        messages = messages * edge_weights[order][:, None]
    out = np.zeros((num_dst, h_src.shape[1]), dtype=np.float64)
    np.add.at(out, dst_o, messages)
    return out
