"""Process-local kernel traffic accounting.

Every dispatch through the kernel registry records what it moved: rows
gathered, source bytes read from the feature store, bytes written into
trainer-facing buffers, quantized payload bytes that would cross PCIe,
and the buffer pool's hit/miss/allocation trail. The counters answer
the question the micro-bench cannot: *per training iteration*, how many
bytes did the gather/transfer hot path actually move, and did the
steady state allocate?

One :data:`COUNTERS` accumulator per process stays the process-wide
total, but it is no longer the only sink: every dispatch goes through
:func:`record`, which also feeds any **session-scoped**
:class:`KernelCounters` the current thread has been enlisted into via
:func:`scoped_counters`. That is how two concurrent sessions in one
process (a training backend and a serving session, or two trainings
under one :class:`~repro.runtime.resctl.NodeAllocator`) each get a
``kernel_stats`` that counts only *their own* dispatches instead of
interleaving into one global bag. In-process backends wrap their run
and stage threads in ``scoped_counters(self.counters)``; the process
planes are already scoped by construction (each worker computes a
local delta and ships it back over the ``kstats`` pipe message).

Thread safety: stage threads of the overlapped backends dispatch
kernels concurrently, so :meth:`KernelCounters.add` takes a lock. The
costs are a few dict updates per *batch* (not per element); the lock is
invisible next to the gather itself. Enlistment is keyed by thread id
and stores immutable tuples, so :func:`record`'s read path is a single
dict lookup with no lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class KernelCounters:
    """A thread-safe additive counter bag.

    Keys are free-form (the kernel dispatchers use ``gather_calls``,
    ``gather_rows``, ``gather_src_bytes``, ``gather_out_bytes``,
    ``quantize_calls``, ``quantize_in_bytes``, ``payload_bytes``,
    ``fused_calls``, ``segment_sum_calls``, ``pool_hits``,
    ``pool_misses``, ``pool_alloc_bytes``); absent keys read as zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def add(self, **deltas: int) -> None:
        """Accumulate the given deltas atomically."""
        with self._lock:
            for key, value in deltas.items():
                self._counts[key] = self._counts.get(key, 0) + int(value)

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Counters accumulated after ``since`` (a prior snapshot),
        dropping zero entries so reports stay compact."""
        now = self.snapshot()
        out = {}
        for key, value in now.items():
            d = value - since.get(key, 0)
            if d:
                out[key] = d
        return out

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        with self._lock:
            self._counts.clear()


def merge_counts(into: dict[str, int],
                 extra: dict[str, int]) -> dict[str, int]:
    """Sum ``extra`` into ``into`` (the parent folding worker
    snapshots); returns ``into`` for chaining."""
    for key, value in extra.items():
        into[key] = into.get(key, 0) + int(value)
    return into


def format_traffic(counts: dict[str, int], iterations: int = 1) -> str:
    """One-line per-iteration traffic summary for benches/logs.

    Renders the bytes the gather/quantize hot path moved per training
    iteration (source bytes read from the feature store; quantized
    payload bytes that would cross PCIe) and the buffer-pool hit rate —
    the steady-state-allocation answer. ``"-"`` when ``counts`` is
    empty (a backend that never dispatched a kernel).
    """
    if not counts:
        return "-"
    iters = max(int(iterations), 1)
    parts = [
        "gather "
        f"{counts.get('gather_src_bytes', 0) / iters / 1e6:.2f} MB/it"]
    if counts.get("quantize_calls", 0) or counts.get("fused_calls", 0):
        parts.append(
            "payload "
            f"{counts.get('payload_bytes', 0) / iters / 1e6:.2f} MB/it")
    hits = counts.get("pool_hits", 0)
    misses = counts.get("pool_misses", 0)
    if hits or misses:
        parts.append(f"pool {hits}/{hits + misses} hits")
    return " | ".join(parts)


def format_shard_io(counts: dict[str, int], iterations: int = 1) -> str:
    """One-line per-iteration shard-interconnect summary.

    Renders the local vs. remote feature-gather traffic of a sharded
    run (``shard_local_bytes`` / ``shard_remote_bytes`` — the bytes a
    multi-node deployment would keep on-node vs. send over the network)
    and the remote-feature-cache hit rate. ``"-"`` when the counters
    carry no shard keys (every non-sharded backend).
    """
    local = counts.get("shard_local_bytes", 0)
    remote = counts.get("shard_remote_bytes", 0)
    if not local and not remote:
        return "-"
    iters = max(int(iterations), 1)
    parts = [f"local {local / iters / 1e6:.2f} MB/it",
             f"remote {remote / iters / 1e6:.2f} MB/it"]
    hits = counts.get("remote_cache_hits", 0)
    misses = counts.get("remote_cache_misses", 0)
    if hits or misses:
        parts.append(f"cache {hits}/{hits + misses} hits")
    return " | ".join(parts)


#: The process-wide accumulator every kernel dispatch reports into.
COUNTERS = KernelCounters()

# Session-scoped sinks: thread id -> tuple of enlisted counter bags.
# Values are immutable tuples replaced wholesale under the lock, so the
# hot-path read in :func:`record` needs no synchronization.
_sinks_lock = threading.Lock()
_sinks: dict[int, tuple[KernelCounters, ...]] = {}


def enlist_thread(counters: KernelCounters) -> None:
    """Enlist ``counters`` as a sink for every :func:`record` call made
    from the *current* thread (stackable; prefer
    :func:`scoped_counters`)."""
    tid = threading.get_ident()
    with _sinks_lock:
        _sinks[tid] = _sinks.get(tid, ()) + (counters,)


def delist_thread(counters: KernelCounters) -> None:
    """Remove one enlistment of ``counters`` for the current thread."""
    tid = threading.get_ident()
    with _sinks_lock:
        have = list(_sinks.get(tid, ()))
        if counters in have:
            have.reverse()
            have.remove(counters)
            have.reverse()
        if have:
            _sinks[tid] = tuple(have)
        else:
            _sinks.pop(tid, None)


@contextmanager
def scoped_counters(counters: KernelCounters):
    """Route this thread's kernel traffic into ``counters`` (on top of
    the process-wide :data:`COUNTERS`) for the duration of the block.

    Each run/stage thread of a session enters this around its work
    loop, giving the session an isolated ``kernel_stats`` view even
    when other sessions dispatch concurrently in the same process.
    """
    enlist_thread(counters)
    try:
        yield counters
    finally:
        delist_thread(counters)


def record(**deltas: int) -> None:
    """Accumulate kernel-dispatch deltas into the process-wide
    :data:`COUNTERS` *and* every counter bag the calling thread is
    enlisted into — the single chokepoint the dispatchers call."""
    COUNTERS.add(**deltas)
    for sink in _sinks.get(threading.get_ident(), ()):
        sink.add(**deltas)
