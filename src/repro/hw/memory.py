"""Device/host memory capacity accounting.

HyScale-GNN's core motivation (paper §I) is that device memory (16-64 GB)
cannot hold large-graph feature matrices (MAG240M: 202 GB), so the graph
must live in CPU memory. :class:`MemoryPool` models exactly that
constraint: named allocations against a fixed capacity, raising
:class:`repro.errors.CapacityError` on overflow. The PaGraph baseline uses
it to size its feature cache; tests use it to verify the paper's
"papers100M does not fit on a GPU" premise quantitatively.
"""

from __future__ import annotations

from ..errors import CapacityError, DeviceError


class MemoryPool:
    """Byte-granular allocator model (no addresses, just budgets)."""

    def __init__(self, capacity_bytes: int, name: str = "mem") -> None:
        if capacity_bytes <= 0:
            raise DeviceError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self.name = name
        self._allocs: dict[str, int] = {}

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocs.values())

    @property
    def free(self) -> int:
        """Bytes remaining."""
        return self.capacity - self.used

    def alloc(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``label``.

        Raises
        ------
        CapacityError
            If the pool cannot hold the allocation.
        DeviceError
            If the label is already in use.
        """
        if nbytes < 0:
            raise DeviceError("nbytes must be non-negative")
        if label in self._allocs:
            raise DeviceError(f"label {label!r} already allocated")
        if nbytes > self.free:
            raise CapacityError(
                f"{self.name}: cannot allocate {nbytes / 1e9:.2f} GB "
                f"({self.free / 1e9:.2f} GB free of "
                f"{self.capacity / 1e9:.2f} GB)")
        self._allocs[label] = int(nbytes)

    def resize(self, label: str, nbytes: int) -> None:
        """Change an existing allocation's size."""
        if label not in self._allocs:
            raise DeviceError(f"unknown label {label!r}")
        old = self._allocs.pop(label)
        try:
            self.alloc(label, nbytes)
        except CapacityError:
            self._allocs[label] = old
            raise

    def release(self, label: str) -> int:
        """Free an allocation; returns the bytes released."""
        if label not in self._allocs:
            raise DeviceError(f"unknown label {label!r}")
        return self._allocs.pop(label)

    def fits(self, nbytes: int) -> bool:
        """Would an allocation of ``nbytes`` succeed right now?"""
        return 0 <= nbytes <= self.free

    def allocations(self) -> dict[str, int]:
        """Snapshot of current allocations."""
        return dict(self._allocs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MemoryPool({self.name}: {self.used / 1e9:.2f}/"
                f"{self.capacity / 1e9:.2f} GB used)")
