"""Hardware models: device specs, kernel cost models, memory, topology.

This package is the reproduction's substitute for the physical testbed
(paper Table II: dual EPYC 7763 + 4× A5000 or 4× U250). Device behaviour
is modelled mechanistically — bytes moved and MACs executed are counted
from the *actual* mini-batch structure, then divided by spec'd bandwidths
and throughputs — so orderings and crossovers in the benchmarks emerge
from the same mechanisms the paper describes rather than being hardcoded.
"""

from .specs import (
    AMD_EPYC_7763,
    LINK_NETWORK_100G,
    LINK_PCIE3_X16,
    LINK_PCIE4_X16,
    NVIDIA_A5000,
    NVIDIA_P100,
    NVIDIA_T4,
    NVIDIA_V100,
    XEON_E5_2690,
    XEON_PLATINUM_8163,
    XILINX_U250,
    DeviceSpec,
    LinkSpec,
)
from .topology import (
    PlatformSpec,
    distdgl_node,
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
    p3_node,
    pagraph_node,
)
from .kernels import (
    CPUKernelModel,
    FPGAKernelModel,
    GPUKernelModel,
    PropagationBreakdown,
    fpga_resource_utilization,
    kernel_model_for,
)
from .memory import MemoryPool

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "AMD_EPYC_7763",
    "NVIDIA_A5000",
    "XILINX_U250",
    "NVIDIA_V100",
    "NVIDIA_P100",
    "NVIDIA_T4",
    "XEON_PLATINUM_8163",
    "XEON_E5_2690",
    "LINK_PCIE3_X16",
    "LINK_PCIE4_X16",
    "LINK_NETWORK_100G",
    "PlatformSpec",
    "hyscale_cpu_gpu_platform",
    "hyscale_cpu_fpga_platform",
    "pagraph_node",
    "p3_node",
    "distdgl_node",
    "CPUKernelModel",
    "GPUKernelModel",
    "FPGAKernelModel",
    "PropagationBreakdown",
    "kernel_model_for",
    "fpga_resource_utilization",
    "MemoryPool",
]
