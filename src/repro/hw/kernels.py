"""Kernel cost models: GNN propagation time per device kind.

Implements the per-trainer term of the paper's performance model (Eq. 10):

    T_trainer = Σ_l ⊕(t_agg^l, t_upd^l)            (forward)
              + t_upd^1 + Σ_{l≥2} ⊕(t_agg^l, t_upd^l)   (backward)

with ⊕ = max for devices whose aggregate/update stages are pipelined
(FPGA; paper §V) and ⊕ = + otherwise. The layer-1 aggregation backward is
omitted because input-feature gradients are never needed — exactly the
structure of Eq. 10.

The three concrete models charge different traffic for the *same* batch:

* :class:`CPUKernelModel` / :class:`GPUKernelModel` — aggregation reads
  ``|E^l| × f_in`` message floats, multiplied by the device's
  ``gather_inefficiency`` (cache-line waste + PyG-style materialized edge
  tensors), plus the aggregation output write; the dense update pays a
  spill round-trip through device memory when ``intermediate_spill``.
* :class:`FPGAKernelModel` — the §IV-C design: layer-1 input features are
  streamed from device DDR exactly once (``|V^0| × f^0``; the Feature
  Duplicator makes reuse free), deeper layers stay on chip, only the final
  embedding is written back, and the scatter-gather array processes
  ``n_pes × vec_lanes`` feature elements per cycle.

Every model also reports total DDR bytes and MACs so benches can show *why*
a device wins (paper §VI-E1's explanation), and
:func:`fpga_resource_utilization` provides the mechanistic resource model
behind Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import S_FEAT_BYTES
from ..errors import ConfigError, DeviceError
from ..sampling.base import MiniBatchStats
from .specs import DeviceSpec


@dataclass(frozen=True)
class PropagationBreakdown:
    """Per-layer and total propagation costs for one mini-batch."""

    aggregate_s: tuple[float, ...]   # t_agg^l, l = 1..L
    update_s: tuple[float, ...]      # t_upd^l, l = 1..L
    forward_s: float
    backward_s: float
    ddr_bytes: int
    macs: int
    overhead_s: float = 0.0          # framework / dispatch fixed cost

    @property
    def total_s(self) -> float:
        """T_trainer for this batch (including software-stack overhead)."""
        return self.forward_s + self.backward_s + self.overhead_s


def _update_in_dim(model: str, f_in: int) -> int:
    """Input width of the dense update (SAGE concatenates self features)."""
    return 2 * f_in if model == "sage" else f_in


def _check_args(stats: MiniBatchStats, dims: Sequence[int],
                model: str) -> None:
    if model not in ("gcn", "sage"):
        raise ConfigError(f"unknown model {model!r}")
    if len(dims) != stats.num_layers + 1:
        raise ConfigError(
            f"dims has {len(dims)} entries but batch has "
            f"{stats.num_layers} layers (need L+1)")
    if dims[0] != stats.feature_dim:
        raise ConfigError("dims[0] must equal the batch feature_dim")


class _ProcessorKernelModel:
    """Shared CPU/GPU cost model (they differ only in their spec knobs)."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec

    # -- per-layer terms -------------------------------------------------
    def _t_aggregate(self, num_edges: int, num_dst: int,
                     f_in: int) -> tuple[float, int]:
        """Seconds and bytes for one layer's aggregation."""
        s = self.spec
        read = num_edges * f_in * S_FEAT_BYTES * s.gather_inefficiency
        write = num_dst * f_in * S_FEAT_BYTES
        traffic = read + write
        return traffic / s.mem_bandwidth, int(traffic)

    def _t_update(self, num_dst: int, f_in_upd: int,
                  f_out: int) -> tuple[float, int, int]:
        """Seconds, MACs and spill bytes for one layer's dense update."""
        s = self.spec
        macs = num_dst * f_in_upd * f_out
        compute = 2.0 * macs / (s.peak_flops * s.mlp_efficiency)
        spill_bytes = 0
        if s.intermediate_spill:
            spill_bytes = num_dst * (f_in_upd + f_out) * S_FEAT_BYTES
            compute = max(compute, spill_bytes / s.mem_bandwidth)
        return compute, int(macs), int(spill_bytes)

    # -- public ------------------------------------------------------------
    def propagation(self, stats: MiniBatchStats, dims: Sequence[int],
                    model: str) -> PropagationBreakdown:
        """T_trainer breakdown for one mini-batch (paper Eq. 10-12)."""
        _check_args(stats, dims, model)
        agg_times: list[float] = []
        upd_times: list[float] = []
        ddr = 0
        macs_total = 0
        L = stats.num_layers
        for l in range(1, L + 1):
            E_l = stats.num_edges_per_layer[l - 1]
            V_l = stats.num_nodes_per_layer[l]
            f_in, f_out = dims[l - 1], dims[l]
            t_a, bytes_a = self._t_aggregate(E_l, V_l, f_in)
            t_u, m_u, bytes_u = self._t_update(
                V_l, _update_in_dim(model, f_in), f_out)
            agg_times.append(t_a)
            upd_times.append(t_u)
            ddr += bytes_a + bytes_u
            macs_total += m_u

        combine = max if self.spec.pipelined_agg_update else \
            (lambda a, u: a + u)
        forward = sum(combine(a, u) for a, u in zip(agg_times, upd_times))
        backward = upd_times[0] + sum(
            combine(a, u) for a, u in zip(agg_times[1:], upd_times[1:]))
        # Backward traffic/compute mirror forward (paper §II-B).
        ddr = ddr * 2
        macs_total = macs_total * 2
        return PropagationBreakdown(
            aggregate_s=tuple(agg_times), update_s=tuple(upd_times),
            forward_s=forward, backward_s=backward,
            ddr_bytes=int(ddr), macs=int(macs_total),
            overhead_s=self.spec.framework_overhead_s)


class CPUKernelModel(_ProcessorKernelModel):
    """Trainer on the host CPUs (fetches from CPU memory, paper §V).

    ``num_threads`` scales the compute throughput and the memory-bandwidth
    share linearly up to the socket's limits; the DRM engine's
    ``balance_thread`` move acts through this parameter.
    """

    def __init__(self, spec: DeviceSpec, num_threads: int = 64,
                 max_threads: int = 128) -> None:
        if spec.kind != "cpu":
            raise DeviceError("CPUKernelModel requires a cpu spec")
        if not 1 <= num_threads <= max_threads:
            raise DeviceError("num_threads out of range")
        super().__init__(spec)
        self.num_threads = num_threads
        self.max_threads = max_threads

    @property
    def _share(self) -> float:
        return self.num_threads / self.max_threads

    def _t_aggregate(self, num_edges: int, num_dst: int,
                     f_in: int) -> tuple[float, int]:
        t, b = super()._t_aggregate(num_edges, num_dst, f_in)
        return t / self._share, b

    def _t_update(self, num_dst: int, f_in_upd: int,
                  f_out: int) -> tuple[float, int, int]:
        t, m, b = super()._t_update(num_dst, f_in_upd, f_out)
        return t / self._share, m, b

    def with_threads(self, num_threads: int) -> "CPUKernelModel":
        """New model with a different thread allocation."""
        return CPUKernelModel(self.spec, num_threads, self.max_threads)


class GPUKernelModel(_ProcessorKernelModel):
    """Trainer on a GPU executing PyG-style op-by-op kernels."""

    def __init__(self, spec: DeviceSpec) -> None:
        if spec.kind != "gpu":
            raise DeviceError("GPUKernelModel requires a gpu spec")
        super().__init__(spec)

    def kernel_launches(self, num_layers: int) -> int:
        """Kernel launches per batch: ~6 ops/layer forward + backward.

        (gather, message, scatter, gemm, bias, relu) — used by the event
        simulator's launch-overhead charge.
        """
        return 6 * num_layers * 2


class FPGAKernelModel:
    """The paper's custom FPGA kernel (§IV-C, Fig. 6, Table IV).

    Parameters
    ----------
    n_pes:
        Scatter-gather PE pairs (Table IV: n = 8).
    m_macs:
        MAC units in the systolic update array (Table IV: m = 2048).
    vec_lanes:
        Feature elements each PE consumes per cycle (512-bit bus / fp32).
    """

    def __init__(self, spec: DeviceSpec, n_pes: int = 8,
                 m_macs: int = 2048, vec_lanes: int = 16) -> None:
        if spec.kind != "fpga":
            raise DeviceError("FPGAKernelModel requires an fpga spec")
        if min(n_pes, m_macs, vec_lanes) <= 0:
            raise DeviceError("parallelism parameters must be positive")
        self.spec = spec
        self.n_pes = n_pes
        self.m_macs = m_macs
        self.vec_lanes = vec_lanes

    # -- per-layer terms -------------------------------------------------
    def _t_aggregate(self, num_edges: int, num_src: int, f_in: int,
                     from_ddr: bool) -> tuple[float, int]:
        """max(edge-stream compute, DDR feature streaming).

        ``from_ddr`` is True only for layer 1: deeper layers read the
        previous update's output from on-chip buffers.
        """
        s = self.spec
        elems_per_s = self.n_pes * self.vec_lanes * s.frequency_ghz * 1e9
        compute = num_edges * f_in / elems_per_s
        traffic = 0
        if from_ddr:
            # Feature Duplicator: each distinct source feature read once.
            traffic = num_src * f_in * S_FEAT_BYTES
        return max(compute, traffic / s.mem_bandwidth), int(traffic)

    def _t_update(self, num_dst: int, f_in_upd: int, f_out: int,
                  write_out: bool) -> tuple[float, int, int]:
        """Systolic-array GEMM; only the final layer writes to DDR."""
        s = self.spec
        macs = num_dst * f_in_upd * f_out
        macs_per_s = self.m_macs * s.frequency_ghz * 1e9 * s.mlp_efficiency
        compute = macs / macs_per_s
        out_bytes = num_dst * f_out * S_FEAT_BYTES if write_out else 0
        compute = max(compute, out_bytes / s.mem_bandwidth)
        return compute, int(macs), int(out_bytes)

    # -- public ------------------------------------------------------------
    def propagation(self, stats: MiniBatchStats, dims: Sequence[int],
                    model: str) -> PropagationBreakdown:
        """T_trainer with ⊕ = max (pipelined aggregate/update)."""
        _check_args(stats, dims, model)
        agg_times: list[float] = []
        upd_times: list[float] = []
        ddr = 0
        macs_total = 0
        L = stats.num_layers
        for l in range(1, L + 1):
            E_l = stats.num_edges_per_layer[l - 1]
            V_lm1 = stats.num_nodes_per_layer[l - 1]
            V_l = stats.num_nodes_per_layer[l]
            f_in, f_out = dims[l - 1], dims[l]
            t_a, bytes_a = self._t_aggregate(E_l, V_lm1, f_in,
                                             from_ddr=(l == 1))
            t_u, m_u, bytes_u = self._t_update(
                V_l, _update_in_dim(model, f_in), f_out,
                write_out=(l == L))
            agg_times.append(t_a)
            upd_times.append(t_u)
            ddr += bytes_a + bytes_u
            macs_total += m_u

        forward = sum(max(a, u) for a, u in zip(agg_times, upd_times))
        backward = upd_times[0] + sum(
            max(a, u) for a, u in zip(agg_times[1:], upd_times[1:]))
        ddr = ddr * 2
        macs_total = macs_total * 2
        return PropagationBreakdown(
            aggregate_s=tuple(agg_times), update_s=tuple(upd_times),
            forward_s=forward, backward_s=backward,
            ddr_bytes=int(ddr), macs=int(macs_total),
            overhead_s=self.spec.framework_overhead_s)

    def kernel_launches(self, num_layers: int) -> int:
        """One enqueueTask per direction — the whole pass is one kernel."""
        return 2


def kernel_model_for(spec: DeviceSpec, **kwargs):
    """Factory: pick the kernel model class matching the device kind."""
    if spec.kind == "cpu":
        return CPUKernelModel(spec, **kwargs)
    if spec.kind == "gpu":
        return GPUKernelModel(spec, **kwargs)
    if spec.kind == "fpga":
        return FPGAKernelModel(spec, **kwargs)
    raise DeviceError(f"no kernel model for kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# FPGA resource model (Table IV)
# ---------------------------------------------------------------------------

#: Alveo U250 available resources.
U250_LUTS = 1_728_000
U250_DSPS = 12_288
U250_URAM = 1_280
U250_BRAM = 2_688

#: Per-unit costs. Calibrated so (n=8, m=2048) reproduces Table IV's
#: 72% LUT / 90% DSP / 48% URAM / 40% BRAM: an fp32 MAC costs ~5.4 DSPs
#: and ~360 LUTs; each scatter-gather PE pair costs ~27k LUTs plus URAM
#: feature buffers; the shell (PCIe/DDR controllers) is fixed overhead.
_SHELL_LUTS = 290_000
_LUTS_PER_MAC = 360
_LUTS_PER_PE = 27_000
_DSPS_PER_MAC = 5.4
_DSPS_PER_PE = 16
_URAM_PER_PE = 72        # per-PE feature store (Feature Duplicator copies)
_URAM_SHELL = 38
_BRAM_PER_PE = 56        # edge FIFOs + routing network buffers
_BRAM_WEIGHTS = 512      # weight buffer for the systolic array
_BRAM_SHELL = 114


@dataclass(frozen=True)
class FPGAUtilization:
    """Fractional resource utilization (paper Table IV row)."""

    luts: float
    dsps: float
    uram: float
    bram: float

    def feasible(self) -> bool:
        """Does the design fit the device?"""
        return max(self.luts, self.dsps, self.uram, self.bram) <= 1.0


def fpga_resource_utilization(n_pes: int = 8,
                              m_macs: int = 2048) -> FPGAUtilization:
    """Mechanistic U250 resource model for a (n, m) kernel configuration.

    At the paper's design point (8, 2048) this reproduces Table IV within
    a couple of percent; other points let benches explore the scaling
    trade-off (double m ⇒ DSPs exhaust first).
    """
    if n_pes <= 0 or m_macs <= 0:
        raise DeviceError("n_pes and m_macs must be positive")
    luts = _SHELL_LUTS + m_macs * _LUTS_PER_MAC + n_pes * _LUTS_PER_PE
    dsps = m_macs * _DSPS_PER_MAC + n_pes * _DSPS_PER_PE
    uram = _URAM_SHELL + n_pes * _URAM_PER_PE
    bram = _BRAM_SHELL + _BRAM_WEIGHTS + n_pes * _BRAM_PER_PE
    return FPGAUtilization(
        luts=luts / U250_LUTS,
        dsps=dsps / U250_DSPS,
        uram=uram / U250_URAM,
        bram=bram / U250_BRAM,
    )
