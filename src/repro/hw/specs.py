"""Device and link specifications.

The HyScale-GNN devices carry the exact Table II numbers; comparator
devices (Table V platforms) carry their public datasheet numbers. All
calibration constants are named fields documented here — see DESIGN.md §6.

Efficiency-knob semantics
-------------------------
``mlp_efficiency``
    Achievable fraction of ``peak_tflops`` on the dense feature-update
    GEMMs. Mini-batch GEMMs are small/skinny, so this sits well below 1.
``gather_inefficiency``
    Multiplier on the *ideal* aggregation traffic ``|E| × f × S_feat``.
    For GPUs running PyG-style execution this covers (a) cache-line waste
    on random source gathers and (b) the materialized edge tensors of the
    gather → message → scatter op sequence, each of which re-reads and
    re-writes E×f floats (mechanism per paper cite [33]). CPUs sit lower:
    the 256 MB L3 captures hub vertices.
``intermediate_spill``
    Whether aggregation results round-trip through device memory between
    the aggregate and update stages. True on CPU/GPU; False on FPGA, whose
    custom datapath keeps intermediates on chip (paper §IV-C: "only the
    final output is written back to the memory").
``pipelined_agg_update``
    Whether aggregate and update overlap within a layer — the ⊕ operator
    of paper Eq. 10: max when pipelined (FPGA), sum otherwise.
``kernel_launch_s``
    Per-kernel-launch host latency. Charged by the event simulator only
    (it is one of the two predicted-vs-actual gaps the paper names in
    §VI-C).
``pipeline_flush_frac``
    Fractional propagation-time overhead from draining the device's
    execution pipeline between batches — the second predicted-vs-actual
    gap the paper names in §VI-C (cite [32]). Largest on the FPGA's deep
    dataflow pipeline. Charged by the event simulator only.
``framework_overhead_s``
    Fixed software-stack cost per training pass (forward + backward) of
    one mini-batch. For GPU trainers this models the PyTorch/PyG op
    dispatch stack (~10² small kernel launches and autograd bookkeeping
    per 2-layer batch) — the well-documented reason GPU utilization is
    low on neighbor-sampled mini-batches. The FPGA pass is two
    ``enqueueTask`` calls on a fused kernel, so its overhead is an order
    of magnitude lower; HyScale's CPU trainer is custom pthread/MKL code,
    in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """One processor or accelerator model.

    Bandwidth figures are *effective* burst bandwidths (paper §V note), in
    GB/s; ``peak_tflops`` is single-precision peak.
    """

    name: str
    kind: str                      # "cpu" | "gpu" | "fpga"
    peak_tflops: float
    mem_bandwidth_gbps: float      # local memory (HBM/DDR/host-RAM share)
    frequency_ghz: float
    onchip_memory_mb: float        # L3 / L2 / URAM+BRAM
    device_memory_gb: float        # attached DRAM capacity
    mlp_efficiency: float
    gather_inefficiency: float
    intermediate_spill: bool
    pipelined_agg_update: bool
    kernel_launch_s: float
    framework_overhead_s: float = 0.0
    pipeline_flush_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu", "fpga"):
            raise ConfigError(f"unknown device kind {self.kind!r}")
        if min(self.peak_tflops, self.mem_bandwidth_gbps,
               self.frequency_ghz) <= 0:
            raise ConfigError("spec rates must be positive")
        if not 0.0 < self.mlp_efficiency <= 1.0:
            raise ConfigError("mlp_efficiency must be in (0, 1]")
        if self.gather_inefficiency < 1.0:
            raise ConfigError("gather_inefficiency must be >= 1")

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s."""
        return self.peak_tflops * 1e12

    @property
    def mem_bandwidth(self) -> float:
        """Effective local memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect (PCIe slot or node-to-node network).

    ``duplex_derate`` models the throughput loss when both directions
    are active simultaneously (host-to-device feature pushes overlapping
    device-to-host gradient pulls under pipelining; DMA-engine and
    root-complex contention). The analytic performance model (paper
    Eq. 6-13) ignores it — it is one of the simulated-actual effects
    behind the Fig. 8 prediction error.
    """

    name: str
    bandwidth_gbps: float    # effective GB/s
    latency_s: float         # per-transfer fixed cost
    duplex_derate: float = 0.10

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ConfigError("latency must be non-negative")
        if not 0.0 <= self.duplex_derate < 1.0:
            raise ConfigError("duplex_derate must be in [0, 1)")

    @property
    def bandwidth(self) -> float:
        """Effective bandwidth in bytes/s."""
        return self.bandwidth_gbps * 1e9

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ConfigError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth


# ---------------------------------------------------------------------------
# HyScale-GNN testbed devices (paper Table II)
# ---------------------------------------------------------------------------

#: One socket of the dual-socket host. Table II lists 3.6 TFLOPS per socket
#: (the intro's 7.2 TFLOPS is the dual-socket figure) and 205 GB/s of DDR4
#: bandwidth per socket.
AMD_EPYC_7763 = DeviceSpec(
    name="AMD EPYC 7763",
    kind="cpu",
    peak_tflops=3.6,
    mem_bandwidth_gbps=205.0,
    frequency_ghz=2.45,
    onchip_memory_mb=256.0,
    device_memory_gb=1024.0,          # host RAM per socket (2 TB node)
    mlp_efficiency=0.40,
    gather_inefficiency=3.0,
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=0.0,              # CPU tasks have no launch latency
    framework_overhead_s=0.5e-3,      # custom pthread/MKL trainer
)

NVIDIA_A5000 = DeviceSpec(
    name="NVIDIA RTX A5000",
    kind="gpu",
    peak_tflops=27.8,
    mem_bandwidth_gbps=768.0,
    frequency_ghz=2.0,
    onchip_memory_mb=6.0,
    device_memory_gb=24.0,
    mlp_efficiency=0.35,
    gather_inefficiency=12.0,         # fwd gather/scatter + atomic-heavy bwd
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=30e-6,
    framework_overhead_s=8.0e-3,      # PyTorch/PyG dispatch per batch
    pipeline_flush_frac=0.03,         # per-kernel tail effects
)

XILINX_U250 = DeviceSpec(
    name="Xilinx Alveo U250",
    kind="fpga",
    peak_tflops=0.6,
    mem_bandwidth_gbps=77.0,
    frequency_ghz=0.30,
    onchip_memory_mb=54.0,
    device_memory_gb=64.0,
    mlp_efficiency=0.90,              # systolic array utilization
    gather_inefficiency=1.0,          # Feature Duplicator: each read once
    intermediate_spill=False,
    pipelined_agg_update=True,
    kernel_launch_s=150e-6,           # OpenCL enqueueTask overhead
    framework_overhead_s=0.3e-3,      # two enqueueTask + DMA setup
    pipeline_flush_frac=0.08,         # deep dataflow pipeline drain
)

# ---------------------------------------------------------------------------
# Comparator devices (paper Table V platforms)
# ---------------------------------------------------------------------------

NVIDIA_V100 = DeviceSpec(
    name="NVIDIA V100",
    kind="gpu",
    peak_tflops=15.7,
    mem_bandwidth_gbps=900.0,
    frequency_ghz=1.53,
    onchip_memory_mb=6.0,
    device_memory_gb=16.0,
    mlp_efficiency=0.35,
    gather_inefficiency=12.0,         # fwd gather/scatter + atomic-heavy bwd
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=30e-6,
    framework_overhead_s=8.0e-3,      # PyTorch/PyG dispatch per batch
    pipeline_flush_frac=0.03,         # per-kernel tail effects
)

NVIDIA_P100 = DeviceSpec(
    name="NVIDIA P100",
    kind="gpu",
    peak_tflops=9.3,
    mem_bandwidth_gbps=732.0,
    frequency_ghz=1.33,
    onchip_memory_mb=4.0,
    device_memory_gb=16.0,
    mlp_efficiency=0.35,
    gather_inefficiency=12.0,         # fwd gather/scatter + atomic-heavy bwd
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=30e-6,
    framework_overhead_s=8.0e-3,      # PyTorch/PyG dispatch per batch
    pipeline_flush_frac=0.03,         # per-kernel tail effects
)

NVIDIA_T4 = DeviceSpec(
    name="NVIDIA T4",
    kind="gpu",
    peak_tflops=8.1,
    mem_bandwidth_gbps=320.0,
    frequency_ghz=1.59,
    onchip_memory_mb=4.0,
    device_memory_gb=16.0,
    mlp_efficiency=0.35,
    gather_inefficiency=12.0,         # fwd gather/scatter + atomic-heavy bwd
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=30e-6,
    framework_overhead_s=8.0e-3,      # PyTorch/PyG dispatch per batch
    pipeline_flush_frac=0.03,         # per-kernel tail effects
)

XEON_PLATINUM_8163 = DeviceSpec(
    name="Intel Xeon Platinum 8163",
    kind="cpu",
    peak_tflops=1.9,
    mem_bandwidth_gbps=110.0,
    frequency_ghz=2.5,
    onchip_memory_mb=33.0,
    device_memory_gb=512.0,
    mlp_efficiency=0.40,
    gather_inefficiency=3.0,
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=0.0,
    framework_overhead_s=2.0e-3,      # DGL/PyTorch CPU stack
)

XEON_E5_2690 = DeviceSpec(
    name="Intel Xeon E5-2690",
    kind="cpu",
    peak_tflops=0.37,
    mem_bandwidth_gbps=60.0,
    frequency_ghz=2.9,
    onchip_memory_mb=20.0,
    device_memory_gb=256.0,
    mlp_efficiency=0.40,
    gather_inefficiency=3.0,
    intermediate_spill=True,
    pipelined_agg_update=False,
    kernel_launch_s=0.0,
    framework_overhead_s=2.0e-3,      # DGL/PyTorch CPU stack
)

# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------

#: PCIe 4.0 ×16 — the HyScale testbed. 16 GB/s is the effective burst
#: bandwidth (peak 31.5 GB/s); paper §V: "effective bandwidth ... as
#: opposed to the peak bandwidth".
LINK_PCIE4_X16 = LinkSpec(name="PCIe 4.0 x16", bandwidth_gbps=16.0,
                          latency_s=10e-6)

#: PCIe 3.0 ×16 — the PaGraph / P3 / DistDGL era platforms.
LINK_PCIE3_X16 = LinkSpec(name="PCIe 3.0 x16", bandwidth_gbps=10.0,
                          latency_s=10e-6)

#: 100 Gb Ethernet, effective ~10 GB/s (inter-node links of the
#: distributed comparators).
LINK_NETWORK_100G = LinkSpec(name="100GbE", bandwidth_gbps=10.0,
                             latency_s=30e-6)

#: Feature Loader DDR gather efficiency: row gathers from host memory
#: achieve a fraction of streaming bandwidth (feature rows are hundreds of
#: bytes, shorter than ideal DDR bursts).
LOADER_DDR_EFFICIENCY = 0.8
