"""Platform topology: sockets + accelerators + links (paper Fig. 2).

A :class:`PlatformSpec` describes one compute node: CPU sockets sharing a
host memory address space, accelerators each behind a PCIe link with their
own device memory. Factory functions build the paper's two testbeds and
the three comparator platforms of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from .specs import (
    AMD_EPYC_7763,
    LINK_NETWORK_100G,
    LINK_PCIE3_X16,
    LINK_PCIE4_X16,
    NVIDIA_A5000,
    NVIDIA_P100,
    NVIDIA_T4,
    NVIDIA_V100,
    XEON_E5_2690,
    XEON_PLATINUM_8163,
    XILINX_U250,
    DeviceSpec,
    LinkSpec,
)


@dataclass(frozen=True)
class PlatformSpec:
    """One compute node (optionally replicated into a cluster).

    Attributes
    ----------
    cpu / num_sockets:
        Host processor spec and socket count; host memory bandwidth
        aggregates across sockets (shared address space via the processor
        interconnect, paper §II-C).
    accelerator / num_accelerators:
        Accelerator spec and count; ``None`` for CPU-only nodes.
    pcie:
        The host-accelerator link (each accelerator has its own).
    network:
        Inter-node link; only used when ``num_nodes > 1``.
    num_nodes:
        Nodes in the cluster (1 for HyScale-GNN, 4 for P3, 8 for DistDGL).
    """

    name: str
    cpu: DeviceSpec
    num_sockets: int
    accelerator: DeviceSpec | None
    num_accelerators: int
    pcie: LinkSpec
    network: LinkSpec = LINK_NETWORK_100G
    num_nodes: int = 1

    def __post_init__(self) -> None:
        if self.num_sockets < 1:
            raise ConfigError("need at least one socket")
        if self.num_accelerators < 0:
            raise ConfigError("num_accelerators must be >= 0")
        if self.num_accelerators > 0 and self.accelerator is None:
            raise ConfigError("accelerator spec required")
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")

    # -- aggregates (per node) -------------------------------------------
    @property
    def host_mem_bandwidth(self) -> float:
        """Aggregate host DDR bandwidth in bytes/s (all sockets)."""
        return self.cpu.mem_bandwidth * self.num_sockets

    @property
    def cpu_peak_tflops(self) -> float:
        """Host compute across sockets."""
        return self.cpu.peak_tflops * self.num_sockets

    @property
    def accel_peak_tflops(self) -> float:
        """Accelerator compute across devices."""
        if self.accelerator is None:
            return 0.0
        return self.accelerator.peak_tflops * self.num_accelerators

    @property
    def total_peak_tflops(self) -> float:
        """Node peak (the Table VII normalization denominator), times
        ``num_nodes`` for clusters."""
        return (self.cpu_peak_tflops + self.accel_peak_tflops) * \
            self.num_nodes

    def with_accelerators(self, count: int) -> "PlatformSpec":
        """Same platform with a different accelerator count (Fig. 9
        scalability sweeps)."""
        return replace(self, num_accelerators=count)


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------

def hyscale_cpu_gpu_platform(num_gpus: int = 4) -> PlatformSpec:
    """The paper's CPU-GPU testbed: 2× EPYC 7763 + 4× RTX A5000."""
    return PlatformSpec(
        name=f"2xEPYC7763 + {num_gpus}xA5000",
        cpu=AMD_EPYC_7763, num_sockets=2,
        accelerator=NVIDIA_A5000, num_accelerators=num_gpus,
        pcie=LINK_PCIE4_X16)


def hyscale_cpu_fpga_platform(num_fpgas: int = 4) -> PlatformSpec:
    """The paper's CPU-FPGA testbed: 2× EPYC 7763 + 4× Alveo U250."""
    return PlatformSpec(
        name=f"2xEPYC7763 + {num_fpgas}xU250",
        cpu=AMD_EPYC_7763, num_sockets=2,
        accelerator=XILINX_U250, num_accelerators=num_fpgas,
        pcie=LINK_PCIE4_X16)


def pagraph_node() -> PlatformSpec:
    """PaGraph's platform (Table V): 2× Xeon 8163 + 8× V100, one node."""
    return PlatformSpec(
        name="PaGraph: 2xXeon8163 + 8xV100",
        cpu=XEON_PLATINUM_8163, num_sockets=2,
        accelerator=NVIDIA_V100, num_accelerators=8,
        pcie=LINK_PCIE3_X16)


def p3_node() -> PlatformSpec:
    """P3's platform (Table V): 4 nodes × (1× Xeon E5-2690 + 4× P100)."""
    return PlatformSpec(
        name="P3: 4x(Xeon E5-2690 + 4xP100)",
        cpu=XEON_E5_2690, num_sockets=1,
        accelerator=NVIDIA_P100, num_accelerators=4,
        pcie=LINK_PCIE3_X16,
        num_nodes=4)


def distdgl_node() -> PlatformSpec:
    """DistDGLv2's platform (Table V): 8 nodes × (96 vCPU + 8× T4).

    96 vCPUs ≈ 2 sockets of a 24-core/48-thread Xeon; we model each node's
    host as 2× Xeon 8163-class sockets.
    """
    return PlatformSpec(
        name="DistDGLv2: 8x(96vCPU + 8xT4)",
        cpu=XEON_PLATINUM_8163, num_sockets=2,
        accelerator=NVIDIA_T4, num_accelerators=8,
        pcie=LINK_PCIE3_X16,
        num_nodes=8)
