"""Pipeline schedule simulator.

Models the four-stage HyScale-GNN iteration pipeline (Sampling → Feature
Loading → Data Transfer → GNN Propagation, paper Fig. 7) as a linear
pipeline with:

* **resource serialization** — a stage processes one iteration at a time;
* **data dependencies** — iteration ``i`` of stage ``k`` needs iteration
  ``i`` of stage ``k-1``;
* **bounded prefetch buffers** — stage ``k`` may run at most ``depth``
  iterations ahead of stage ``k+1`` (the two-stage feature prefetch keeps
  ``depth`` mini-batches in flight, paper §IV-B);
* **serialized mode** — with prefetching disabled, iteration ``i`` cannot
  begin any stage until iteration ``i-1`` fully completes (the ablation
  baseline of Fig. 11).

The recurrence is solved directly (no event queue needed for a linear
pipeline), which keeps epoch-scale simulations O(iterations × stages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from .trace import Span, Timeline


@dataclass(frozen=True)
class StageSchedule:
    """Computed schedule for one stage: per-iteration start/finish."""

    name: str
    start: np.ndarray
    finish: np.ndarray


class PipelineSimulator:
    """Solve the pipeline schedule for given per-iteration durations.

    Parameters
    ----------
    stage_names:
        Pipeline stages in order.
    prefetch_depth:
        Max iterations a stage may run ahead of its successor. ``0``
        disables pipelining entirely (strict serialization).
    """

    def __init__(self, stage_names: Sequence[str],
                 prefetch_depth: int = 2) -> None:
        if not stage_names:
            raise SimulationError("need at least one stage")
        if prefetch_depth < 0:
            raise SimulationError("prefetch_depth must be >= 0")
        self.stage_names = list(stage_names)
        self.prefetch_depth = prefetch_depth

    def run(self, durations: Sequence[Sequence[float]]) -> Timeline:
        """Schedule ``durations[i][k]`` = duration of stage k, iteration i.

        Returns a :class:`Timeline` with one span per (iteration, stage).
        """
        n_iter = len(durations)
        n_stage = len(self.stage_names)
        if n_iter == 0:
            return Timeline()
        dur = np.asarray(durations, dtype=np.float64)
        if dur.shape != (n_iter, n_stage):
            raise SimulationError(
                f"durations must be ({n_iter}, {n_stage}), got {dur.shape}")
        if (dur < 0).any():
            raise SimulationError("durations must be non-negative")

        start = np.zeros((n_iter, n_stage))
        finish = np.zeros((n_iter, n_stage))
        depth = self.prefetch_depth
        for i in range(n_iter):
            for k in range(n_stage):
                t = 0.0
                if k > 0:
                    t = max(t, finish[i, k - 1])       # data dependency
                if i > 0:
                    t = max(t, finish[i - 1, k])       # stage busy
                if depth == 0:
                    # Serialized: wait for the previous iteration to fully
                    # drain before iteration i touches any stage.
                    if i > 0:
                        t = max(t, finish[i - 1, n_stage - 1])
                else:
                    # Bounded look-ahead: stage k may not start iteration
                    # i before its successor has begun iteration i-depth.
                    if k < n_stage - 1 and i - depth >= 0:
                        t = max(t, start[i - depth, k + 1])
                start[i, k] = t
                finish[i, k] = t + dur[i, k]

        timeline = Timeline()
        for i in range(n_iter):
            for k in range(n_stage):
                timeline.add(Span(stage=self.stage_names[k], iteration=i,
                                  start=float(start[i, k]),
                                  end=float(finish[i, k])))
        return timeline

    def makespan(self, durations: Sequence[Sequence[float]]) -> float:
        """Total time to drain the pipeline (epoch time contribution)."""
        return self.run(durations).makespan

    def schedules(self, durations: Sequence[Sequence[float]]
                  ) -> list[StageSchedule]:
        """Per-stage start/finish arrays (used by tests)."""
        timeline = self.run(durations)
        out = []
        for k, name in enumerate(self.stage_names):
            spans = sorted((s for s in timeline.spans if s.stage == name),
                           key=lambda s: s.iteration)
            out.append(StageSchedule(
                name=name,
                start=np.array([s.start for s in spans]),
                finish=np.array([s.end for s in spans])))
        return out
