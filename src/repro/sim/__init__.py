"""Discrete-event pipeline simulation and timeline tracing.

The runtime computes per-stage durations for every iteration from the
*realized* mini-batches (via the :mod:`repro.hw` cost models) and feeds
them to :class:`PipelineSimulator`, which resolves resource serialization,
data dependencies, and prefetch-buffer capacity into a schedule — virtual
start/finish times per (iteration, stage). The paper's "actual" timings
(Fig. 8) come from this simulator; its "predicted" timings come from the
closed-form model in :mod:`repro.perfmodel`, so the predicted-vs-actual
gap arises the same way it does in the paper (launch overheads, pipeline
fill/flush, per-batch workload variation).
"""

from .clock import VirtualClock
from .engine import PipelineSimulator, StageSchedule
from .trace import Span, Timeline, render_gantt

__all__ = [
    "VirtualClock",
    "PipelineSimulator",
    "StageSchedule",
    "Span",
    "Timeline",
    "render_gantt",
]
