"""Timeline traces: spans, per-stage aggregation, ASCII Gantt rendering.

A :class:`Span` is one (iteration, stage) execution interval in virtual
time. :class:`Timeline` aggregates spans into the statistics the DRM
engine and the benches consume (per-stage busy time, bottleneck stage,
makespan) and can render a text Gantt chart for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError


@dataclass(frozen=True)
class Span:
    """One stage execution of one iteration."""

    stage: str
    iteration: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Ordered collection of spans with aggregate queries."""

    def __init__(self, spans: Iterable[Span] = ()) -> None:
        self.spans: list[Span] = list(spans)

    def add(self, span: Span) -> None:
        """Append one span."""
        self.spans.append(span)

    @property
    def makespan(self) -> float:
        """End of the last span (total virtual time)."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans)

    def stage_busy_time(self) -> dict[str, float]:
        """Total busy seconds per stage (sums spans; overlap within a
        stage is the caller's modelling choice)."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.stage] = out.get(s.stage, 0.0) + s.duration
        return out

    def bottleneck_stage(self) -> str | None:
        """Stage with the largest total busy time."""
        busy = self.stage_busy_time()
        if not busy:
            return None
        return max(busy, key=busy.get)

    def iteration_spans(self, iteration: int) -> list[Span]:
        """All spans belonging to one iteration."""
        return [s for s in self.spans if s.iteration == iteration]

    def stage_durations(self, stage: str) -> list[float]:
        """Durations of every execution of one stage, iteration order."""
        spans = sorted((s for s in self.spans if s.stage == stage),
                       key=lambda s: s.iteration)
        return [s.duration for s in spans]


def render_gantt(timeline: Timeline, width: int = 78,
                 max_rows: int = 40) -> str:
    """ASCII Gantt chart of a timeline (one row per stage×iteration).

    Used by the examples to visualize how Two-stage Feature Prefetching
    overlaps the four pipeline stages (paper Fig. 7).
    """
    if not timeline.spans:
        return "(empty timeline)"
    total = timeline.makespan
    if total <= 0:
        return "(zero-length timeline)"
    stages: list[str] = []
    for s in timeline.spans:
        if s.stage not in stages:
            stages.append(s.stage)
    label_w = max(len(st) for st in stages) + 8
    bar_w = max(10, width - label_w - 2)
    lines = [f"{'':{label_w}} 0{'.' * (bar_w - 8)}{total * 1e3:8.2f}ms"]
    shown = 0
    for span in sorted(timeline.spans, key=lambda s: (s.iteration,
                                                      s.start)):
        if shown >= max_rows:
            lines.append(f"... ({len(timeline.spans) - shown} more spans)")
            break
        begin = int(round(span.start / total * (bar_w - 1)))
        end = max(begin + 1, int(round(span.end / total * (bar_w - 1))))
        bar = " " * begin + "#" * (end - begin)
        label = f"[{span.iteration:3d}] {span.stage}"
        lines.append(f"{label:{label_w}} |{bar:{bar_w}}|")
        shown += 1
    return "\n".join(lines)
