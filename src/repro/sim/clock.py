"""Virtual clock for simulated time.

All benchmark timing in this library is *virtual* (derived from the
hardware cost models), never wall-clock — the host running the
reproduction is not the machine being modelled. :class:`VirtualClock` is a
tiny monotonic accumulator shared by components that advance simulated
time.
"""

from __future__ import annotations

from ..errors import SimulationError


class VirtualClock:
    """Monotonic simulated-time counter (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError("clock cannot start negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (no-op if in past)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self) -> None:
        """Restart at zero."""
        self._now = 0.0
