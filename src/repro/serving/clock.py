"""A hand-cranked monotonic clock for deterministic serving tests.

Every time-dependent piece of the serving plane — the micro-batcher's
flush deadlines, the credit buckets' refill, latency stamping — takes
an injectable ``clock`` callable precisely so tests and the
conformance kit can drive it with this instead of
:func:`time.monotonic`: deadlines then fire exactly when the test
advances the clock past them, and hypothesis shrinking stays
reproducible.
"""

from __future__ import annotations

from ..errors import ConfigError


class VirtualClock:
    """Monotonic time under test control: ``clock()`` reads,
    ``advance`` moves forward (never back)."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ConfigError("a monotonic clock cannot run backwards")
        self.t += dt

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(t={self.t!r})"
