"""The online serving plane: micro-batched low-latency inference.

Training answers "how fast can one epoch go"; this package answers the
*other* operational question the paper's shared stack raises: how well
does the same sampler → gather → quantize → kernel pipeline serve an
unbounded stream of small inference requests under a latency budget?
(HyScale-GNN's host-side stack is oblivious to whether the consumer of
a prepared batch trains or infers — the session redesign in
:mod:`repro.runtime.stage_pipeline` makes that literal.)

The pieces, front to back:

* :mod:`~repro.serving.requests` — the typed request/response/shed
  surface;
* :mod:`~repro.serving.admission` — bounded pending queue + per-tenant
  credit buckets (all refusals happen here, before any stage work);
* :mod:`~repro.serving.microbatch` — deadline/size-flushed coalescing
  into :class:`MicroBatch` work items behind the shared
  :class:`~repro.runtime.stage_pipeline.WorkSource` protocol;
* :mod:`~repro.serving.session` — :class:`ServingSession`, composing
  the shared :class:`~repro.runtime.stage_pipeline.StagePipeline`,
  the model, session-scoped stats handles, and a
  :class:`~repro.runtime.resctl.NodeAllocator` grant;
* :mod:`~repro.serving.loadgen` — the open-loop generator
  (``benchmarks/bench_serving.py`` wraps it).

``docs/serving.md`` is the user guide.
"""

from .admission import AdmissionController, CreditScheduler
from .clock import VirtualClock
from .loadgen import LoadgenResult, LoadSpec, run_open_loop
from .microbatch import MicroBatch, MicroBatcher
from .requests import (
    SHED_REASONS,
    InferenceRequest,
    InferenceResponse,
    ShedResponse,
)
from .session import ServingConfig, ServingReport, ServingSession

__all__ = [
    "SHED_REASONS",
    "InferenceRequest",
    "InferenceResponse",
    "ShedResponse",
    "MicroBatch",
    "MicroBatcher",
    "AdmissionController",
    "CreditScheduler",
    "ServingConfig",
    "ServingReport",
    "ServingSession",
    "LoadSpec",
    "LoadgenResult",
    "VirtualClock",
    "run_open_loop",
]
