"""Typed request/response surface of the serving front door.

One :class:`InferenceRequest` asks for class predictions over a set of
target vertices. The front door answers every submission immediately
with exactly one of:

* *accepted* (``None`` from ``submit``) — the request joins the
  current micro-batch and will produce one
  :class:`InferenceResponse` when its batch completes;
* a :class:`ShedResponse` — typed load shedding. The reason is part of
  the API (clients back off differently for a full queue than for an
  exhausted tenant budget), and a shed request **never reaches the
  sampler**: shedding happens entirely at admission, before any stage
  work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: The closed set of shed reasons the admission path can return.
SHED_REASONS = ("queue_full", "no_credit", "closed")


@dataclass(frozen=True)
class InferenceRequest:
    """One client request: predict classes for ``targets``.

    ``arrival_s`` is the request's arrival timestamp on the session
    clock — for open-loop load generation it is the *scheduled* arrival
    (latency then includes any queueing delay the server imposed, which
    is what an open-loop benchmark must measure).
    """

    request_id: int
    tenant: str
    targets: np.ndarray
    arrival_s: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "targets",
            np.asarray(self.targets, dtype=np.int64).reshape(-1))

    @property
    def num_targets(self) -> int:
        return int(self.targets.size)


@dataclass(frozen=True)
class InferenceResponse:
    """One completed request: per-target predicted classes plus the
    latency split the serving report aggregates."""

    request_id: int
    tenant: str
    predictions: np.ndarray
    #: Completion timestamp on the session clock.
    completed_s: float
    #: End-to-end latency: completion − arrival (queueing included).
    latency_s: float
    #: The micro-batch this request rode in (audit trail for the
    #: conformance kit's no-drop/no-duplicate checks).
    batch_seq: int

    @property
    def num_targets(self) -> int:
        return int(self.predictions.size)


@dataclass(frozen=True)
class ShedResponse:
    """A typed rejection from the admission path.

    ``reason`` is one of :data:`SHED_REASONS`:

    * ``"queue_full"`` — the bounded pending queue is at capacity;
    * ``"no_credit"`` — the tenant's credit bucket cannot cover the
      request's target count right now;
    * ``"closed"`` — the session is shut down.
    """

    request_id: int
    tenant: str
    reason: str
    #: Shed timestamp on the session clock.
    shed_s: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.reason not in SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {self.reason!r}; "
                f"expected one of {list(SHED_REASONS)}")
