"""The serving session: micro-batched inference over the runtime stack.

:class:`ServingSession` is the online counterpart of
:class:`~repro.runtime.core.TrainingSession`, composed from the same
parts the redesign extracted for exactly this purpose:

* the same :class:`~repro.runtime.stage_pipeline.StagePipeline`
  (sampler via the registry → fused gather/quantize kernels → transfer
  policy) prepares each micro-batch, so serving exercises the
  identical hot path the training backends run;
* its micro-batch queue satisfies the same
  :class:`~repro.runtime.stage_pipeline.WorkSource` protocol as a
  training :class:`~repro.runtime.core.BatchPlan` (numbered work
  items), exposed through the same ``work_source`` property;
* it carries its own session-scoped
  :class:`~repro.runtime.resctl.StageMonitor` and
  :class:`~repro.kernels.KernelCounters` handles, so a serving session
  and a co-tenant training session never interleave stats;
* it registers with the node's
  :class:`~repro.runtime.resctl.NodeAllocator` — the grant's live
  ``depth_cap`` bounds how many micro-batches one :meth:`step`
  executes, which is how the resctl loop arbitrates between a
  training run's look-ahead depth and a serving session's burst
  capacity on one machine.

The request lifecycle (single-threaded by design — the owner's serve
loop drives ``submit``/``step``; determinism is what the conformance
tier and the property tests buy with that):

``submit`` → admission (``closed`` / ``queue_full`` / ``no_credit``
typed sheds, *before* any stage work) → micro-batcher (deadline or
size flush) → ``step`` (allocator-capped batch execution: stage
pipeline → model forward → per-request responses).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import SystemConfig, TrainingConfig, layer_dims
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..kernels import KernelCounters, scoped_counters
from ..nn.models import build_model
from ..runtime.resctl import DEFAULT_ALLOCATOR, NodeAllocator, \
    StageMonitor
from ..runtime.stage_pipeline import StagePipeline, WorkSource
from ..sampling import build_sampler
from .admission import AdmissionController, CreditScheduler
from .microbatch import MicroBatch, MicroBatcher
from .requests import InferenceRequest, InferenceResponse, ShedResponse


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving front door (validated eagerly).

    ``latency_budget_s`` is the contract the benchmark holds the
    session to (accepted p99 within budget); ``coalesce_window_s``
    (default: a quarter of the budget) is how much of it the batcher
    may spend coalescing. Admission bounds — the pending-request queue
    and the per-tenant credit bucket — are what keep the budget
    holdable under overload: beyond them the session sheds (typed)
    instead of queueing.
    """

    latency_budget_s: float = 0.25
    coalesce_window_s: float | None = None
    max_batch_targets: int = 64
    max_pending_requests: int = 64
    #: Per-tenant credit refill in target-vertices/s; ``None``
    #: disables credit scheduling (single-tenant default).
    credit_rate_targets_per_s: float | None = None
    credit_burst_targets: int = 128
    #: Micro-batches one :meth:`ServingSession.step` may execute —
    #: also the ``max_depth`` the session requests from the node
    #: allocator (the live grant can cap it lower under contention).
    max_depth: int = 2
    #: Which trainer kind's transfer policy serving pays: ``"accel"``
    #: (quantized PCIe path) or ``"cpu"`` (host-memory, identity).
    device: str = "accel"

    def __post_init__(self) -> None:
        if self.latency_budget_s <= 0:
            raise ConfigError("latency_budget_s must be positive")
        window = self.coalesce_window_s
        if window is not None and not \
                0 < window <= self.latency_budget_s:
            raise ConfigError(
                "coalesce_window_s must be in (0, latency_budget_s]")
        if self.max_batch_targets < 1:
            raise ConfigError("max_batch_targets must be >= 1")
        if self.max_pending_requests < 1:
            raise ConfigError("max_pending_requests must be >= 1")
        if self.max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if self.device not in ("cpu", "accel"):
            raise ConfigError(
                f"device must be 'cpu' or 'accel', got {self.device!r}")

    @property
    def window_s(self) -> float:
        """The effective coalesce window."""
        if self.coalesce_window_s is not None:
            return self.coalesce_window_s
        return self.latency_budget_s / 4.0


@dataclass
class ServingReport:
    """Aggregate outcome of a serving run (see also
    :mod:`repro.serving.loadgen` for the open-loop wrapper)."""

    accepted: int = 0
    completed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)
    targets_served: int = 0
    kernel_stats: dict[str, int] = field(default_factory=dict)
    credit_ledger: dict[str, dict[str, float]] = field(
        default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def offered(self) -> int:
        return self.accepted + self.shed_total

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "completed": self.completed,
            "shed": dict(self.shed),
            "shed_rate": (self.shed_total / self.offered
                          if self.offered else 0.0),
            "targets_served": self.targets_served,
            "batches": len(self.batch_sizes),
            "mean_batch_requests": (float(np.mean(self.batch_sizes))
                                    if self.batch_sizes else 0.0),
            "latency_p50_ms": self.latency_percentile(50) * 1e3,
            "latency_p99_ms": self.latency_percentile(99) * 1e3,
            "kernel_stats": dict(self.kernel_stats),
            "credit_ledger": {t: dict(v)
                              for t, v in self.credit_ledger.items()},
        }


class ServingSession:
    """Micro-batched online inference over the shared runtime stack.

    Parameters
    ----------
    dataset / train_cfg / sys_cfg:
        The workload, the sampler/model hyper-parameters (fanouts,
        layer count, model family — the same ``TrainingConfig`` a
        training session takes, so a serving session can be stood up
        over exactly the trained configuration), and the system policy
        (transfer precision).
    config:
        The :class:`ServingConfig` front-door knobs.
    params:
        Flat parameter vector to serve (e.g.
        ``trained_model.get_flat_params()``); ``None`` serves the
        seed-initialized model (benchmarks).
    allocator:
        Node-level arbitration (defaults to the process-wide
        :data:`~repro.runtime.resctl.DEFAULT_ALLOCATOR`, shared with
        the overlapped training backends).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, dataset: GraphDataset,
                 train_cfg: TrainingConfig,
                 sys_cfg: SystemConfig | None = None, *,
                 config: ServingConfig | None = None,
                 params: np.ndarray | None = None,
                 allocator: NodeAllocator | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.sys_cfg = sys_cfg if sys_cfg is not None else SystemConfig()
        self.config = config if config is not None else ServingConfig()
        self.clock = clock

        self.dims = layer_dims(dataset.spec.feature_dim,
                               train_cfg.hidden_dim,
                               dataset.spec.num_classes,
                               train_cfg.num_layers)
        sampler = build_sampler(
            train_cfg.sampler, dataset.graph, dataset.train_ids,
            train_cfg, dataset.spec.feature_dim)
        #: The shared per-item producer chain — the same class a
        #: training session composes.
        self.pipeline = StagePipeline(
            sampler, dataset.features, dataset.labels,
            self.sys_cfg.transfer_precision)
        self.model = build_model(train_cfg.model, self.dims,
                                 train_cfg.seed)
        if params is not None:
            self.model.set_flat_params(np.asarray(params,
                                                  dtype=np.float64))
        self.degrees = dataset.graph.out_degrees

        # Session-scoped observability handles (never shared with a
        # co-tenant training session).
        self.monitor = StageMonitor()
        self.counters = KernelCounters()

        self.batcher = MicroBatcher(self.config.window_s,
                                    self.config.max_batch_targets,
                                    clock=clock)
        self.admission = AdmissionController(
            self.config.max_pending_requests)
        self.credits = CreditScheduler(
            self.config.credit_rate_targets_per_s,
            self.config.credit_burst_targets, clock=clock)

        self.allocator = allocator if allocator is not None \
            else DEFAULT_ALLOCATOR
        self._grant = self.allocator.register(
            name=f"serving:{dataset.name}",
            max_depth=self.config.max_depth)
        self.closed = False
        self.report = ServingReport()
        self._next_id = 0

    # ------------------------------------------------------------------
    # WorkSource surface (shared with BatchPlan)
    # ------------------------------------------------------------------
    @property
    def work_source(self) -> WorkSource:
        """The numbered micro-batch stream — the serving counterpart
        of a training session's :class:`~repro.runtime.core.BatchPlan`
        behind the same protocol."""
        return self.batcher

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def submit(self, targets, tenant: str = "default", *,
               arrival_s: float | None = None
               ) -> ShedResponse | None:
        """Submit one inference request.

        Returns ``None`` on acceptance (the response arrives from a
        later :meth:`step`) or a typed :class:`ShedResponse`. All
        shedding happens here — a shed request never reaches the
        sampler. ``arrival_s`` lets an open-loop generator stamp the
        *scheduled* arrival so measured latency includes queueing
        delay.
        """
        now = self.clock()
        rid = self._next_id
        self._next_id += 1
        if arrival_s is None:
            arrival_s = now
        targets = np.asarray(targets, dtype=np.int64).reshape(-1)
        if self.closed:
            return self._shed(rid, tenant, "closed", now)
        if targets.size == 0:
            raise ConfigError("request needs at least one target")
        if self.admission.pending >= self.config.max_pending_requests:
            return self._shed(rid, tenant, "queue_full", now)
        if not self.credits.try_spend(tenant, int(targets.size)):
            return self._shed(rid, tenant, "no_credit", now)
        admitted = self.admission.try_admit()
        assert admitted  # bound checked above; front door is 1-thread
        request = InferenceRequest(request_id=rid, tenant=tenant,
                                   targets=targets,
                                   arrival_s=arrival_s)
        self.batcher.offer(request)
        self.report.accepted += 1
        return None

    def _shed(self, rid: int, tenant: str, reason: str,
              now: float) -> ShedResponse:
        self.report.shed[reason] = self.report.shed.get(reason, 0) + 1
        return ShedResponse(request_id=rid, tenant=tenant,
                            reason=reason, shed_s=now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> list[InferenceResponse]:
        """Flush due micro-batches and execute up to the allocator's
        live grant of them; returns the completed responses."""
        self.batcher.poll()
        cap = self.config.max_depth
        if not self._grant.released:
            cap = min(cap, self._grant.depth_cap)
        responses: list[InferenceResponse] = []
        for batch in self.batcher.take(max(1, cap)):
            responses.extend(self._execute(batch))
        return responses

    def drain(self) -> list[InferenceResponse]:
        """Force-flush and execute everything pending (shutdown /
        end-of-run path)."""
        responses: list[InferenceResponse] = []
        self.batcher.flush()
        while self.batcher.ready_batches:
            responses.extend(self.step())
            self.batcher.flush()
        return responses

    def _execute(self, batch: MicroBatch) -> list[InferenceResponse]:
        # Coalescing means the same vertex can appear in several
        # member requests; the sampler (and the stage work) sees each
        # target once, and predictions scatter back per request.
        unique_targets, inverse = np.unique(batch.targets,
                                            return_inverse=True)
        with scoped_counters(self.counters):
            prepared = self.pipeline.prepare(unique_targets,
                                             self.config.device,
                                             with_labels=False)
            t0 = time.perf_counter()
            logits = self.model.forward(prepared.mb, prepared.x0,
                                        self.degrees)
            propagate_s = time.perf_counter() - t0
        predictions = np.argmax(logits, axis=1)[inverse]
        # Canonical resctl stage keys (sample/load/transfer/propagate).
        self.monitor.observe_times({
            "sample": prepared.timings.sample_s,
            "load": prepared.timings.gather_s,
            "transfer": prepared.timings.transfer_s,
            "propagate": propagate_s,
        })
        completed_s = self.clock()
        responses: list[InferenceResponse] = []
        offset = 0
        for request in batch.requests:
            n = request.num_targets
            responses.append(InferenceResponse(
                request_id=request.request_id,
                tenant=request.tenant,
                predictions=predictions[offset:offset + n],
                completed_s=completed_s,
                latency_s=completed_s - request.arrival_s,
                batch_seq=batch.seq))
            offset += n
        self.admission.complete(len(batch.requests))
        self.report.completed += len(batch.requests)
        self.report.latencies_s.extend(r.latency_s for r in responses)
        self.report.batch_sizes.append(len(batch.requests))
        self.report.targets_served += batch.num_targets
        return responses

    # ------------------------------------------------------------------
    def finalize_report(self) -> ServingReport:
        """Stamp the stats handles into the report and return it."""
        self.report.kernel_stats = self.counters.snapshot()
        self.report.credit_ledger = self.credits.ledger()
        return self.report

    def close(self) -> ServingReport:
        """Shut the front door (subsequent submits shed ``closed``),
        release the allocator grant, and return the final report."""
        if not self.closed:
            self.closed = True
            self._grant.release()
        return self.finalize_report()

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ServingSession over {self.dataset.name} "
                f"pending={self.admission.pending} "
                f"{'closed' if self.closed else 'open'}>")
