"""Open-loop load generation against a :class:`ServingSession`.

Open-loop means the arrival schedule is fixed *before* the run — one
request every ``1/rate`` seconds, regardless of how the server keeps
up — and each request's latency is measured from its **scheduled**
arrival. A closed-loop generator (next request after the previous
response) hides overload by slowing itself down; open-loop is the
methodology that actually exposes it (queueing delay counts, and a
server that can't keep up must shed — visibly, typed — rather than
quietly stretch the measurement interval).

The generator drives the session's single-threaded ``submit``/``step``
loop on the real wall clock: due arrivals are submitted (stamped with
their scheduled arrival time), then the session steps. A hard grace
deadline bounds the drain phase so a wedged run fails loudly instead
of hanging a CI leg.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, ProtocolError
from .session import ServingReport, ServingSession


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop experiment: Poisson-free deterministic arrivals
    at ``rate_rps`` for ``duration_s``."""

    rate_rps: float
    duration_s: float
    targets_per_request: int = 8
    tenants: tuple[str, ...] = ("default",)
    seed: int = 0
    #: Hard bound on the post-schedule drain before the run is
    #: declared wedged.
    grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigError("rate_rps must be positive")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if self.targets_per_request < 1:
            raise ConfigError("targets_per_request must be >= 1")
        if not self.tenants:
            raise ConfigError("need at least one tenant")

    @property
    def num_requests(self) -> int:
        return max(1, int(round(self.rate_rps * self.duration_s)))


@dataclass
class LoadgenResult:
    """The numbers an open-loop run produced."""

    spec: LoadSpec
    report: ServingReport
    wall_s: float

    @property
    def throughput_rps(self) -> float:
        return self.report.completed / self.wall_s if self.wall_s > 0 \
            else 0.0

    @property
    def targets_per_s(self) -> float:
        return self.report.targets_served / self.wall_s \
            if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        out = self.report.to_dict()
        out.update({
            "offered_rate_rps": self.spec.rate_rps,
            "duration_s": self.spec.duration_s,
            "targets_per_request": self.spec.targets_per_request,
            "tenants": list(self.spec.tenants),
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "targets_per_s": self.targets_per_s,
        })
        return out


def run_open_loop(session: ServingSession,
                  spec: LoadSpec) -> LoadgenResult:
    """Drive ``session`` through one open-loop experiment.

    Pre-computes the whole arrival schedule (offsets and per-request
    target draws from the session's train-id domain), then replays it
    on the session clock: submit every due arrival stamped with its
    *scheduled* time, step, repeat; after the schedule ends, drain
    under the grace deadline.
    """
    n = spec.num_requests
    rng = np.random.default_rng(spec.seed)
    offsets = np.arange(n, dtype=np.float64) / spec.rate_rps
    ids = session.dataset.train_ids
    draws = [rng.choice(ids, size=spec.targets_per_request,
                        replace=False)
             if ids.size >= spec.targets_per_request
             else rng.choice(ids, size=spec.targets_per_request)
             for _ in range(n)]

    clock = session.clock
    start = clock()
    i = 0
    while i < n:
        now = clock()
        while i < n and start + offsets[i] <= now:
            session.submit(draws[i],
                           tenant=spec.tenants[i % len(spec.tenants)],
                           arrival_s=start + offsets[i])
            i += 1
        session.step()

    deadline = clock() + spec.grace_s
    session.batcher.flush()
    while session.admission.pending > 0:
        if clock() > deadline:
            raise ProtocolError(
                f"serving drain exceeded the {spec.grace_s}s grace "
                f"deadline with {session.admission.pending} pending")
        session.step()
        session.batcher.flush()
    wall = clock() - start
    return LoadgenResult(spec=spec, report=session.finalize_report(),
                         wall_s=wall)
