"""Micro-batching: coalesce admitted requests under a latency budget.

Serving a GNN one request at a time wastes the batch-oriented
sampler/gather/kernel stack; batching too long blows the latency
budget. The :class:`MicroBatcher` holds the middle: admitted requests
join an *open* batch, which flushes when either

* its target count reaches ``max_batch_targets`` (size flush), or
* the **oldest** request in it has waited ``coalesce_window_s``
  (deadline flush) — the window is validated against the session's
  latency budget at construction, so coalescing can never consume the
  whole budget.

Flushed batches queue as :class:`MicroBatch` work items; the batcher's
:meth:`~MicroBatcher.iterate` makes the ready queue a
:class:`~repro.runtime.stage_pipeline.WorkSource`, the same protocol
the training :class:`~repro.runtime.core.BatchPlan` satisfies — which
is what lets an overlapped dispatcher drive either plane.

The clock is injectable (``clock=lambda: t``), so the flush rules are
property-testable with a virtual clock: every accepted request lands
in exactly one flushed batch, and no batch flushes later than its
deadline while :meth:`poll` is being driven.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..errors import ConfigError
from .requests import InferenceRequest


@dataclass(frozen=True)
class MicroBatch:
    """One flushed micro-batch: the coalesced work item.

    ``targets`` is the concatenation of the member requests' target
    ids in admission order — the stage pipeline samples the whole
    micro-batch as one computational graph, and predictions are split
    back per-request by each member's target count.
    """

    seq: int
    requests: tuple[InferenceRequest, ...]
    #: Session-clock time the batch was opened (oldest arrival).
    opened_s: float
    #: The deadline that forced (or would have forced) the flush:
    #: ``opened_s + coalesce_window_s``.
    deadline_s: float
    #: Session-clock time the batch actually flushed.
    flushed_s: float

    @property
    def targets(self) -> np.ndarray:
        if not self.requests:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([r.targets for r in self.requests])

    @property
    def num_targets(self) -> int:
        return sum(r.num_targets for r in self.requests)

    def __len__(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Coalesces admitted requests into bounded, deadline-flushed
    micro-batches.

    Parameters
    ----------
    coalesce_window_s:
        Longest a request may sit in the open batch before a
        :meth:`poll` flushes it.
    max_batch_targets:
        Flush the open batch as soon as its total target count reaches
        this bound (a single oversized request still flushes — as its
        own batch — rather than being rejected here; sizing requests
        is the admission controller's job).
    clock:
        Monotonic time source; injectable for property tests.
    """

    def __init__(self, coalesce_window_s: float,
                 max_batch_targets: int, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if coalesce_window_s <= 0:
            raise ConfigError("coalesce_window_s must be positive")
        if max_batch_targets < 1:
            raise ConfigError("max_batch_targets must be >= 1")
        self.coalesce_window_s = float(coalesce_window_s)
        self.max_batch_targets = int(max_batch_targets)
        self.clock = clock
        self._open: list[InferenceRequest] = []
        self._opened_s: float | None = None
        self._ready: deque[MicroBatch] = deque()
        self._seq = 0
        #: Total flushed batches / requests (bookkeeping for reports).
        self.flushed_batches = 0
        self.flushed_requests = 0

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest) -> None:
        """Add an *admitted* request to the open batch (admission —
        credits, queue bounds — happened upstream; the batcher never
        rejects)."""
        now = self.clock()
        if not self._open:
            self._opened_s = now
        self._open.append(request)
        if self._open_targets() >= self.max_batch_targets:
            self._flush(now)

    def poll(self) -> None:
        """Apply the deadline rule: flush the open batch if its oldest
        request has waited out the coalesce window. Callers (the
        serving step loop) drive this between submissions."""
        if self._open and self.clock() >= self.deadline_s():
            self._flush(self.clock())

    def flush(self) -> None:
        """Force-flush the open batch (drain path / shutdown)."""
        if self._open:
            self._flush(self.clock())

    def deadline_s(self) -> float:
        """The open batch's flush deadline (``inf`` when empty)."""
        if self._opened_s is None:
            return float("inf")
        return self._opened_s + self.coalesce_window_s

    # ------------------------------------------------------------------
    def take(self, limit: int | None = None) -> list[MicroBatch]:
        """Pop up to ``limit`` ready (flushed) batches, oldest first."""
        out: list[MicroBatch] = []
        while self._ready and (limit is None or len(out) < limit):
            out.append(self._ready.popleft())
        return out

    def iterate(self, iterations: int
                ) -> Iterator[tuple[int, MicroBatch]]:
        """The :class:`~repro.runtime.stage_pipeline.WorkSource`
        surface: yield up to ``iterations`` numbered ready batches
        (applying the deadline rule first). Non-blocking — the stream
        ends when the ready queue drains, mirroring how a training
        plan's stream ends with its epochs."""
        self.poll()
        for _ in range(iterations):
            if not self._ready:
                return
            batch = self._ready.popleft()
            yield batch.seq, batch

    # ------------------------------------------------------------------
    @property
    def pending_requests(self) -> int:
        """Requests accepted but not yet handed out: open + ready."""
        return len(self._open) + sum(len(b) for b in self._ready)

    @property
    def pending_targets(self) -> int:
        return self._open_targets() + sum(b.num_targets
                                          for b in self._ready)

    @property
    def ready_batches(self) -> int:
        return len(self._ready)

    def _open_targets(self) -> int:
        return sum(r.num_targets for r in self._open)

    def _flush(self, now: float) -> None:
        batch = MicroBatch(seq=self._seq,
                           requests=tuple(self._open),
                           opened_s=self._opened_s
                           if self._opened_s is not None else now,
                           deadline_s=self.deadline_s(),
                           flushed_s=now)
        self._seq += 1
        self.flushed_batches += 1
        self.flushed_requests += len(self._open)
        self._open = []
        self._opened_s = None
        self._ready.append(batch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<MicroBatcher open={len(self._open)} "
                f"ready={len(self._ready)} window="
                f"{self.coalesce_window_s}s>")
