"""Admission control: bounded queueing and per-tenant credits.

Everything that can refuse a request lives here, *in front of* the
micro-batcher — a shed request never allocates stage work, never
touches the sampler, never holds queue space. Two independent gates:

* :class:`AdmissionController` — a bound on requests admitted but not
  yet completed (open batch + ready batches + in-execution). Overload
  beyond the bound sheds ``queue_full`` instead of growing an
  unbounded backlog; the bound is what keeps accepted-request latency
  inside the budget when an open-loop client offers more than the
  node can serve.
* :class:`CreditScheduler` — a token bucket per tenant, denominated in
  **target vertices** (the unit of stage work), refilled at
  ``rate_targets_per_s`` up to ``burst_targets``. A request whose
  target count exceeds the tenant's current balance sheds
  ``no_credit``. Conservation — a tenant's admitted work never
  exceeds refill + burst — is asserted by the serving conformance
  tier.

Both use the session's injectable clock, so they are deterministic
under a virtual clock in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


class AdmissionController:
    """Bounded pending-request accounting.

    ``try_admit`` / ``complete`` bracket a request's admitted lifetime;
    the controller never blocks — a full queue is an immediate, typed
    refusal (the front door turns it into a ``queue_full``
    :class:`~repro.serving.requests.ShedResponse`).
    """

    def __init__(self, max_pending_requests: int) -> None:
        if max_pending_requests < 1:
            raise ConfigError("max_pending_requests must be >= 1")
        self.max_pending_requests = int(max_pending_requests)
        self.pending = 0
        self.admitted_total = 0
        self.completed_total = 0

    def try_admit(self) -> bool:
        """Claim one pending slot; ``False`` means shed
        ``queue_full``."""
        if self.pending >= self.max_pending_requests:
            return False
        self.pending += 1
        self.admitted_total += 1
        return True

    def complete(self, n: int = 1) -> None:
        """Return ``n`` pending slots (requests completed)."""
        if n < 0 or n > self.pending:
            raise ConfigError(
                f"completing {n} requests with {self.pending} pending")
        self.pending -= n
        self.completed_total += n


@dataclass
class _Bucket:
    balance: float
    last_refill_s: float
    spent_targets: int = 0
    refilled_targets: float = 0.0


class CreditScheduler:
    """Per-tenant token buckets denominated in target vertices.

    Parameters
    ----------
    rate_targets_per_s:
        Steady-state refill rate per tenant. ``None`` disables credit
        scheduling entirely (every spend succeeds) — the single-tenant
        default.
    burst_targets:
        Bucket capacity: the largest burst a tenant can spend at once.
        Buckets start full.
    clock:
        Monotonic time source shared with the owning session.
    """

    def __init__(self, rate_targets_per_s: float | None,
                 burst_targets: int, *, clock) -> None:
        if rate_targets_per_s is not None and rate_targets_per_s <= 0:
            raise ConfigError("rate_targets_per_s must be positive "
                              "(or None to disable credits)")
        if burst_targets < 1:
            raise ConfigError("burst_targets must be >= 1")
        self.rate_targets_per_s = rate_targets_per_s
        self.burst_targets = int(burst_targets)
        self.clock = clock
        self._buckets: dict[str, _Bucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate_targets_per_s is not None

    def _bucket(self, tenant: str) -> _Bucket:
        b = self._buckets.get(tenant)
        if b is None:
            b = _Bucket(balance=float(self.burst_targets),
                        last_refill_s=self.clock())
            self._buckets[tenant] = b
        return b

    def _refill(self, b: _Bucket) -> None:
        now = self.clock()
        dt = max(0.0, now - b.last_refill_s)
        b.last_refill_s = now
        gained = dt * float(self.rate_targets_per_s)
        headroom = float(self.burst_targets) - b.balance
        credited = min(gained, headroom)
        if credited > 0:
            b.balance += credited
            b.refilled_targets += credited

    def try_spend(self, tenant: str, targets: int) -> bool:
        """Spend ``targets`` credits for ``tenant``; ``False`` means
        shed ``no_credit``. Disabled schedulers always grant."""
        if not self.enabled:
            return True
        b = self._bucket(tenant)
        self._refill(b)
        if b.balance + 1e-9 < targets:
            return False
        b.balance -= targets
        b.spent_targets += int(targets)
        return True

    def balance(self, tenant: str) -> float:
        """The tenant's current credit balance (after refill)."""
        if not self.enabled:
            return float("inf")
        b = self._bucket(tenant)
        self._refill(b)
        return b.balance

    def ledger(self) -> dict[str, dict[str, float]]:
        """Per-tenant conservation accounting: targets spent, credits
        refilled, and the burst the bucket opened with — the serving
        conformance tier asserts ``spent <= burst + refilled``."""
        return {tenant: {"spent_targets": b.spent_targets,
                         "refilled_targets": b.refilled_targets,
                         "burst_targets": float(self.burst_targets)}
                for tenant, b in self._buckets.items()}
