"""Empirical sampling-time profiling and batch-statistics estimation.

The paper does not model ``T_samp`` analytically: "we estimate T_samp by
running the sampling algorithm under different numbers of threads and
different mini-batch sizes, and deriving their execution time during
design phase" (§V). :class:`SamplingProfile` does exactly that — it draws
probe batches from the (scaled) graph and records realized ``|V^l|`` /
``|E^l|`` statistics, from which sampling time follows via calibrated
sampler throughputs.

Sampler throughput constants
----------------------------
``HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD``
    HyScale-GNN's native (C++/pthread) neighbor sampler: ~4M sampled
    edges/s per thread (~250 ns/edge — a few DRAM-latency-class accesses
    per sampled edge; the upper end of optimized CSR samplers).
``PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD``
    PyTorch-Geometric v2.0 torch-sparse sampler — the multi-GPU baseline's
    sampler — ~2.5x slower per thread than the native sampler
    (Python/torch-sparse dispatch overhead; consistent with the
    Salient/DGL sampling-bottleneck literature), and the baseline runs
    far fewer sampler workers than HyScale's 256 hardware threads.
``ACCEL_SAMPLE_RATE_EDGES_PER_S``
    Per-accelerator sampling throughput when mini-batch sampling is
    offloaded (paper Alg. 1's ``T_SA`` path): GPU sampling kernels (DGL's
    CUDA sampler class) and dedicated FPGA sampling units (the HP-GNN
    lineage the authors built previously) both reach tens of millions of
    edges/s per device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from ..graph.datasets import DatasetSpec
from ..sampling.base import MiniBatchStats
from ..sampling.neighbor import NeighborSampler

HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD = 4.0e6
PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD = 1.5e6
ACCEL_SAMPLE_RATE_EDGES_PER_S = {"gpu": 30.0e6, "fpga": 50.0e6}


@dataclass(frozen=True)
class SamplingProfile:
    """Measured expected batch statistics for one (graph, fanouts) pair.

    Attributes
    ----------
    base_minibatch_size:
        Target count the probe batches used.
    mean_stats:
        Expected :class:`MiniBatchStats` at the base size. Use
        :meth:`expected_stats` for other sizes (near-linear scaling).
    rel_std:
        Relative standard deviation of total batch edges across probes —
        feeds the straggler analysis in the event simulator.
    """

    base_minibatch_size: int
    mean_stats: MiniBatchStats
    rel_std: float

    @classmethod
    def measure(cls, sampler: NeighborSampler, minibatch_size: int,
                num_probes: int = 8, seed: int = 17) -> "SamplingProfile":
        """Draw ``num_probes`` batches and average their statistics."""
        if num_probes < 1:
            raise SamplingError("need at least one probe batch")
        rng = np.random.default_rng(seed)
        ids = sampler.train_ids
        nodes_acc = None
        edges_acc = None
        totals = []
        for _ in range(num_probes):
            take = min(minibatch_size, ids.size)
            targets = rng.choice(ids, size=take, replace=False)
            stats = sampler.sample(targets).stats()
            nodes = np.array(stats.num_nodes_per_layer, dtype=np.float64)
            edges = np.array(stats.num_edges_per_layer, dtype=np.float64)
            nodes_acc = nodes if nodes_acc is None else nodes_acc + nodes
            edges_acc = edges if edges_acc is None else edges_acc + edges
            totals.append(edges.sum())
        nodes_mean = nodes_acc / num_probes
        edges_mean = edges_acc / num_probes
        totals = np.array(totals)
        rel_std = float(totals.std() / totals.mean()) if \
            totals.mean() > 0 else 0.0
        mean_stats = MiniBatchStats(
            num_nodes_per_layer=tuple(int(round(v)) for v in nodes_mean),
            num_edges_per_layer=tuple(int(round(e)) for e in edges_mean),
            feature_dim=sampler.feature_dim)
        return cls(base_minibatch_size=minibatch_size,
                   mean_stats=mean_stats, rel_std=rel_std)

    def expected_stats(self, minibatch_size: int) -> MiniBatchStats:
        """Expected statistics for a different mini-batch size.

        Neighbor-sampled batch sizes scale near-linearly in the target
        count (sub-linearly once dedup saturates; acceptable for the
        ±50% adjustments the DRM engine makes).
        """
        if minibatch_size <= 0:
            raise SamplingError("minibatch_size must be positive")
        return self.mean_stats.scaled(
            minibatch_size / self.base_minibatch_size)

    def sampling_time(self, minibatch_sizes_total: int,
                      edges_per_s: float) -> float:
        """Seconds to sample ``minibatch_sizes_total`` targets' batches at
        the given sampler throughput (edges/s)."""
        if edges_per_s <= 0:
            raise SamplingError("edges_per_s must be positive")
        stats = self.expected_stats(max(1, minibatch_sizes_total))
        return stats.total_edges / edges_per_s


def _effective_pool_size(graph: CSRGraph) -> float:
    """Inverse-Simpson effective vertex count under degree-proportional
    sampling (hubs shrink the pool, raising collision rates)."""
    d = graph.out_degrees.astype(np.float64)
    total = d.sum()
    if total <= 0:
        return float(graph.num_vertices)
    p = d / total
    return float(1.0 / np.square(p).sum())


def project_full_scale_stats(graph: CSRGraph, spec: DatasetSpec,
                             fanouts: tuple[int, ...],
                             minibatch_size: int) -> MiniBatchStats:
    """Estimate per-batch |V^l| / |E^l| for the *full-scale* dataset.

    The scaled graph preserves the degree distribution, so the expected
    per-vertex sampled-edge count ``E[min(deg, fanout)]`` transfers
    directly. Unique-vertex counts use a birthday-style correction with
    the effective pool size scaled up to the full graph: at paper scale,
    collisions nearly vanish outside hub vertices, so ``|V^0|``
    approaches its no-dedup upper bound — the regime the paper's PCIe
    traffic numbers live in.
    """
    degs = graph.out_degrees.astype(np.float64)
    scale_up = spec.num_vertices / graph.num_vertices
    pool = _effective_pool_size(graph) * scale_up

    nodes = [float(minibatch_size)]
    edges: list[float] = []
    frontier = float(minibatch_size)
    for fanout in fanouts:
        e_per_v = float(np.minimum(degs, fanout).mean())
        drawn = frontier * e_per_v
        # Unique draws from an effective pool of `pool` vertices.
        unique = pool * (1.0 - np.exp(-drawn / pool))
        frontier = frontier + unique          # prefix-union with frontier
        edges.append(drawn)
        nodes.append(frontier)
    # MiniBatchStats wants input side first.
    nodes.reverse()
    edges.reverse()
    return MiniBatchStats(
        num_nodes_per_layer=tuple(int(round(v)) for v in nodes),
        num_edges_per_layer=tuple(int(round(e)) for e in edges),
        feature_dim=spec.feature_dim)
