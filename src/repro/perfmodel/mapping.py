"""Coarse-grained initial task mapping (paper §IV-A, design phase).

HyScale-GNN initializes its task mapping from the performance model before
training starts; the DRM engine then fine-tunes at runtime. The search
here is deliberately coarse (the paper calls it "coarse-grained"): a grid
over the CPU trainer's workload share, the accelerator-sampling share,
and a handful of thread-allocation presets, minimizing predicted
iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .model import PerformanceModel, WorkloadSplit


#: Thread presets (sample, load, train) explored by the mapping search,
#: expressed as fractions of the total thread budget.
_THREAD_PRESETS = (
    (0.50, 0.25, 0.25),
    (0.375, 0.25, 0.375),
    (0.25, 0.25, 0.50),
    (0.25, 0.50, 0.25),
    (0.375, 0.375, 0.25),
)

#: CPU workload shares explored (fraction of one accelerator's quota that
#: the CPU trainer takes *in addition to* the accelerator quotas).
_CPU_SHARE_GRID = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5)

_ACCEL_SAMPLE_GRID = (0.0, 0.25, 0.5)


@dataclass(frozen=True)
class MappingResult:
    """Outcome of the design-phase search."""

    split: WorkloadSplit
    predicted_iteration_s: float
    candidates_evaluated: int


def initial_mapping(model: PerformanceModel, minibatch_size: int,
                    hybrid: bool = True,
                    pipelined: bool = True,
                    coarse: bool = True) -> MappingResult:
    """Search for the best compile-time workload split.

    Every accelerator receives a full ``minibatch_size`` quota (the paper
    assigns one mini-batch per trainer); the grid explores how large a
    batch the CPU trainer should additionally take, where sampling runs,
    and how to split CPU threads.

    The objective is seconds *per trained target* (iteration time divided
    by targets per iteration), i.e. epoch time up to rounding — not raw
    iteration time, which would never justify giving the CPU trainer any
    work (extra CPU work can only lengthen an iteration; its payoff is
    fewer iterations per epoch).

    ``coarse`` restricts the grid to the handful of points a design-phase
    pass realistically explores (paper §IV-A calls the compile-time
    mapping "coarse-grained"); the DRM engine fine-tunes from there at
    runtime. ``coarse=False`` searches the full grid — used by the
    mapping-quality ablation bench.
    """
    if minibatch_size <= 0:
        raise ConfigError("minibatch_size must be positive")
    n_accel = model.platform.num_accelerators
    if n_accel == 0 and not hybrid:
        raise ConfigError("nothing to map: no accelerators and no CPU "
                          "trainer")
    budget = model.total_cpu_threads
    best: tuple[float, WorkloadSplit, float] | None = None
    evaluated = 0

    if coarse:
        # Design-phase coarseness: a handful of CPU shares, no
        # accelerator sampling, and a naive equal-thirds thread split —
        # the runtime DRM engine is what refines threads (paper §IV-A).
        cpu_shares = (0.0, 0.25, 0.5, 1.0) if hybrid else (0.0,)
        sample_fracs = (0.0,)
        presets = ((1 / 3, 1 / 3, 1 / 3),)
    else:
        cpu_shares = _CPU_SHARE_GRID if hybrid else (0.0,)
        sample_fracs = _ACCEL_SAMPLE_GRID if n_accel > 0 else (0.0,)
        presets = _THREAD_PRESETS
    for cpu_share in cpu_shares:
        cpu_targets = int(round(minibatch_size * cpu_share))
        for sample_frac in sample_fracs:
            for fs, fl, ft in presets:
                if cpu_targets == 0:
                    # No CPU trainer: its thread share goes to sampling.
                    fs, ft = fs + ft, 0.0
                split = WorkloadSplit(
                    cpu_targets=cpu_targets,
                    accel_targets=(minibatch_size,) * n_accel,
                    accel_sample_fraction=sample_frac,
                    sample_threads=max(1, int(budget * fs)),
                    load_threads=max(1, int(budget * fl)),
                    train_threads=max(1 if cpu_targets else 0,
                                      int(budget * ft)),
                )
                if split.total_threads > budget:
                    continue
                t = model.iteration_time(split, pipelined=pipelined)
                per_target = t / split.total_targets
                evaluated += 1
                if best is None or per_target < best[0]:
                    best = (per_target, split, t)
    if best is None:
        raise ConfigError("mapping search found no feasible split")
    return MappingResult(split=best[1], predicted_iteration_s=best[2],
                         candidates_evaluated=evaluated)
