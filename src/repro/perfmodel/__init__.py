"""Analytic performance model (paper §V, Eq. 5-13).

Predicts per-stage times from batch statistics and platform metadata, and
derives the coarse-grained initial task mapping (paper §IV-A: "we first
utilize the predicted result from our performance model to initialize the
GNN training task mapping during compile time").
"""

from .sampling_profile import (
    ACCEL_SAMPLE_RATE_EDGES_PER_S,
    HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
    PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
    SamplingProfile,
    project_full_scale_stats,
)
from .model import (
    PerformanceModel,
    StageTimes,
    WorkloadSplit,
    throughput_mteps,
)
from .mapping import initial_mapping

__all__ = [
    "SamplingProfile",
    "project_full_scale_stats",
    "HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD",
    "PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD",
    "ACCEL_SAMPLE_RATE_EDGES_PER_S",
    "PerformanceModel",
    "StageTimes",
    "WorkloadSplit",
    "throughput_mteps",
    "initial_mapping",
]
