"""The paper's performance model (Eq. 5-13) over a workload split.

Definitions (paper §V):

* Eq. 5 — throughput in MTEPS: Σ_i Σ_l |E^l_i| / T_execution.
* Eq. 6 — T_execution = max(T_samp, T_load, T_trans, T_prop): the four
  stages pipeline, so the slowest dominates (pipelined mode). With
  prefetching disabled they serialize (sum) — used by the Fig. 11
  ablation and the multi-GPU baseline.
* Eq. 7 — Feature Loading is host-DDR bound across *all* trainers'
  batches (the Feature Loader runs only on CPUs).
* Eq. 8 — Data Transfer is per-accelerator PCIe time (links are private,
  so the stage time is the max across accelerators).
* Eq. 9-12 — GNN propagation: max over trainers of the kernel-model
  T_trainer, plus the synchronization term.
* Eq. 13 — T_sync: the model crosses PCIe twice (gather + broadcast).

The workload split (which trainer executes how many targets, where
sampling runs, how CPU threads divide among CPU-resident stages) is the
object the DRM engine mutates at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..config import S_FEAT_BYTES
from ..errors import ConfigError
from ..hw.kernels import CPUKernelModel, FPGAKernelModel, GPUKernelModel
from ..hw.specs import LOADER_DDR_EFFICIENCY
from ..hw.topology import PlatformSpec
from ..nn.models import model_size_bytes
from ..sampling.base import MiniBatchStats
from .sampling_profile import (
    ACCEL_SAMPLE_RATE_EDGES_PER_S,
    HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
    SamplingProfile,
)

#: Host-memory gather throughput of one loader thread (bytes/s). Feature
#: rows are 400 B - 3 KB; a single thread sustains ~3 GB/s of random row
#: gathers, so the loader needs many threads to saturate host DDR.
LOADER_THREAD_RATE = 3.0e9

#: Total hardware threads of the dual-EPYC host (2 x 64 cores x SMT2).
DEFAULT_CPU_THREADS = 256


@dataclass(frozen=True)
class WorkloadSplit:
    """Assignment of one iteration's work onto the platform.

    Attributes
    ----------
    cpu_targets:
        Mini-batch targets trained on the CPU trainer (0 = CPU does not
        train, the non-hybrid configuration).
    accel_targets:
        Targets trained on each accelerator.
    accel_sample_fraction:
        Share of sampling workload executed on the accelerators
        (Algorithm 1's T_SA path); the rest samples on CPU threads.
    sample_threads / load_threads / train_threads:
        CPU thread allocation for the three CPU-resident tasks
        (Algorithm 1's ``balance_thread`` moves threads between them).
    """

    cpu_targets: int
    accel_targets: tuple[int, ...]
    accel_sample_fraction: float = 0.0
    sample_threads: int = 96
    load_threads: int = 64
    train_threads: int = 96

    def __post_init__(self) -> None:
        if self.cpu_targets < 0 or any(t < 0 for t in self.accel_targets):
            raise ConfigError("target counts must be non-negative")
        if not 0.0 <= self.accel_sample_fraction <= 1.0:
            raise ConfigError("accel_sample_fraction must be in [0, 1]")
        if min(self.sample_threads, self.load_threads) < 1:
            raise ConfigError("sampler/loader need at least one thread")
        if self.train_threads < 0:
            raise ConfigError("train_threads must be >= 0")
        if self.cpu_targets > 0 and self.train_threads < 1:
            raise ConfigError("CPU training requires train_threads >= 1")

    @property
    def total_targets(self) -> int:
        """Targets trained per iteration across all trainers — invariant
        under DRM re-balancing (paper §IV-A)."""
        return self.cpu_targets + sum(self.accel_targets)

    @property
    def total_threads(self) -> int:
        return self.sample_threads + self.load_threads + \
            self.train_threads

    def with_updates(self, **kwargs) -> "WorkloadSplit":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class StageTimes:
    """Per-stage times of one iteration (Algorithm 1's inputs)."""

    t_sample_cpu: float      # T_SC
    t_sample_accel: float    # T_SA
    t_load: float            # T_Load
    t_transfer: float        # T_Tran (max over accelerators)
    t_train_cpu: float       # T_TC
    t_train_accel: float     # T_TA (max over accelerators)
    t_sync: float

    @property
    def t_sample(self) -> float:
        """Sampling stage: CPU and accelerator samplers run concurrently."""
        return max(self.t_sample_cpu, self.t_sample_accel)

    @property
    def t_accel(self) -> float:
        """Algorithm 1 line 1: transfer and accelerator training bundle."""
        return max(self.t_transfer, self.t_train_accel)

    @property
    def t_prop(self) -> float:
        """Eq. 9: slowest trainer plus synchronization."""
        return max(self.t_train_cpu, self.t_train_accel) + self.t_sync

    def iteration_time(self, pipelined: bool = True) -> float:
        """Eq. 6 (pipelined) or the serialized sum (prefetching off)."""
        if pipelined:
            return max(self.t_sample, self.t_load, self.t_transfer,
                       self.t_prop)
        return self.t_sample + self.t_load + self.t_transfer + self.t_prop

    def as_dict(self) -> dict[str, float]:
        """Named stage times (for traces and logs)."""
        return {
            "sample_cpu": self.t_sample_cpu,
            "sample_accel": self.t_sample_accel,
            "load": self.t_load,
            "transfer": self.t_transfer,
            "train_cpu": self.t_train_cpu,
            "train_accel": self.t_train_accel,
            "sync": self.t_sync,
        }

    def with_updates(self, **kwargs) -> "StageTimes":
        """Copy with fields replaced (how the resctl estimator applies
        its per-stage corrections without mutating the frozen model
        output other consumers hold)."""
        return replace(self, **kwargs)


def throughput_mteps(total_edges_per_iteration: float,
                     iteration_time_s: float) -> float:
    """Eq. 5: millions of traversed edges per second."""
    if iteration_time_s <= 0:
        raise ConfigError("iteration time must be positive")
    return total_edges_per_iteration / iteration_time_s / 1e6


class PerformanceModel:
    """Closed-form stage-time predictor for one platform + workload.

    Parameters
    ----------
    platform:
        Node description (devices, links).
    dims:
        Layer feature lengths (f^0, ..., f^L).
    model_name:
        ``"gcn"`` or ``"sage"``.
    profile:
        Measured :class:`SamplingProfile` for the dataset/fanouts, used
        both for expected batch statistics and sampling times.
    sampler_rate_per_thread:
        CPU sampler throughput (edges/s/thread); swap in the PyG rate to
        model the baseline's sampler.
    total_cpu_threads:
        Host thread budget that the split's three allocations must fit.
    fpga_n_pes / fpga_m_macs:
        FPGA kernel parallelism (Table IV) when the platform's
        accelerators are FPGAs.
    """

    def __init__(self, platform: PlatformSpec, dims: Sequence[int],
                 model_name: str, profile: SamplingProfile, *,
                 sampler_rate_per_thread: float =
                 HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
                 total_cpu_threads: int = DEFAULT_CPU_THREADS,
                 transfer_elem_bytes: int = S_FEAT_BYTES,
                 fpga_n_pes: int = 8, fpga_m_macs: int = 2048) -> None:
        if model_name not in ("gcn", "sage"):
            raise ConfigError(f"unknown model {model_name!r}")
        if transfer_elem_bytes not in (1, 2, 4):
            raise ConfigError("transfer_elem_bytes must be 1, 2 or 4")
        self.platform = platform
        self.dims = tuple(int(d) for d in dims)
        self.model_name = model_name
        self.profile = profile
        self.sampler_rate_per_thread = sampler_rate_per_thread
        self.total_cpu_threads = total_cpu_threads
        self.transfer_elem_bytes = transfer_elem_bytes
        accel = platform.accelerator
        if accel is None:
            self._accel_model = None
        elif accel.kind == "gpu":
            self._accel_model = GPUKernelModel(accel)
        elif accel.kind == "fpga":
            self._accel_model = FPGAKernelModel(
                accel, n_pes=fpga_n_pes, m_macs=fpga_m_macs)
        else:
            raise ConfigError(f"unsupported accelerator kind {accel.kind}")

    # ------------------------------------------------------------------
    def validate_split(self, split: WorkloadSplit) -> None:
        """Check a split fits this platform."""
        if len(split.accel_targets) != self.platform.num_accelerators:
            raise ConfigError(
                f"split has {len(split.accel_targets)} accelerator "
                f"quotas; platform has {self.platform.num_accelerators}")
        if split.total_threads > self.total_cpu_threads:
            raise ConfigError(
                f"thread allocation {split.total_threads} exceeds budget "
                f"{self.total_cpu_threads}")

    # ------------------------------------------------------------------
    def stage_times(self, split: WorkloadSplit,
                    stats_cpu: MiniBatchStats | None = None,
                    stats_accel: Sequence[MiniBatchStats] | None = None
                    ) -> StageTimes:
        """Predict all stage times for one iteration.

        Realized batch statistics may be passed in (the runtime does, per
        iteration); otherwise expected statistics from the sampling
        profile are used (pure prediction, as at compile time).
        """
        self.validate_split(split)
        plat = self.platform

        if stats_cpu is None and split.cpu_targets > 0:
            stats_cpu = self.profile.expected_stats(split.cpu_targets)
        if stats_accel is None:
            stats_accel = [
                self.profile.expected_stats(t) if t > 0 else None
                for t in split.accel_targets]

        # ---- Sampling (empirical profile; paper §V) ----
        all_stats = [s for s in ([stats_cpu] + list(stats_accel))
                     if s is not None]
        total_edges = sum(s.total_edges for s in all_stats)
        cpu_edges = total_edges * (1.0 - split.accel_sample_fraction)
        accel_edges = total_edges * split.accel_sample_fraction
        t_sc = cpu_edges / (split.sample_threads *
                            self.sampler_rate_per_thread)
        if accel_edges > 0 and plat.num_accelerators > 0:
            accel_rate = ACCEL_SAMPLE_RATE_EDGES_PER_S[
                plat.accelerator.kind]
            t_sa = accel_edges / (plat.num_accelerators * accel_rate)
        else:
            t_sa = 0.0

        # ---- Feature Loading (Eq. 7): host DDR, CPU-only ----
        total_bytes = sum(s.input_feature_bytes for s in all_stats)
        load_rate = min(split.load_threads * LOADER_THREAD_RATE,
                        plat.host_mem_bandwidth * LOADER_DDR_EFFICIENCY)
        t_load = total_bytes / load_rate

        # ---- Data Transfer (Eq. 8): per-accelerator PCIe ----
        # Transfer traffic scales with the link precision (the §VIII
        # quantization extension); loading always reads fp32 from host.
        t_trans = 0.0
        for s in stats_accel:
            if s is not None:
                nbytes = s.num_input_nodes * s.feature_dim * \
                    self.transfer_elem_bytes
                t_trans = max(t_trans, plat.pcie.transfer_time(nbytes))

        # ---- GNN Propagation (Eq. 9-12) ----
        t_tc = 0.0
        if stats_cpu is not None and split.cpu_targets > 0:
            cpu_model = CPUKernelModel(
                plat.cpu, num_threads=max(1, split.train_threads),
                max_threads=self.total_cpu_threads)
            t_tc = cpu_model.propagation(
                stats_cpu, self.dims, self.model_name).total_s
        t_ta = 0.0
        for s in stats_accel:
            if s is not None and self._accel_model is not None:
                t_ta = max(t_ta, self._accel_model.propagation(
                    s, self.dims, self.model_name).total_s)

        # ---- Synchronization (Eq. 13) ----
        model_bytes = model_size_bytes(self.dims, self.model_name,
                                       S_FEAT_BYTES)
        t_sync = 2.0 * model_bytes / plat.pcie.bandwidth

        return StageTimes(t_sample_cpu=t_sc, t_sample_accel=t_sa,
                          t_load=t_load, t_transfer=t_trans,
                          t_train_cpu=t_tc, t_train_accel=t_ta,
                          t_sync=t_sync)

    # ------------------------------------------------------------------
    def iteration_time(self, split: WorkloadSplit,
                       pipelined: bool = True) -> float:
        """Predicted T_execution of one iteration (Eq. 6)."""
        return self.stage_times(split).iteration_time(pipelined)

    def epoch_time(self, split: WorkloadSplit, train_count: int,
                   pipelined: bool = True) -> float:
        """Predicted epoch time: iterations × T_execution."""
        if split.total_targets <= 0:
            raise ConfigError("split trains no targets")
        iterations = max(1, -(-train_count // split.total_targets))
        return iterations * self.iteration_time(split, pipelined)

    def throughput(self, split: WorkloadSplit,
                   pipelined: bool = True) -> float:
        """Predicted training throughput in MTEPS (Eq. 5)."""
        stats = [self.profile.expected_stats(t)
                 for t in ((split.cpu_targets,) + split.accel_targets)
                 if t > 0]
        total_edges = sum(s.total_edges for s in stats)
        return throughput_mteps(total_edges,
                                self.iteration_time(split, pipelined))
