"""Logging helpers.

The library never configures the root logger; it only creates namespaced
children under ``"repro"`` so applications keep full control of handlers.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"runtime.drm"``. ``None`` returns the package
        root logger.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


@contextmanager
def log_duration(logger: logging.Logger, label: str,
                 level: int = logging.DEBUG) -> Iterator[None]:
    """Context manager that logs wall-clock duration of the enclosed block."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s took %.6f s", label, elapsed)


def enable_debug_logging() -> None:
    """Attach a stderr handler at DEBUG level to the package root logger.

    Convenience for examples and ad-hoc debugging; idempotent.
    """
    logger = get_logger()
    if any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        logger.setLevel(logging.DEBUG)
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
