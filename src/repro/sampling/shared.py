"""Worker-side sampler construction over shared memory.

HyScale-GNN keeps every CPU core busy with sampling while trainers
consume batches (paper §III-A); DistDGL-style systems realize that by
pushing neighbor sampling *into* the worker processes, each with its
own RNG stream. This module is the sampling side of that recipe:

* :func:`worker_stream_seed` — deterministic, **independent** per-worker
  seeds derived through :class:`numpy.random.SeedSequence`. Worker
  ``k``'s stream depends only on ``(base_seed, k)``, never on how many
  workers run, so adding a worker leaves every existing stream
  untouched (the property the unit suite pins).
* :func:`build_worker_sampler` — rebuild the session's sampler family
  inside a worker, against the CSR topology and train-id set mapped
  zero-copy from a :class:`~repro.runtime.shm.SharedFeatureStore`. The
  family is resolved through the ordinary registry, so third-party
  samplers inherit worker-side execution for free.

Every registered sampler is already picklable in *spec* form — the
:class:`~repro.runtime.shm.SharedSamplerSpec` carries the
:class:`~repro.config.TrainingConfig` plus the feature dim, and the
topology travels in the shared segment, so nothing graph-sized ever
crosses a pipe.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from .base import Sampler


def worker_stream_seed(base_seed: int, worker_index: int) -> int:
    """Derive worker ``worker_index``'s sampler seed from ``base_seed``.

    Uses ``SeedSequence([base_seed, worker_index])`` so the derived
    streams are statistically independent of each other *and* of the
    parent session's streams (which use ``base_seed`` directly and
    ``base_seed + 1/2`` for the profile/plan) — not an ad-hoc
    ``base + index`` offset, which would collide with them.
    """
    if worker_index < 0:
        raise SamplingError("worker_index must be non-negative")
    seq = np.random.SeedSequence([int(base_seed), int(worker_index)])
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def build_worker_sampler(store, worker_index: int) -> Sampler:
    """Rebuild the session's sampler inside a worker process.

    ``store`` is an attached :class:`~repro.runtime.shm.SharedFeatureStore`
    whose manifest carries a :class:`~repro.runtime.shm.SharedSamplerSpec`;
    the sampler samples directly against the shared ``indptr`` /
    ``indices`` / ``train_ids`` views (zero-copy), seeded with this
    worker's independent stream.
    """
    from . import build_sampler  # lazy: avoid import cycle at load

    spec = store.manifest.sampler
    if spec is None:
        raise SamplingError(
            "shared store carries no sampler spec: create() the store "
            "with sampler_spec=... to run worker-side sampling")
    cfg = spec.train_cfg.with_updates(
        seed=worker_stream_seed(spec.train_cfg.seed, worker_index))
    return build_sampler(cfg.sampler, store.csr_graph(),
                         store.train_ids, cfg, spec.feature_dim)
