"""GraphSAINT samplers (paper cite [29], Zeng et al., ICLR 2020).

GraphSAINT trains on *induced subgraphs* rather than layered neighborhoods:
one vertex set ``S`` is drawn per batch and every GNN layer runs on the same
induced graph ``G[S]``. We express such a batch in the common
:class:`~repro.sampling.base.MiniBatch` format by repeating the induced
block for every layer, with identical node lists — so the rest of the
system (trainers, kernel models, runtime) is sampler-agnostic, exactly the
property the paper's Sampler component needs ("executing a sampling
algorithm [2], [29]").

Three samplers from the GraphSAINT paper are provided: node, edge, and
random-walk.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from .base import LayerBlock, MiniBatch, Sampler
from .neighbor import _gather_all_neighbors


def induced_block(graph: CSRGraph,
                  nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Edges of ``G[nodes]`` in local coordinates (vectorized).

    Returns ``(src_local, dst_local)``; ``nodes`` must be unique.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    order = np.argsort(nodes, kind="stable")
    sorted_nodes = nodes[order]
    seg, neigh = _gather_all_neighbors(graph.indptr, graph.indices, nodes)
    pos = np.searchsorted(sorted_nodes, neigh)
    pos = np.clip(pos, 0, sorted_nodes.size - 1)
    member = sorted_nodes[pos] == neigh
    # Edge direction: graph edge (nodes[seg] -> neigh); in the block the
    # message flows src=neigh's local id ... we keep graph direction:
    # src = nodes[seg] (source of the out-edge), dst = neigh.
    src_local = seg[member]
    dst_local = order[pos[member]]
    return src_local, dst_local


def _subgraph_batch(graph: CSRGraph, nodes: np.ndarray, num_layers: int,
                    feature_dim: int) -> MiniBatch:
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size == 0:
        raise SamplingError("empty subgraph batch")
    src_local, dst_local = induced_block(graph, nodes)
    block = LayerBlock(src_local=src_local, dst_local=dst_local,
                       num_src=nodes.size, num_dst=nodes.size)
    return MiniBatch(node_ids=tuple([nodes] * (num_layers + 1)),
                     blocks=tuple([block] * num_layers),
                     feature_dim=feature_dim)


class _SaintBase(Sampler):
    """Shared plumbing for the three GraphSAINT samplers."""

    def __init__(self, graph: CSRGraph, train_ids: np.ndarray,
                 num_layers: int, feature_dim: int, seed: int = 0) -> None:
        if num_layers < 1:
            raise SamplingError("num_layers must be >= 1")
        self.graph = graph
        self.train_ids = np.asarray(train_ids, dtype=np.int64)
        if self.train_ids.size == 0:
            raise SamplingError("train_ids must be non-empty")
        self.num_layers = num_layers
        self.feature_dim = int(feature_dim)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def sample(self, target_ids: np.ndarray) -> MiniBatch:
        """Induce the subgraph on the given vertex set."""
        return _subgraph_batch(self.graph, np.asarray(target_ids),
                               self.num_layers, self.feature_dim)

    def _draw(self, minibatch_size: int) -> np.ndarray:
        raise NotImplementedError

    def epoch_batches(self, minibatch_size: int,
                      seed: int | None = None) -> Iterator[MiniBatch]:
        """Yield enough subgraph batches to cover the train set in
        expectation (``ceil(|train| / minibatch_size)`` draws)."""
        if minibatch_size <= 0:
            raise SamplingError("minibatch_size must be positive")
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        n_batches = max(1, -(-self.train_ids.size // minibatch_size))
        for _ in range(n_batches):
            yield self.sample(self._draw(minibatch_size))


class SaintNodeSampler(_SaintBase):
    """Node sampler: draw vertices with probability ∝ degree."""

    def _draw(self, minibatch_size: int) -> np.ndarray:
        degs = self.graph.out_degrees.astype(np.float64) + 1.0
        p = degs / degs.sum()
        return self._rng.choice(self.graph.num_vertices,
                                size=min(minibatch_size,
                                         self.graph.num_vertices),
                                replace=False, p=p)


class SaintEdgeSampler(_SaintBase):
    """Edge sampler: draw edges uniformly; batch = endpoint union."""

    def _draw(self, minibatch_size: int) -> np.ndarray:
        m = self.graph.num_edges
        if m == 0:
            raise SamplingError("graph has no edges")
        n_edges = max(1, minibatch_size // 2)
        eids = self._rng.integers(0, m, size=n_edges)
        dst = self.graph.indices[eids]
        # Recover sources by searching indptr.
        src = np.searchsorted(self.graph.indptr, eids, side="right") - 1
        return np.union1d(src, dst)


class SaintRWSampler(_SaintBase):
    """Random-walk sampler: roots + fixed-length uniform walks.

    Parameters
    ----------
    walk_length:
        Steps per walk (GraphSAINT default 2-4).
    """

    def __init__(self, graph: CSRGraph, train_ids: np.ndarray,
                 num_layers: int, feature_dim: int, seed: int = 0,
                 walk_length: int = 3) -> None:
        super().__init__(graph, train_ids, num_layers, feature_dim, seed)
        if walk_length < 1:
            raise SamplingError("walk_length must be >= 1")
        self.walk_length = walk_length

    def _draw(self, minibatch_size: int) -> np.ndarray:
        n_roots = max(1, minibatch_size // (self.walk_length + 1))
        roots = self._rng.choice(self.train_ids, size=min(
            n_roots, self.train_ids.size), replace=False)
        visited = [roots]
        cur = roots
        indptr, indices = self.graph.indptr, self.graph.indices
        for _ in range(self.walk_length):
            deg = indptr[cur + 1] - indptr[cur]
            alive = deg > 0
            nxt = cur.copy()
            if alive.any():
                offs = (self._rng.random(int(alive.sum()))
                        * deg[alive]).astype(np.int64)
                nxt[alive] = indices[indptr[cur[alive]] + offs]
            visited.append(nxt)
            cur = nxt
        return np.unique(np.concatenate(visited))
