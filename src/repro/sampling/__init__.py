"""Mini-batch samplers (paper §II-B, §III-A "Mini-batch Sampler").

The Mini-batch Sampler extracts a computational graph
``{G(V^l, E^l) : 1 <= l <= L}`` from the full topology each iteration. Two
sampler families from the paper are implemented:

* :class:`NeighborSampler` — GraphSAGE neighbor sampling [2], the sampler
  used in all paper experiments (fanouts 25, 10);
* the GraphSAINT family [29] (:class:`SaintNodeSampler`,
  :class:`SaintEdgeSampler`, :class:`SaintRWSampler`) — subgraph sampling.

Both produce :class:`MiniBatch` objects consumed by the GNN trainers and by
the hardware kernel cost models.

Sampler registry
----------------
The runtime never hard-codes a sampler class: it resolves
``TrainingConfig.sampler`` through :func:`build_sampler`, so every
execution backend (virtual-time, threaded, and future ones) accepts any
registered family. Third-party samplers join via :func:`register_sampler`;
a builder receives ``(graph, train_ids, train_cfg, feature_dim)`` and must
return a :class:`Sampler`.
"""

from typing import Callable

from ..errors import ConfigError, SamplingError
from ..registry import Registry
from .base import LayerBlock, MiniBatch, MiniBatchStats, Sampler
from .neighbor import NeighborSampler
from .saint import SaintEdgeSampler, SaintNodeSampler, SaintRWSampler
from .full import FullBatchSampler
from .shared import build_worker_sampler, worker_stream_seed

#: name -> builder(graph, train_ids, train_cfg, feature_dim) -> Sampler.
#: A :class:`~repro.registry.Registry` (the unified registry
#: discipline), dict-compatible for legacy call sites.
SAMPLER_REGISTRY: Registry = Registry("sampler")


def register_sampler(name: str,
                     builder: Callable[..., Sampler]) -> None:
    """Register a sampler family under ``name``.

    Re-registering an existing name replaces the builder (useful for
    tests monkey-patching a family).
    """
    if not name:
        raise SamplingError("sampler name must be non-empty")
    SAMPLER_REGISTRY.register(name, builder)


def get(name: str) -> Callable[..., Sampler]:
    """Look up a registered sampler builder by name.

    Unknown names raise :class:`~repro.errors.ConfigError` listing every
    registered family — the same contract as the execution-backend
    registry's ``get_backend``.
    """
    return SAMPLER_REGISTRY.get(name)


def available_samplers() -> tuple[str, ...]:
    """Registered sampler family names, sorted (the unified
    ``available_*`` surface shared with backends and kernel tiers)."""
    return SAMPLER_REGISTRY.available()


def build_sampler(name: str, graph, train_ids, train_cfg,
                  feature_dim: int) -> Sampler:
    """Construct the sampler family ``name`` for the given workload.

    ``train_cfg`` supplies fanouts / layer count / seed; unknown names
    raise :class:`~repro.errors.ConfigError` listing the registry
    (via :func:`get`).
    """
    return get(name)(graph, train_ids, train_cfg, feature_dim)


register_sampler(
    "neighbor",
    lambda graph, ids, cfg, fdim: NeighborSampler(
        graph, ids, cfg.fanouts, fdim, seed=cfg.seed))
register_sampler(
    "saint-node",
    lambda graph, ids, cfg, fdim: SaintNodeSampler(
        graph, ids, cfg.num_layers, fdim, seed=cfg.seed))
register_sampler(
    "saint-edge",
    lambda graph, ids, cfg, fdim: SaintEdgeSampler(
        graph, ids, cfg.num_layers, fdim, seed=cfg.seed))
register_sampler(
    "saint-rw",
    lambda graph, ids, cfg, fdim: SaintRWSampler(
        graph, ids, cfg.num_layers, fdim, seed=cfg.seed))
register_sampler(
    "full",
    lambda graph, ids, cfg, fdim: FullBatchSampler(
        graph, ids, cfg.num_layers, fdim))

__all__ = [
    "LayerBlock",
    "MiniBatch",
    "MiniBatchStats",
    "Sampler",
    "NeighborSampler",
    "SaintNodeSampler",
    "SaintEdgeSampler",
    "SaintRWSampler",
    "FullBatchSampler",
    "SAMPLER_REGISTRY",
    "register_sampler",
    "get",
    "available_samplers",
    "build_sampler",
    "build_worker_sampler",
    "worker_stream_seed",
]
