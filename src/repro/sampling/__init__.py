"""Mini-batch samplers (paper §II-B, §III-A "Mini-batch Sampler").

The Mini-batch Sampler extracts a computational graph
``{G(V^l, E^l) : 1 <= l <= L}`` from the full topology each iteration. Two
sampler families from the paper are implemented:

* :class:`NeighborSampler` — GraphSAGE neighbor sampling [2], the sampler
  used in all paper experiments (fanouts 25, 10);
* the GraphSAINT family [29] (:class:`SaintNodeSampler`,
  :class:`SaintEdgeSampler`, :class:`SaintRWSampler`) — subgraph sampling.

Both produce :class:`MiniBatch` objects consumed by the GNN trainers and by
the hardware kernel cost models.
"""

from .base import LayerBlock, MiniBatch, MiniBatchStats, Sampler
from .neighbor import NeighborSampler
from .saint import SaintEdgeSampler, SaintNodeSampler, SaintRWSampler
from .full import FullBatchSampler

__all__ = [
    "LayerBlock",
    "MiniBatch",
    "MiniBatchStats",
    "Sampler",
    "NeighborSampler",
    "SaintNodeSampler",
    "SaintEdgeSampler",
    "SaintRWSampler",
    "FullBatchSampler",
]
