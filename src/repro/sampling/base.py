"""Mini-batch data structures and the sampler interface.

Layer convention (paper Table I): a mini-batch for an L-layer GNN holds node
sets ``V^0 ⊇ V^1 ⊇ ... ⊇ V^L`` (``V^L`` = targets, ``V^0`` = input vertices
whose features are loaded) and edge sets ``E^l`` connecting ``V^{l-1}`` to
``V^l``. :class:`LayerBlock` ``l`` (0-indexed as ``blocks[l-1]``) stores
``E^l`` with *local* indices: ``src_local`` indexes into ``node_ids[l-1]``,
``dst_local`` into ``node_ids[l]``.

Alignment invariant: ``node_ids[l-1][:len(node_ids[l])] == node_ids[l]`` —
the destination vertices of a layer are the first entries of its source
list, so hidden states can be sliced instead of re-gathered (the standard
"block" layout, also what PyG/DGL produce).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..config import S_FEAT_BYTES
from ..errors import SamplingError


@dataclass(frozen=True)
class LayerBlock:
    """Edges of one GNN layer in local coordinates.

    Attributes
    ----------
    src_local:
        ``(num_edges,)`` indices into the previous layer's node list.
    dst_local:
        ``(num_edges,)`` indices into this layer's node list.
    num_src:
        Size of the previous layer's node list ``|V^{l-1}|``.
    num_dst:
        Size of this layer's node list ``|V^l|``.
    """

    src_local: np.ndarray
    dst_local: np.ndarray
    num_src: int
    num_dst: int

    def __post_init__(self) -> None:
        if self.src_local.shape != self.dst_local.shape:
            raise SamplingError("src_local and dst_local must match")
        if self.src_local.size:
            if self.src_local.min() < 0 or self.src_local.max() >= \
                    self.num_src:
                raise SamplingError("src_local out of range")
            if self.dst_local.min() < 0 or self.dst_local.max() >= \
                    self.num_dst:
                raise SamplingError("dst_local out of range")
        if self.num_dst > self.num_src:
            raise SamplingError(
                "layer destinations must be a prefix of sources "
                f"(num_dst={self.num_dst} > num_src={self.num_src})")

    @property
    def num_edges(self) -> int:
        """``|E^l|``."""
        return int(self.src_local.size)


@dataclass(frozen=True)
class MiniBatchStats:
    """Size statistics of a mini-batch — the inputs to the timing models.

    These are exactly the quantities in the paper's performance model
    (Eq. 5-13): ``|V^l|``, ``|E^l|``, and derived traffic sizes.
    """

    num_nodes_per_layer: tuple[int, ...]   # |V^0| ... |V^L|
    num_edges_per_layer: tuple[int, ...]   # |E^1| ... |E^L|
    feature_dim: int                        # f^0

    @property
    def num_layers(self) -> int:
        return len(self.num_edges_per_layer)

    @property
    def num_input_nodes(self) -> int:
        """``|V^0|`` — vertices whose features must be loaded."""
        return self.num_nodes_per_layer[0]

    @property
    def num_targets(self) -> int:
        """``|V^L]``."""
        return self.num_nodes_per_layer[-1]

    @property
    def total_edges(self) -> int:
        """Σ_l |E^l| — the MTEPS numerator contribution (paper Eq. 5)."""
        return sum(self.num_edges_per_layer)

    @property
    def input_feature_bytes(self) -> int:
        """``|V^0| × f^0 × S_feat`` — Feature Loading / Transfer traffic."""
        return self.num_input_nodes * self.feature_dim * S_FEAT_BYTES

    def scaled(self, factor: float) -> "MiniBatchStats":
        """Stats for a hypothetical batch ``factor`` times this size.

        The DRM engine re-sizes trainer workloads; all per-batch quantities
        scale near-linearly with target count in neighbor sampling.
        """
        if factor <= 0:
            raise SamplingError("scale factor must be positive")
        return MiniBatchStats(
            num_nodes_per_layer=tuple(
                max(1, int(round(v * factor)))
                for v in self.num_nodes_per_layer),
            num_edges_per_layer=tuple(
                max(1, int(round(e * factor)))
                for e in self.num_edges_per_layer),
            feature_dim=self.feature_dim,
        )


@dataclass(frozen=True)
class MiniBatch:
    """A sampled computational graph plus the data needed to train on it.

    Attributes
    ----------
    node_ids:
        ``L + 1`` arrays of *global* vertex ids, input side first
        (``node_ids[0] == V^0``, ``node_ids[-1] == V^L`` = targets).
    blocks:
        ``L`` :class:`LayerBlock` objects; ``blocks[l-1]`` holds ``E^l``.
    feature_dim:
        ``f^0`` of the dataset (for stats; features themselves are attached
        later by the Feature Loader).
    """

    node_ids: tuple[np.ndarray, ...]
    blocks: tuple[LayerBlock, ...]
    feature_dim: int

    def __post_init__(self) -> None:
        if len(self.node_ids) != len(self.blocks) + 1:
            raise SamplingError(
                "need exactly one more node list than blocks")
        for l, blk in enumerate(self.blocks):
            if blk.num_src != self.node_ids[l].size:
                raise SamplingError(
                    f"block {l}: num_src != |node_ids[{l}]|")
            if blk.num_dst != self.node_ids[l + 1].size:
                raise SamplingError(
                    f"block {l}: num_dst != |node_ids[{l + 1}]|")
        # Alignment invariant: destinations are a prefix of sources.
        for l in range(len(self.blocks)):
            nxt, cur = self.node_ids[l + 1], self.node_ids[l]
            if not np.array_equal(cur[:nxt.size], nxt):
                raise SamplingError(
                    f"node_ids[{l + 1}] must be a prefix of node_ids[{l}]")

    @property
    def num_layers(self) -> int:
        """Number of GNN layers L."""
        return len(self.blocks)

    @property
    def targets(self) -> np.ndarray:
        """Global ids of the batch's target vertices (``V^L``)."""
        return self.node_ids[-1]

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose features the Feature Loader must gather."""
        return self.node_ids[0]

    def stats(self) -> MiniBatchStats:
        """Size statistics for the timing models."""
        return MiniBatchStats(
            num_nodes_per_layer=tuple(ids.size for ids in self.node_ids),
            num_edges_per_layer=tuple(b.num_edges for b in self.blocks),
            feature_dim=self.feature_dim,
        )

    def validate(self) -> None:
        """Re-run all construction checks (post-init already enforces them;
        this re-checks after any external mutation of the arrays)."""
        MiniBatch(self.node_ids, self.blocks, self.feature_dim)


class Sampler(abc.ABC):
    """Produces :class:`MiniBatch` objects from a graph.

    Samplers are deterministic given their seed and are restartable:
    :meth:`epoch_batches` yields one epoch's worth of batches in a shuffled
    order; :meth:`sample` draws a single batch for ad-hoc use.
    """

    @abc.abstractmethod
    def sample(self, target_ids: np.ndarray) -> MiniBatch:
        """Build the computational graph for the given target vertices."""

    @abc.abstractmethod
    def epoch_batches(self, minibatch_size: int,
                      seed: int | None = None) -> Iterator[MiniBatch]:
        """Yield mini-batches covering the training set once."""


def union_preserving_order(base: np.ndarray,
                           extra: np.ndarray) -> np.ndarray:
    """Return ``base`` followed by the unique new elements of ``extra``.

    ``base`` must already be duplicate-free; order of ``base`` is preserved
    exactly (this is what makes the prefix-alignment invariant hold).
    """
    if base.size == 0:
        return np.unique(extra)
    combined = np.concatenate([base, extra])
    _, first_idx = np.unique(combined, return_index=True)
    first_idx.sort()
    result = combined[first_idx]
    # np.unique+sort keeps first occurrences in original order; base entries
    # all occur first so they form the prefix.
    return result


def local_index_of(global_ids: np.ndarray,
                   universe: np.ndarray) -> np.ndarray:
    """Map ``global_ids`` to their positions in ``universe``.

    ``universe`` need not be sorted; a sorted view is built internally.
    Raises if any id is missing.
    """
    order = np.argsort(universe, kind="stable")
    sorted_universe = universe[order]
    pos = np.searchsorted(sorted_universe, global_ids)
    if pos.size and (pos >= universe.size).any():
        raise SamplingError("id not present in universe")
    if pos.size and not np.array_equal(sorted_universe[pos], global_ids):
        raise SamplingError("id not present in universe")
    return order[pos]
