"""GraphSAGE neighbor sampler (paper [2]; the sampler of all experiments).

Sampling proceeds target-side first: starting from the batch targets
``V^L``, each hop ``l = L..1`` draws up to ``fanout[L - l]`` neighbors of
every vertex in ``V^l``, forming ``E^l`` and ``V^{l-1} = V^l ∪ sampled``.

Vectorization strategy (no per-vertex Python loops):

* vertices with degree ``<= fanout`` contribute *all* their edges (exact
  without-replacement semantics);
* vertices with degree ``> fanout`` draw ``fanout`` neighbor offsets with
  replacement in one 2-D array op, then duplicate ``(src, dst)`` pairs are
  coalesced. For ``degree >> fanout`` the expected duplicate loss is
  ``~fanout² / (2·degree)`` — negligible, and it never biases aggregation
  because duplicates are removed rather than double-counted.

The per-hop edge budget therefore matches the paper's model:
``|E^l| ≈ Σ_{v ∈ V^l} min(deg(v), fanout)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from .base import (
    LayerBlock,
    MiniBatch,
    Sampler,
    local_index_of,
    union_preserving_order,
)


def _gather_all_neighbors(indptr: np.ndarray, indices: np.ndarray,
                          nodes: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
    """All (position-in-`nodes`, neighbor) pairs, fully vectorized."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return (np.zeros(0, dtype=np.int64),) * 2
    seg = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
    seg_start = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - seg_start
    neigh = indices[starts[seg] + within]
    return seg, neigh


def _sample_capped_neighbors(indptr: np.ndarray, indices: np.ndarray,
                             nodes: np.ndarray, fanout: int,
                             rng: np.random.Generator
                             ) -> tuple[np.ndarray, np.ndarray]:
    """(position, neighbor) pairs with per-node cap ``fanout``."""
    deg = indptr[nodes + 1] - indptr[nodes]
    small = deg <= fanout

    seg_parts: list[np.ndarray] = []
    neigh_parts: list[np.ndarray] = []

    small_nodes = nodes[small]
    if small_nodes.size:
        seg_s, neigh_s = _gather_all_neighbors(indptr, indices, small_nodes)
        # Map back to positions in the original `nodes` array.
        pos_small = np.flatnonzero(small)
        seg_parts.append(pos_small[seg_s])
        neigh_parts.append(neigh_s)

    big_mask = ~small
    big_nodes = nodes[big_mask]
    if big_nodes.size:
        deg_big = deg[big_mask].astype(np.float64)
        offs = (rng.random((big_nodes.size, fanout))
                * deg_big[:, None]).astype(np.int64)
        neigh_b = indices[indptr[big_nodes][:, None] + offs]
        pos_big = np.flatnonzero(big_mask)
        seg_b = np.repeat(pos_big, fanout)
        # Coalesce duplicate (dst, src) pairs drawn with replacement.
        keys = seg_b * np.int64(indices.size + 1) + neigh_b.ravel()
        uniq, first = np.unique(keys, return_index=True)
        seg_parts.append(seg_b[first])
        neigh_parts.append(neigh_b.ravel()[first])

    if not seg_parts:
        return (np.zeros(0, dtype=np.int64),) * 2
    return np.concatenate(seg_parts), np.concatenate(neigh_parts)


class NeighborSampler(Sampler):
    """Layered uniform neighbor sampler.

    Parameters
    ----------
    graph:
        Topology to sample from (symmetrize first for undirected semantics).
    train_ids:
        Global ids eligible as batch targets.
    fanouts:
        Per-hop sample sizes, target-side first (paper: ``(25, 10)`` — but
        note the paper applies 25 at the hop nearest the input; order only
        permutes |E^l| between layers, and we follow the PyG convention of
        target-side first).
    feature_dim:
        ``f^0`` recorded on produced batches.
    seed:
        Base seed; each sampled batch advances the stream deterministically.
    include_targets_in_frontier:
        Keep ``V^l ⊆ V^{l-1}`` (needed by both GCN's self-aggregation and
        SAGE's concat-with-self). Always true for the paper's models.
    """

    def __init__(self, graph: CSRGraph, train_ids: np.ndarray,
                 fanouts: tuple[int, ...], feature_dim: int,
                 seed: int = 0,
                 include_targets_in_frontier: bool = True) -> None:
        if len(fanouts) == 0 or any(f <= 0 for f in fanouts):
            raise SamplingError("fanouts must be positive and non-empty")
        train_ids = np.asarray(train_ids, dtype=np.int64)
        if train_ids.size == 0:
            raise SamplingError("train_ids must be non-empty")
        if train_ids.min() < 0 or train_ids.max() >= graph.num_vertices:
            raise SamplingError("train id out of range")
        self.graph = graph
        self.train_ids = train_ids
        self.fanouts = tuple(int(f) for f in fanouts)
        self.feature_dim = int(feature_dim)
        self.seed = seed
        self.include_targets = include_targets_in_frontier
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, target_ids: np.ndarray) -> MiniBatch:
        """Build the L-hop computational graph for ``target_ids``."""
        targets = np.asarray(target_ids, dtype=np.int64)
        if targets.size == 0:
            raise SamplingError("cannot sample an empty batch")
        if np.unique(targets).size != targets.size:
            raise SamplingError("target ids must be unique")

        indptr, indices = self.graph.indptr, self.graph.indices
        node_lists: list[np.ndarray] = [targets]
        raw_edges: list[tuple[np.ndarray, np.ndarray]] = []

        frontier = targets
        for fanout in self.fanouts:
            seg, neigh = _sample_capped_neighbors(
                indptr, indices, frontier, fanout, self._rng)
            if self.include_targets:
                prev = union_preserving_order(frontier, neigh)
            else:
                prev = union_preserving_order(frontier[:0], neigh)
            raw_edges.append((neigh, frontier[seg]))
            node_lists.append(prev)
            frontier = prev

        # node_lists is target-side first; MiniBatch wants input-side first.
        node_ids = tuple(reversed(node_lists))
        blocks: list[LayerBlock] = []
        # raw_edges[h] was sampled at hop h (h=0 nearest targets); layer
        # l = L - h in paper numbering, i.e. blocks index L-1-h.
        L = len(self.fanouts)
        for h, (src_g, dst_g) in enumerate(raw_edges):
            src_layer = node_ids[L - 1 - h]
            dst_layer = node_ids[L - h]
            src_local = local_index_of(src_g, src_layer)
            dst_local = local_index_of(dst_g, dst_layer)
            blocks.append(LayerBlock(
                src_local=src_local, dst_local=dst_local,
                num_src=src_layer.size, num_dst=dst_layer.size))
        blocks.reverse()
        return MiniBatch(node_ids=node_ids, blocks=tuple(blocks),
                         feature_dim=self.feature_dim)

    # ------------------------------------------------------------------
    def epoch_batches(self, minibatch_size: int,
                      seed: int | None = None) -> Iterator[MiniBatch]:
        """Shuffle the train set and yield batches of ``minibatch_size``.

        The final short batch is kept (like PyG's default) so every train
        vertex is visited once per epoch.
        """
        if minibatch_size <= 0:
            raise SamplingError("minibatch_size must be positive")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        perm = rng.permutation(self.train_ids)
        for start in range(0, perm.size, minibatch_size):
            yield self.sample(perm[start:start + minibatch_size])
