"""Full-graph "sampler".

Yields a single batch containing every vertex and every edge at each layer.
Used for exactness tests (mini-batch models must agree with full-graph
computation on tiny graphs) and as the degenerate case of the pipeline.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import SamplingError
from ..graph.csr import CSRGraph
from .base import LayerBlock, MiniBatch, Sampler


class FullBatchSampler(Sampler):
    """Produces the whole graph as one mini-batch.

    The node list at every layer is ``arange(num_vertices)`` and each block
    holds all edges, so layer semantics match a non-sampled GNN exactly.
    Target set is still ``train_ids`` for loss-masking purposes; callers
    mask outputs with :attr:`target_mask`.
    """

    def __init__(self, graph: CSRGraph, train_ids: np.ndarray,
                 num_layers: int, feature_dim: int) -> None:
        if num_layers < 1:
            raise SamplingError("num_layers must be >= 1")
        self.graph = graph
        self.train_ids = np.asarray(train_ids, dtype=np.int64)
        self.num_layers = num_layers
        self.feature_dim = int(feature_dim)

    @property
    def target_mask(self) -> np.ndarray:
        """Boolean mask of train vertices within the full batch order."""
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        mask[self.train_ids] = True
        return mask

    def sample(self, target_ids: np.ndarray | None = None) -> MiniBatch:
        """Return the full graph as a batch (``target_ids`` is ignored —
        full-batch training always computes embeddings for every vertex)."""
        n = self.graph.num_vertices
        all_ids = np.arange(n, dtype=np.int64)
        src, dst = self.graph.edges()
        block = LayerBlock(src_local=src, dst_local=dst,
                           num_src=n, num_dst=n)
        return MiniBatch(
            node_ids=tuple([all_ids] * (self.num_layers + 1)),
            blocks=tuple([block] * self.num_layers),
            feature_dim=self.feature_dim)

    def epoch_batches(self, minibatch_size: int,
                      seed: int | None = None) -> Iterator[MiniBatch]:
        """Yield the single full batch (``minibatch_size`` is ignored)."""
        yield self.sample()
