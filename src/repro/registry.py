"""One registry discipline for every extension seam.

The library grew three registries independently — execution backends
(:mod:`repro.runtime.backends`), sampler families
(:mod:`repro.sampling`) and kernel tiers (:mod:`repro.kernels`) — and
with them three slightly different lookup surfaces and error spellings.
This module is the single implementation they now share:

* :class:`Registry` — an ordered name → object mapping with the
  canonical ``register`` / ``get`` / ``available`` surface;
* one error contract: an unknown name raises
  :class:`~repro.errors.ConfigError` whose message is
  ``unknown <kind> <name!r>; registered: [...]`` — the fix is always in
  the traceback, and the spelling can no longer drift between seams
  (``tests/unit/test_registries.py`` pins it for all three);
* dict compatibility: :class:`Registry` is a
  :class:`~collections.abc.MutableMapping`, so historical call sites
  that treated the registries as plain dicts (``name in BACKENDS``,
  ``sorted(SAMPLER_REGISTRY)``, direct item assignment in tests) keep
  working unchanged.

The per-seam modules keep their thin domain wrappers
(``register_backend`` validates the class contract,
``register_sampler`` validates builders, the kernel dispatchers resolve
tier ladders) — those wrappers now delegate the storage and the lookup
error to one place.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Callable, Iterator, TypeVar

from .errors import ConfigError

T = TypeVar("T")


class Registry(MutableMapping):
    """An ordered name → object registry with uniform error messages.

    Parameters
    ----------
    kind:
        Human-readable noun for error messages (``"execution
        backend"``, ``"sampler"``, ``"kernel tier"``). Appears verbatim
        in the unknown-name error.
    validate:
        Optional ``(name, obj) -> None`` hook run before every
        registration — the seam's own contract checks (raise to
        reject).
    """

    def __init__(self, kind: str,
                 validate: Callable[[str, object], None] | None = None
                 ) -> None:
        if not kind:
            raise ConfigError("registry kind must be non-empty")
        self.kind = kind
        self._validate = validate
        self._entries: dict[str, object] = {}

    # ------------------------------------------------------------------
    # The canonical surface
    # ------------------------------------------------------------------
    def register(self, name: str, obj: T) -> T:
        """Register ``obj`` under ``name`` (replacing any previous
        entry — how tests and out-of-tree code override a shipped
        implementation). Returns ``obj`` unchanged so wrappers can be
        used as decorators."""
        if not name:
            raise ConfigError(
                f"{self.kind} needs a non-empty name; registered: "
                f"{sorted(self._entries)}")
        if self._validate is not None:
            self._validate(name, obj)
        self._entries[name] = obj
        return obj

    _MISSING = object()

    def get(self, name: str, default=_MISSING):  # type: ignore[override]
        """Look up ``name``; unknown names raise the uniform
        :class:`~repro.errors.ConfigError` listing every registered
        name. An explicit ``default`` restores dict semantics (returned
        instead of raising) for callers probing optional entries."""
        if name in self._entries:
            return self._entries[name]
        if default is not Registry._MISSING:
            return default
        raise self.unknown_error(name)

    def available(self) -> tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._entries))

    def unknown_error(self, name: str) -> ConfigError:
        """The uniform unknown-name error (shared spelling across every
        seam): ``unknown <kind> <name!r>; registered: [...]``."""
        return ConfigError(
            f"unknown {self.kind} {name!r}; registered: "
            f"{sorted(self._entries)}")

    # ------------------------------------------------------------------
    # MutableMapping (dict-compatible legacy surface)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str):
        # Plain indexing keeps KeyError semantics (callers like
        # ``BACKENDS[name]`` inside try/except KeyError predate the
        # unified surface); ``get`` is the uniform-error path.
        return self._entries[name]

    def __setitem__(self, name: str, obj) -> None:
        self.register(name, obj)

    def __delitem__(self, name: str) -> None:
        del self._entries[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Registry {self.kind!r} "
                f"[{', '.join(sorted(self._entries))}]>")
