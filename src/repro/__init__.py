"""HyScale-GNN reproduction library.

A production-quality Python reproduction of *HyScale-GNN: A Scalable Hybrid
GNN Training System on Single-Node Heterogeneous Architecture* (Lin &
Prasanna, IPDPS 2023). The package provides:

* :mod:`repro.graph` — host-resident CSR graph substrate + scaled synthetic
  stand-ins for the paper's datasets;
* :mod:`repro.sampling` — neighbor / GraphSAINT mini-batch samplers;
* :mod:`repro.nn` — from-scratch NumPy GNN layers (GCN, GraphSAGE) with
  exact manual backward passes;
* :mod:`repro.hw` — declarative device specs (paper Table II) and
  traffic/compute kernel cost models (CPU, GPU, FPGA scatter-gather +
  systolic design of §IV-C);
* :mod:`repro.sim` — discrete-event engine and timeline tracing;
* :mod:`repro.perfmodel` — the paper's analytic performance model (Eq. 5-13);
* :mod:`repro.runtime` — the hybrid training system itself: the
  processor-accelerator protocol, two-stage feature prefetching, the DRM
  engine (Algorithm 1), and the top-level :class:`~repro.runtime.HyScaleGNN`;
* :mod:`repro.baselines` — the multi-GPU PyG-style baseline and mechanistic
  models of PaGraph, P3, and DistDGLv2 for Tables VI/VII.

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from __future__ import annotations

from .config import (
    ABLATION_PRESETS,
    S_FEAT_BYTES,
    SystemConfig,
    TrainingConfig,
    layer_dims,
)
from .errors import (
    CapacityError,
    ConfigError,
    ConvergenceError,
    DeviceError,
    GraphError,
    ProtocolError,
    ReproError,
    SamplingError,
    ShapeError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TrainingConfig",
    "SystemConfig",
    "ABLATION_PRESETS",
    "S_FEAT_BYTES",
    "layer_dims",
    "ReproError",
    "ConfigError",
    "GraphError",
    "SamplingError",
    "ShapeError",
    "DeviceError",
    "CapacityError",
    "ProtocolError",
    "SimulationError",
    "ConvergenceError",
]
