"""Shared plumbing for the comparator systems."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import TrainingConfig, layer_dims
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..perfmodel.sampling_profile import project_full_scale_stats
from ..sampling.base import MiniBatchStats


@dataclass(frozen=True)
class BaselineReport:
    """Epoch-level outcome of a comparator simulation."""

    system: str
    dataset: str
    model: str
    epoch_time_s: float
    iterations: int
    iteration_time_s: float
    stage_breakdown: dict[str, float] = field(default_factory=dict)

    def normalized_epoch_time(self, peak_tflops: float) -> float:
        """Table VII metric: epoch seconds × platform peak TFLOPS."""
        if peak_tflops <= 0:
            raise ConfigError("peak_tflops must be positive")
        return self.epoch_time_s * peak_tflops


def batch_stats_for(dataset: GraphDataset, train_cfg: TrainingConfig,
                    targets: int) -> MiniBatchStats:
    """Full-scale projected statistics for a ``targets``-sized batch."""
    base = project_full_scale_stats(
        dataset.graph, dataset.spec, train_cfg.fanouts,
        train_cfg.minibatch_size)
    return base.scaled(targets / train_cfg.minibatch_size)


def iterations_per_epoch(dataset: GraphDataset, total_targets: int) -> int:
    """Full-scale iterations to cover the train set once."""
    if total_targets <= 0:
        raise ConfigError("total_targets must be positive")
    return max(1, -(-dataset.spec.train_count // total_targets))


def model_dims(dataset: GraphDataset,
               train_cfg: TrainingConfig) -> tuple[int, ...]:
    """(f^0, ..., f^L) for a dataset under a training config."""
    return layer_dims(dataset.spec.feature_dim, train_cfg.hidden_dim,
                      dataset.spec.num_classes, train_cfg.num_layers)


def degree_ordered_hit_ratio(dataset: GraphDataset,
                             cache_vertex_fraction: float) -> float:
    """Feature-cache hit ratio for a degree-ordered static cache.

    Neighbor sampling touches vertices with probability roughly
    proportional to degree, so caching the hottest (highest-degree)
    vertices captures the cumulative degree mass of the cached fraction
    — PaGraph's cache policy (computation-aware caching ranks by
    out-degree). Computed on the scaled graph, whose degree distribution
    matches the full-scale one.
    """
    if not 0.0 <= cache_vertex_fraction:
        raise ConfigError("cache fraction must be non-negative")
    if cache_vertex_fraction >= 1.0:
        return 1.0
    degs = np.sort(dataset.graph.out_degrees)[::-1].astype(np.float64)
    k = int(round(degs.size * cache_vertex_fraction))
    if k <= 0:
        return 0.0
    total = degs.sum()
    if total <= 0:
        return 0.0
    return float(degs[:k].sum() / total)
