"""The multi-GPU PyTorch-Geometric baseline (paper Fig. 10 "Multi-GPU").

Per the paper (§VI-E1) the baseline runs on the *same* CPU-GPU node as
HyScale-GNN but (a) uses the CPU only for sampling and feature loading,
(b) executes the per-iteration stages back-to-back (PyG's NeighborLoader
loop: sample → gather → H2D copy → train), and (c) pays PyG's
torch-sparse sampler and dataloader-worker throughput rather than a
native pthread sampler.

Implemented as a thin configuration of :class:`~repro.runtime.HyScaleGNN`
— the same machinery with hybrid/DRM/prefetch disabled and PyG-calibrated
software rates — so that every Fig. 10 speedup is an apples-to-apples
comparison of *system design*, exactly the paper's framing.
"""

from __future__ import annotations

from ..config import SystemConfig, TrainingConfig
from ..graph.datasets import GraphDataset
from ..hw.topology import PlatformSpec, hyscale_cpu_gpu_platform
from ..perfmodel.sampling_profile import (
    PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
)
from ..runtime.hybrid import EpochReport, HyScaleGNN
from .common import BaselineReport

#: PyG NeighborLoader worker processes (typical tuned setting) — far
#: fewer than the 256 hardware threads HyScale's native sampler uses.
PYG_SAMPLER_WORKERS = 24
PYG_LOADER_WORKERS = 24


class PyGMultiGPUBaseline:
    """Serialized accelerator-only training with PyG software rates."""

    name = "PyG multi-GPU"

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 platform: PlatformSpec | None = None,
                 full_scale: bool = True,
                 profile_probes: int = 3) -> None:
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.platform = platform if platform is not None \
            else hyscale_cpu_gpu_platform(4)
        sys_cfg = SystemConfig(hybrid=False, drm=False, prefetch=False)
        self.system = HyScaleGNN(
            dataset, self.platform, train_cfg, sys_cfg,
            full_scale=full_scale, profile_probes=profile_probes,
            sampler_rate_per_thread=
            PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD)
        # PyG's dataloader parallelism, not the full thread budget.
        self.system.split = self.system.split.with_updates(
            sample_threads=PYG_SAMPLER_WORKERS,
            load_threads=PYG_LOADER_WORKERS)

    def simulate_epoch(self, iterations: int | None = None
                       ) -> EpochReport:
        """Timing-only epoch simulation (serialized pipeline)."""
        return self.system.simulate_epoch(iterations=iterations)

    def report(self) -> BaselineReport:
        """One-epoch summary in the common baseline format."""
        rep = self.simulate_epoch()
        st = rep.stage_history[0] if rep.stage_history else None
        breakdown = st.as_dict() if st is not None else {}
        return BaselineReport(
            system=self.name, dataset=self.dataset.name,
            model=self.train_cfg.model,
            epoch_time_s=rep.epoch_time_s, iterations=rep.iterations,
            iteration_time_s=rep.epoch_time_s / max(1, rep.iterations),
            stage_breakdown=breakdown)
