"""P3-like system (Gandhi & Iyer, OSDI 2021; paper Table V row 2).

P3 ("Pipelined Push-Pull") trains on a cluster (4 nodes × 4 P100 in
Table V) and avoids moving input features entirely: features are
*dimension-partitioned* across machines, every machine computes a partial
first-layer aggregation/update over its feature slice for the whole
mini-batch, and the (much smaller) layer-1 activations are exchanged via
all-to-all — "push-pull" — with pipelining across micro-batches.

Cost mechanism reproduced here:

* no feature loading/transfer term at all (P3's headline win);
* a network term ``|V^1| × f^1 × S`` each way per batch (activations
  forward, activation gradients backward), over the shared per-node NIC;
* layer-1 compute is replicated across the feature dimension (each
  machine does ``1/num_nodes`` of the input dim for *all* batch
  vertices), deeper layers are data-parallel;
* model all-reduce crosses the network every iteration.

P3's published evaluation uses hidden dimension 32 (paper Table V) —
small activations are precisely what makes push-pull shine; the paper's
§VI-E2 notes P3 still pays inter-node communication that HyScale-GNN
avoids. Callers must pass a ``train_cfg`` with ``hidden_dim=32`` to
mirror the published configuration.
"""

from __future__ import annotations

from ..config import S_FEAT_BYTES, TrainingConfig
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..hw.kernels import GPUKernelModel
from ..hw.topology import PlatformSpec, p3_node
from ..nn.models import model_size_bytes
from ..perfmodel.sampling_profile import (
    PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
)
from .common import (
    BaselineReport,
    batch_stats_for,
    iterations_per_epoch,
    model_dims,
)

#: Sampler threads per node (single-socket E5-2690: 8 cores/16 threads).
SAMPLER_THREADS_PER_NODE = 16


class P3System:
    """Distributed push-pull (intra-layer model-parallel) GNN training."""

    name = "P3"

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 platform: PlatformSpec | None = None) -> None:
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.platform = platform if platform is not None else p3_node()
        if self.platform.num_nodes < 2:
            raise ConfigError("P3 is a multi-node system")
        self._gpu_model = GPUKernelModel(self.platform.accelerator)
        self.dims = model_dims(dataset, train_cfg)

    # ------------------------------------------------------------------
    def iteration_time(self) -> tuple[float, dict[str, float]]:
        """Per-iteration time and stage breakdown."""
        plat = self.platform
        nodes = plat.num_nodes
        gpus_total = plat.num_accelerators * nodes
        mb = self.train_cfg.minibatch_size
        stats = batch_stats_for(self.dataset, self.train_cfg, mb)

        # Distributed CPU sampling (each node samples its GPUs' batches).
        edges_per_node = stats.total_edges * plat.num_accelerators
        t_sample = edges_per_node / (
            SAMPLER_THREADS_PER_NODE *
            PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD)

        # Push-pull: layer-1 activations cross the network (both ways
        # over one epoch direction pair), per GPU batch; a node's GPUs
        # share its NIC.
        V1 = stats.num_nodes_per_layer[1]
        f1 = self.dims[1]
        act_bytes = V1 * f1 * S_FEAT_BYTES
        frac_remote = (nodes - 1) / nodes
        t_network = 2.0 * plat.network.transfer_time(
            act_bytes * frac_remote * plat.num_accelerators)

        # GPU compute: layer-1 partial over the full batch with 1/nodes
        # of the input dim (same MACs as the full layer divided across
        # machines, but *every* machine runs it), deeper layers normal.
        t_train = self._gpu_model.propagation(
            stats, self.dims, self.train_cfg.model).total_s

        # Model gradients all-reduce over the network.
        t_sync = 2.0 * model_size_bytes(
            self.dims, self.train_cfg.model) / plat.network.bandwidth

        # P3 pipelines micro-batches: network overlaps compute.
        t_iter = max(t_sample, t_network, t_train) + t_sync
        return t_iter, {
            "sample": t_sample, "network": t_network,
            "train": t_train, "sync": t_sync,
        }

    def report(self) -> BaselineReport:
        """One-epoch summary."""
        gpus_total = self.platform.num_accelerators * \
            self.platform.num_nodes
        t_iter, breakdown = self.iteration_time()
        iters = iterations_per_epoch(
            self.dataset, self.train_cfg.minibatch_size * gpus_total)
        return BaselineReport(
            system=self.name, dataset=self.dataset.name,
            model=self.train_cfg.model,
            epoch_time_s=iters * t_iter, iterations=iters,
            iteration_time_s=t_iter, stage_breakdown=breakdown)
