"""Comparator systems (paper §VI-E, Tables V-VII).

Four baselines, each modelled mechanistically on its published platform
(Table V) rather than transcribing the paper's speedup numbers:

* :class:`PyGMultiGPUBaseline` — the multi-GPU PyTorch-Geometric baseline
  of Fig. 10: accelerator-only training with strictly serialized
  per-iteration stages and PyG's (slow) sampler/loader.
* :class:`PaGraphSystem` — single node, 8× V100, degree-ordered static
  feature cache in GPU memory; misses fetched over PCIe (Lin et al.,
  SoCC'20).
* :class:`P3System` — 4 nodes × 4 P100, intra-layer model parallelism:
  features never cross the network, first-layer activations do (Gandhi &
  Iyer, OSDI'21). Evaluated at hidden dim 32 as in its paper.
* :class:`DistDGLv2System` — 8 nodes × 8 T4, METIS-partitioned graph with
  halo feature fetches over the network and hybrid CPU/GPU execution
  (Zheng et al., KDD'22).
"""

from .multi_gpu import PyGMultiGPUBaseline
from .pagraph import PaGraphSystem
from .p3 import P3System
from .distdgl import DistDGLv2System
from .common import BaselineReport

__all__ = [
    "BaselineReport",
    "PyGMultiGPUBaseline",
    "PaGraphSystem",
    "P3System",
    "DistDGLv2System",
]
