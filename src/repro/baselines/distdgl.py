"""DistDGLv2-like system (Zheng et al., KDD 2022; paper Table V row 3).

DistDGLv2 trains on 8 nodes × 8 T4 with the graph METIS-partitioned
across nodes. Each trainer samples mostly within its partition; sampled
neighbors living on other partitions ("halo" vertices) have their
features fetched over the network. It uses hybrid CPU-GPU execution and
an asynchronous mini-batch pipeline, but a *static* task mapping — the
property the paper contrasts DRM against (§VI-E2).

Cost mechanism:

* partition quality comes from running our BFS partitioner on the scaled
  graph (a stand-in for METIS; edge-cut fraction transfers with the
  degree structure);
* per batch, ``cut_fraction × |V^0|`` feature rows cross the network
  (halo fetches), the rest load from local host memory;
* GPU training on T4s with DGL-era overheads; model all-reduce over the
  network;
* pipelined composition (v2's async pipeline overlaps stages).
"""

from __future__ import annotations

from ..config import S_FEAT_BYTES, TrainingConfig
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..graph.partition import bfs_partition, partition_quality
from ..hw.kernels import GPUKernelModel
from ..hw.specs import LOADER_DDR_EFFICIENCY
from ..hw.topology import PlatformSpec, distdgl_node
from ..nn.models import model_size_bytes
from ..perfmodel.sampling_profile import (
    HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
)
from .common import (
    BaselineReport,
    batch_stats_for,
    iterations_per_epoch,
    model_dims,
)

#: Sampler threads per 96-vCPU node (DistDGL dedicates a large share of
#: the host to its distributed samplers).
SAMPLER_THREADS_PER_NODE = 64


class DistDGLv2System:
    """Partitioned multi-node hybrid CPU-GPU training."""

    name = "DistDGLv2"

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 platform: PlatformSpec | None = None,
                 partition_seed: int = 0) -> None:
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.platform = platform if platform is not None \
            else distdgl_node()
        if self.platform.num_nodes < 2:
            raise ConfigError("DistDGL is a multi-node system")
        self._gpu_model = GPUKernelModel(self.platform.accelerator)
        self.dims = model_dims(dataset, train_cfg)

        parts = bfs_partition(dataset.graph, self.platform.num_nodes,
                              seed=partition_seed)
        self.partition = partition_quality(dataset.graph, parts)

    # ------------------------------------------------------------------
    def iteration_time(self) -> tuple[float, dict[str, float]]:
        """Per-iteration time and stage breakdown."""
        plat = self.platform
        nodes = plat.num_nodes
        mb = self.train_cfg.minibatch_size
        stats = batch_stats_for(self.dataset, self.train_cfg, mb)
        cut = self.partition.edge_cut_fraction

        # Sampling: local CSR walks plus RPC overhead on cut edges
        # (remote sampling requests are an order of magnitude slower).
        edges_per_node = stats.total_edges * plat.num_accelerators
        local_rate = SAMPLER_THREADS_PER_NODE * \
            HYSCALE_SAMPLE_RATE_EDGES_PER_S_PER_THREAD
        t_sample = edges_per_node * (1.0 - cut) / local_rate + \
            edges_per_node * cut / (local_rate / 8.0)

        # Feature path: halo rows over the NIC, local rows from host DDR;
        # a node's GPUs share its NIC.
        bytes_per_gpu = stats.input_feature_bytes
        halo_bytes = bytes_per_gpu * cut * plat.num_accelerators
        local_bytes = bytes_per_gpu * (1.0 - cut) * plat.num_accelerators
        t_halo = plat.network.transfer_time(halo_bytes)
        t_load = local_bytes / (plat.host_mem_bandwidth *
                                LOADER_DDR_EFFICIENCY)
        t_transfer = plat.pcie.transfer_time(bytes_per_gpu)

        # Hybrid CPU+GPU training (static split: v2 gives the CPU a
        # fixed small share; GPUs dominate).
        t_train = self._gpu_model.propagation(
            stats, self.dims, self.train_cfg.model).total_s

        # Gradient all-reduce across 64 GPUs over the network.
        t_sync = 2.0 * model_size_bytes(
            self.dims, self.train_cfg.model) / plat.network.bandwidth

        # v2's async pipeline overlaps the stages.
        t_iter = max(t_sample, t_halo + t_load, t_transfer,
                     t_train) + t_sync
        return t_iter, {
            "sample": t_sample, "halo": t_halo, "load": t_load,
            "transfer": t_transfer, "train": t_train, "sync": t_sync,
            "edge_cut": cut,
        }

    def report(self) -> BaselineReport:
        """One-epoch summary."""
        trainers = self.platform.num_accelerators * \
            self.platform.num_nodes
        t_iter, breakdown = self.iteration_time()
        iters = iterations_per_epoch(
            self.dataset, self.train_cfg.minibatch_size * trainers)
        return BaselineReport(
            system=self.name, dataset=self.dataset.name,
            model=self.train_cfg.model,
            epoch_time_s=iters * t_iter, iterations=iters,
            iteration_time_s=t_iter, stage_breakdown=breakdown)
