"""PaGraph-like system (Lin et al., SoCC 2020; paper Table V row 1).

PaGraph trains on a single node (2× Xeon Platinum 8163 + 8× V100) and
attacks the CPU-GPU data-loading bottleneck with a *static feature cache*:
the highest-out-degree vertices' features are preloaded into each GPU's
spare memory; per batch, only cache misses cross PCIe. The paper's
critique (§VI-E2) — which this model reproduces mechanistically — is that
on large graphs the cacheable fraction collapses (papers100M features are
57 GB against ~10 GB of spare V100 memory), so misses dominate and PCIe
traffic grows.

Stage composition: PaGraph overlaps data loading with training (its
pipelined dataloader), so the iteration time is the max of (sample,
load+transfer-of-misses, GPU train); sampling uses DGL-era CPU rates.
"""

from __future__ import annotations

from ..config import S_FEAT_BYTES, TrainingConfig
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..hw.kernels import GPUKernelModel
from ..hw.specs import LOADER_DDR_EFFICIENCY
from ..hw.topology import PlatformSpec, pagraph_node
from ..perfmodel.sampling_profile import (
    PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD,
)
from .common import (
    BaselineReport,
    batch_stats_for,
    degree_ordered_hit_ratio,
    iterations_per_epoch,
    model_dims,
)

#: GPU memory reserved for model, activations and CUDA context; the rest
#: of the 16 GB V100 is feature cache.
GPU_RESERVE_GB = 6.0

#: DGL-era sampler threads on the 2x24-core Xeon host.
SAMPLER_THREADS = 96


class PaGraphSystem:
    """Single-node multi-GPU training with a static feature cache."""

    name = "PaGraph"

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 platform: PlatformSpec | None = None) -> None:
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.platform = platform if platform is not None \
            else pagraph_node()
        if self.platform.accelerator is None:
            raise ConfigError("PaGraph needs GPUs")
        self._gpu_model = GPUKernelModel(self.platform.accelerator)
        self.dims = model_dims(dataset, train_cfg)

        # ---- cache sizing ----
        cache_bytes = max(0.0, (self.platform.accelerator.device_memory_gb
                                - GPU_RESERVE_GB) * 1e9)
        full_row_bytes = dataset.spec.feature_dim * S_FEAT_BYTES
        cacheable_vertices = cache_bytes / full_row_bytes
        self.cache_fraction = min(
            1.0, cacheable_vertices / dataset.spec.num_vertices)
        self.hit_ratio = degree_ordered_hit_ratio(dataset,
                                                  self.cache_fraction)

    # ------------------------------------------------------------------
    def iteration_time(self) -> tuple[float, dict[str, float]]:
        """Per-iteration time and stage breakdown."""
        plat = self.platform
        n_gpu = plat.num_accelerators
        mb = self.train_cfg.minibatch_size
        stats = batch_stats_for(self.dataset, self.train_cfg, mb)

        # Sampling: all GPUs' batches, DGL CPU sampler.
        total_edges = stats.total_edges * n_gpu
        t_sample = total_edges / (
            SAMPLER_THREADS * PYG_SAMPLE_RATE_EDGES_PER_S_PER_THREAD)

        # Feature path: only cache misses are gathered and transferred.
        miss_bytes = stats.input_feature_bytes * (1.0 - self.hit_ratio)
        t_load = miss_bytes * n_gpu / (
            plat.host_mem_bandwidth * LOADER_DDR_EFFICIENCY)
        t_transfer = plat.pcie.transfer_time(miss_bytes)

        # GPU propagation (per device, all run in parallel).
        t_train = self._gpu_model.propagation(
            stats, self.dims, self.train_cfg.model).total_s

        # All-reduce over NVLink/PCIe within the node (model is small).
        from ..nn.models import model_size_bytes
        t_sync = 2.0 * model_size_bytes(
            self.dims, self.train_cfg.model) / plat.pcie.bandwidth

        # PaGraph pipelines loading with training; sampling overlaps too.
        t_iter = max(t_sample, t_load + t_transfer, t_train + t_sync)
        return t_iter, {
            "sample": t_sample, "load": t_load, "transfer": t_transfer,
            "train": t_train, "sync": t_sync,
            "hit_ratio": self.hit_ratio,
        }

    def report(self) -> BaselineReport:
        """One-epoch summary."""
        n_gpu = self.platform.num_accelerators
        t_iter, breakdown = self.iteration_time()
        iters = iterations_per_epoch(
            self.dataset, self.train_cfg.minibatch_size * n_gpu)
        return BaselineReport(
            system=self.name, dataset=self.dataset.name,
            model=self.train_cfg.model,
            epoch_time_s=iters * t_iter, iterations=iters,
            iteration_time_s=t_iter, stage_breakdown=breakdown)
