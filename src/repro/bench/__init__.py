"""Benchmark harness: experiment drivers and table/series formatting.

Each paper table/figure has a driver in :mod:`repro.bench.experiments`
returning structured results; ``benchmarks/bench_*.py`` print them in the
paper's row/series layout and assert the qualitative shape (orderings,
crossovers) the paper reports.
"""

from .harness import (
    ExperimentResult,
    format_series,
    format_table,
    geomean,
)
from .experiments import (
    run_ablation,
    run_cross_platform,
    run_perfmodel_accuracy,
    run_scalability,
    run_sota_comparison,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_series",
    "geomean",
    "run_cross_platform",
    "run_ablation",
    "run_scalability",
    "run_perfmodel_accuracy",
    "run_sota_comparison",
]
