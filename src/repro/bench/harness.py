"""Formatting and aggregation helpers for the benchmark harness."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigError


@dataclass
class ExperimentResult:
    """A generic result container: named rows of named values."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ConfigError(
                f"row has {len(values)} values, expected "
                f"{len(self.columns)}")
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows,
                            self.notes)

    def to_dict(self) -> dict:
        """JSON-ready form (CI uploads bench smokes as artifacts)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[_jsonable(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` (machine-readable twin of
        :meth:`render` — what the CI workflow archives)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")


def _jsonable(v):
    """Coerce one table cell for JSON (NumPy scalars, odd objects)."""
    if isinstance(v, (str, bool, int, float)) or v is None:
        return v
    if hasattr(v, "item"):                # numpy scalar
        return v.item()
    return str(v)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence], notes: Sequence[str] = ()
                 ) -> str:
    """Render an ASCII table in the paper's row layout."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in str_rows)) if str_rows
              else len(c)
              for i, c in enumerate(columns)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns,
                                                       widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row,
                                                           widths)))
    for n in notes:
        lines.append(f"  note: {n}")
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: Sequence,
                  series: dict[str, Sequence[float]]) -> str:
    """Render figure-style series (one column per x value)."""
    columns = [x_label] + [_fmt(x) for x in xs]
    rows = [[name] + [v for v in values]
            for name, values in series.items()]
    return format_table(title, columns, rows)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's Table VI/VII aggregate)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise ConfigError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
