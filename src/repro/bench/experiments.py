"""Experiment drivers — one per paper table/figure.

Each driver builds the systems it needs, runs timing simulations at the
paper's full dataset scale, and returns an :class:`ExperimentResult`.
Dataset instances are cached per process (construction costs seconds).
"""

from __future__ import annotations

import functools

import numpy as np

from ..config import ABLATION_PRESETS, TrainingConfig
from ..graph.datasets import GraphDataset, load_dataset
from ..hw.topology import (
    distdgl_node,
    hyscale_cpu_fpga_platform,
    hyscale_cpu_gpu_platform,
    p3_node,
    pagraph_node,
)
from ..baselines import (
    DistDGLv2System,
    P3System,
    PaGraphSystem,
    PyGMultiGPUBaseline,
)
from ..kernels import format_shard_io, format_traffic
from ..runtime.hybrid import HyScaleGNN
from ..runtime.resctl import summarize_calibration
from .harness import ExperimentResult, geomean

#: Datasets in paper order.
DATASETS = ("ogbn-products", "ogbn-papers100M", "mag240m")
MODELS = ("gcn", "sage")

#: Default probe count for bench-time system construction (kept small;
#: probes only calibrate jitter and scaled-batch means).
PROBES = 3


@functools.lru_cache(maxsize=8)
def dataset(name: str, seed: int = 0) -> GraphDataset:
    """Cached scaled dataset instance."""
    return load_dataset(name, seed=seed)


def paper_config(model: str, **overrides) -> TrainingConfig:
    """The paper's standard setup (§VI-A2)."""
    base = dict(model=model, minibatch_size=1024, fanouts=(25, 10),
                hidden_dim=256, seed=1)
    base.update(overrides)
    return TrainingConfig(**base)


def _hyscale(ds: GraphDataset, platform, cfg: TrainingConfig,
             preset: str = "hybrid_drm_tfp") -> HyScaleGNN:
    return HyScaleGNN(ds, platform, cfg, ABLATION_PRESETS[preset],
                      full_scale=True, profile_probes=PROBES)


def _epoch_time(system: HyScaleGNN, backend: str,
                iterations: int | None) -> float:
    """Virtual epoch time of one system under the chosen backend.

    ``"virtual"`` sweeps the timing-only simulation (the paper-figure
    plane). Any other registered backend (``"threaded"``,
    ``"process"``, third-party) runs real functional iterations over
    the *same* session and reports the modelled makespan of those
    iterations — exercising the full construction + execution path on
    the live substrate (the CI smoke's purpose).
    """
    if backend == "virtual":
        return system.simulate_epoch(iterations=iterations).epoch_time_s
    live = _live_backend(backend, system.session)
    if iterations is not None and hasattr(live, "run"):
        # run(N) executes exactly N iterations (rolling into fresh
        # epoch permutations past an epoch boundary), so every preset
        # is timed over the same workload; run_epoch would clamp N to
        # a per-preset epoch length.
        report = live.run(iterations)
    else:
        report = live.run_epoch(iterations)
    return getattr(report, "virtual_time_s", None) or \
        getattr(report, "epoch_time_s", 0.0)


def _live_backend(backend: str, session, timeout_s: float = 120.0):
    """Construct a registered backend for a live functional run.

    Shipped live backends take a watchdog ``timeout_s``; third-party
    backends whose constructor lacks that parameter are built with the
    bare ``ExecutionBackend.__init__(session)`` signature (decided by
    inspection, so a constructor that *raises* TypeError still fails
    loudly rather than silently losing its watchdog).
    """
    import inspect

    from ..runtime.backends import get_backend
    cls = get_backend(backend)
    params = inspect.signature(cls).parameters
    accepts_timeout = "timeout_s" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())
    if accepts_timeout:
        return cls(session, timeout_s=timeout_s)
    return cls(session)


# ---------------------------------------------------------------------------
# Fig. 10 — cross-platform comparison
# ---------------------------------------------------------------------------

def run_cross_platform(num_accels: int = 4,
                       datasets=DATASETS) -> ExperimentResult:
    """Multi-GPU baseline vs CPU+GPU vs CPU+FPGA epoch times.

    Paper speedups over the baseline: CPU+GPU 1.45-2.08x, CPU+FPGA
    8.87-12.6x (Fig. 10).
    """
    res = ExperimentResult(
        title="Fig. 10 - Cross platform comparison (epoch time, s)",
        columns=["dataset", "model", "multi-GPU", "CPU+GPU",
                 "speedup", "CPU+FPGA", "speedup"])
    for ds_name in datasets:
        ds = dataset(ds_name)
        for model in MODELS:
            cfg = paper_config(model)
            base = PyGMultiGPUBaseline(
                ds, cfg, platform=hyscale_cpu_gpu_platform(num_accels),
                profile_probes=PROBES)
            t_base = base.simulate_epoch().epoch_time_s
            t_gpu = _hyscale(ds, hyscale_cpu_gpu_platform(num_accels),
                             cfg).simulate_epoch().epoch_time_s
            t_fpga = _hyscale(ds, hyscale_cpu_fpga_platform(num_accels),
                              cfg).simulate_epoch().epoch_time_s
            res.add_row(ds_name, model, t_base, t_gpu, t_base / t_gpu,
                        t_fpga, t_base / t_fpga)
    res.notes.append("paper: CPU+GPU up to 2.08x, CPU+FPGA up to "
                     "12.6x over the multi-GPU baseline")
    return res


# ---------------------------------------------------------------------------
# Fig. 11 — ablation
# ---------------------------------------------------------------------------

def run_ablation(platform_kind: str = "fpga", num_accels: int = 4,
                 datasets=DATASETS, backend: str = "virtual",
                 iterations: int | None = None,
                 config_overrides: dict | None = None
                 ) -> ExperimentResult:
    """Baseline → +hybrid → +DRM → +TFP (paper Fig. 11, CPU-FPGA).

    ``backend`` selects the execution backend every preset runs on
    (``"virtual"`` reproduces the paper figure; ``"threaded"`` drives
    the same sessions through the live threaded backend — used by the
    CI smoke). ``iterations`` shortens the sweep; ``config_overrides``
    shrinks the training config for quick smokes.
    """
    factory = hyscale_cpu_fpga_platform if platform_kind == "fpga" \
        else hyscale_cpu_gpu_platform
    res = ExperimentResult(
        title=f"Fig. 11 - Impact of optimizations (CPU-"
              f"{platform_kind.upper()}, normalized speedup, "
              f"{backend} backend)",
        columns=["dataset", "model", "baseline", "hybrid(static)",
                 "hybrid+DRM", "hybrid+DRM+TFP"])
    for ds_name in datasets:
        ds = dataset(ds_name)
        for model in MODELS:
            cfg = paper_config(model, **(config_overrides or {}))
            times = {}
            for preset in ABLATION_PRESETS:
                system = _hyscale(ds, factory(num_accels), cfg, preset)
                times[preset] = _epoch_time(system, backend, iterations)
            base = times["baseline"]
            res.add_row(ds_name, model, 1.0,
                        base / times["hybrid_static"],
                        base / times["hybrid_drm"],
                        base / times["hybrid_drm_tfp"])
    res.notes.append("paper (CPU-FPGA): up to 1.13x / 1.33x / 1.79x")
    return res


# ---------------------------------------------------------------------------
# Fig. 9 — scalability
# ---------------------------------------------------------------------------

def run_scalability(accel_counts=(1, 2, 4, 8, 16),
                    platform_kind: str = "fpga",
                    datasets=DATASETS) -> ExperimentResult:
    """Normalized speedup vs accelerator count (perf-model projection,
    exactly how the paper produces Fig. 9)."""
    factory = hyscale_cpu_fpga_platform if platform_kind == "fpga" \
        else hyscale_cpu_gpu_platform
    res = ExperimentResult(
        title=f"Fig. 9 - Scalability (CPU-{platform_kind.upper()}, "
              "speedup normalized to 1 accelerator)",
        columns=["dataset", "model"] + [f"{n} accel"
                                        for n in accel_counts])
    for ds_name in datasets:
        ds = dataset(ds_name)
        for model in MODELS:
            cfg = paper_config(model)
            times = []
            for n in accel_counts:
                system = _hyscale(ds, factory(n), cfg)
                times.append(system.predicted_epoch_time())
            speedups = [times[0] / t for t in times]
            res.add_row(ds_name, model, *speedups)
    res.notes.append("paper: near-linear to ~12 accelerators, then "
                     "host-DDR saturation; products+GCN PCIe-bound")
    return res


def run_wallclock_scalability(trainer_counts=(1, 2, 4),
                              backend: str = "process",
                              dataset_name: str = "ogbn-products",
                              iterations: int = 4,
                              config_overrides: dict | None = None
                              ) -> ExperimentResult:
    """Fig. 9 on *wall-clock* time: live trainer replicas, real NumPy.

    Runs the *same total workload* (``iterations`` synchronized
    iterations over a fixed per-iteration target budget — the
    ``minibatch_size`` override is divided across the replicas, Fig. 9
    style) with varying trainer-replica counts on a live backend, and
    reports measured wall time plus speedup over the *first* count in
    ``trainer_counts`` (pass ``(1, ...)`` for the paper's
    speedup-vs-one-trainer normalization; the column is labelled with
    the anchor). With the workload held fixed, perfect core-level
    parallelism shows up as speedup ≈ n. On the ``"process"`` backend
    each replica is a worker process gathering features from the
    shared-memory store, so — unlike ``"threaded"``, whose NumPy work
    serializes behind the GIL — that speedup is actually reachable
    (given the cores to show it); ``"process_sampling"`` additionally
    moves neighbor sampling into the workers (independent per-worker
    RNG streams), so the sample stage parallelizes too instead of
    serializing in the parent. The ``"pipelined"`` backend overlaps
    the producer stages with training instead; ``"process_pipelined"``
    composes both (look-ahead shard dealing + worker-local stage
    overlap). Overlapped backends' rows carry the per-stage overlap
    report (adaptive look-ahead range plus buffer high-water / mean
    occupancy per stage) in the ``overlap`` column. Every row carries
    the ``kernel io`` column: per-iteration bytes the gather/quantize
    hot path moved plus the buffer-pool hit rate, from the report's
    ``kernel_stats`` counter delta (these sessions run without a
    timing plane, so the kernel counters are the only traffic
    accounting the sweep has). The ``calib`` column renders the fused
    plane's model-vs-realized calibration digest
    (:func:`repro.runtime.resctl.summarize_calibration`); backends
    without an online estimator — and timing-plane-less sessions like
    these, whose estimator never warms — show ``-``.

    Requires a live backend exposing ``run(iterations)`` and a
    ``wall_time_s`` report field (``"threaded"``, ``"process"``,
    ``"process_sampling"``, ``"pipelined"``, ``"process_pipelined"``).
    """
    from ..config import SystemConfig
    from ..errors import ConfigError
    from ..runtime import TrainingSession

    overrides = dict(minibatch_size=256, fanouts=(5, 5), hidden_dim=64)
    overrides.update(config_overrides or {})
    ds = dataset(dataset_name)
    anchor = trainer_counts[0]
    res = ExperimentResult(
        title=f"Fig. 9 (wall-clock) - live scalability "
              f"({dataset_name}, {backend} backend, "
              f"{iterations} iterations/point)",
        columns=["model", "trainers", "wall time (s)",
                 f"speedup vs {anchor}", "mean loss", "overlap",
                 "kernel io", "shard io", "calib"])
    total_targets = overrides["minibatch_size"]
    for model in MODELS:
        base_time = None
        for n in trainer_counts:
            # Fixed total per-iteration workload: n replicas share the
            # same target budget, so wall time measures parallelism,
            # not extra work.
            cfg = paper_config(model, **{
                **overrides,
                "minibatch_size": max(8, total_targets // n)})
            session = TrainingSession(
                ds, cfg,
                SystemConfig(hybrid=True, drm=False, prefetch=True),
                num_trainers=n)
            live = _live_backend(backend, session, timeout_s=300.0)
            if not hasattr(live, "run"):
                raise ConfigError(
                    f"backend {backend!r} cannot run the wall-clock "
                    "sweep: it exposes no run(iterations)")
            rep = live.run(iterations)
            if base_time is None:
                base_time = rep.wall_time_s
            overlap = getattr(rep, "overlap_summary", None)
            res.add_row(model, n, rep.wall_time_s,
                        base_time / max(rep.wall_time_s, 1e-12),
                        float(np.mean(rep.losses)),
                        overlap() if overlap is not None else "-",
                        format_traffic(
                            getattr(rep, "kernel_stats", {}),
                            iterations),
                        format_shard_io(
                            getattr(rep, "kernel_stats", {}),
                            iterations),
                        summarize_calibration(
                            getattr(rep, "calibration", {})))
    res.notes.append(
        "process backend = one worker process per trainer over the "
        "shared-memory feature store; process_sampling = workers also "
        "sample locally from per-worker RNG streams; threaded = "
        "GIL-bound reference; pipelined = overlapped "
        "sample/gather/transfer stage threads; process_pipelined = "
        "the fusion: look-ahead shard dealing + worker-local stage "
        "overlap (overlap column: adaptive depth range | per-stage "
        "items, buffer high-water, mean occupancy; kernel io column: "
        "per-iteration gather/payload traffic + buffer-pool hit rate "
        "from the kernel registry counters; shard io column: local "
        "vs remote gather traffic + remote-cache hit rate of the "
        "sharded plane, '-' on single-node backends; calib column: "
        "per-stage "
        "model-vs-realized calibration error once the fused plane's "
        "online estimator warms, '-' otherwise)")
    return res


# ---------------------------------------------------------------------------
# Fig. 8 — performance-model accuracy
# ---------------------------------------------------------------------------

def run_perfmodel_accuracy(accel_counts=(1, 2, 3, 4),
                           dataset_name: str = "mag240m"
                           ) -> ExperimentResult:
    """Predicted vs simulated-actual epoch time (paper Fig. 8:
    MAG240M, 1-4 FPGAs, GCN and GraphSAGE; 5-14% error)."""
    ds = dataset(dataset_name)
    res = ExperimentResult(
        title=f"Fig. 8 - Predicted vs actual epoch time "
              f"({dataset_name}, CPU-FPGA)",
        columns=["model", "num FPGAs", "actual (s)", "predicted (s)",
                 "error %"])
    for model in MODELS:
        for n in accel_counts:
            cfg = paper_config(model)
            system = _hyscale(ds, hyscale_cpu_fpga_platform(n), cfg)
            actual = system.simulate_epoch().epoch_time_s
            predicted = system.predicted_epoch_time()
            err = (actual - predicted) / actual * 100.0
            res.add_row(model, n, actual, predicted, err)
    res.notes.append("paper: prediction error 5-14% on average")
    return res


# ---------------------------------------------------------------------------
# Tables VI / VII — state-of-the-art comparison
# ---------------------------------------------------------------------------

def run_sota_comparison() -> tuple[ExperimentResult, ExperimentResult]:
    """Ours (4 FPGAs, single node) vs PaGraph / P3 / DistDGLv2.

    Model configs match each comparator (paper §VI-E2 / Table V):
    PaGraph (25,10)x256, P3 (25,10)x32, DistDGLv2 (15,10,5)x256
    (SAGE only, as in Table VI).
    """
    t6 = ExperimentResult(
        title="Table VI - Epoch time (s) vs state-of-the-art",
        columns=["comparison", "dataset", "model", "theirs (s)",
                 "ours (s)", "speedup"])
    t7 = ExperimentResult(
        title="Table VII - Normalized epoch time (s x TFLOPS)",
        columns=["comparison", "dataset", "model", "theirs",
                 "ours", "speedup"])
    ours_platform = hyscale_cpu_fpga_platform(4)
    ours_tflops = ours_platform.total_peak_tflops

    speedups6: dict[str, list[float]] = {}
    speedups7: dict[str, list[float]] = {}

    def add(comp_name, comp_report, comp_tflops, ds, cfg):
        ours = _hyscale(ds, ours_platform, cfg)
        t_ours = ours.simulate_epoch().epoch_time_s
        sp = comp_report.epoch_time_s / t_ours
        t6.add_row(comp_name, ds.name, cfg.model,
                   comp_report.epoch_time_s, t_ours, sp)
        speedups6.setdefault(comp_name, []).append(sp)
        theirs_norm = comp_report.epoch_time_s * comp_tflops
        ours_norm = t_ours * ours_tflops
        t7.add_row(comp_name, ds.name, cfg.model, theirs_norm,
                   ours_norm, theirs_norm / ours_norm)
        speedups7.setdefault(comp_name, []).append(
            theirs_norm / ours_norm)

    for ds_name in ("ogbn-products", "ogbn-papers100M"):
        ds = dataset(ds_name)
        for model in MODELS:
            # vs PaGraph: (25, 10), hidden 256.
            cfg = paper_config(model)
            add("vs PaGraph", PaGraphSystem(ds, cfg).report(),
                pagraph_node().total_peak_tflops, ds, cfg)
            # vs P3: (25, 10), hidden 32.
            cfg32 = paper_config(model, hidden_dim=32)
            add("vs P3", P3System(ds, cfg32).report(),
                p3_node().total_peak_tflops, ds, cfg32)
            # vs DistDGLv2: (15, 10, 5), hidden 256, SAGE only.
            if model == "sage":
                cfgd = paper_config(model, fanouts=(15, 10, 5))
                add("vs DistDGLv2", DistDGLv2System(ds, cfgd).report(),
                    distdgl_node().total_peak_tflops, ds, cfgd)

    for comp, sps in speedups6.items():
        t6.notes.append(f"{comp}: geo-mean speedup {geomean(sps):.2f}x")
    for comp, sps in speedups7.items():
        t7.notes.append(f"{comp}: geo-mean normalized speedup "
                        f"{geomean(sps):.1f}x")
    t6.notes.append("paper geo-means: PaGraph 1.76x, P3 4.57x, "
                    "DistDGLv2 0.45x")
    t7.notes.append("paper geo-means: 21x / 71x / 25x")
    return t6, t7
