"""Global ↔ shard-local index translation for partitioned feature stores.

The sharded training plane (:mod:`repro.runtime.backends.sharded`) lays
the feature matrix out in **shard-major order**: shard ``k``'s rows form
one contiguous slice, so a worker's local gathers hit its own slice and
every other row is a *remote* fetch it must be charged for — the
local/remote accounting DistDGL's distributed sampling example keeps
per minibatch. This module owns the index arithmetic that makes that
split checkable:

* :class:`ShardMap` — a frozen view of one vertex partition: the
  global→(shard, local-row) translation, the shard-major permutation
  (``order`` / ``shard_row`` / ``offsets``) the shared-memory store
  lays features out with, and per-shard halo sets (the remote vertices
  a shard's sampled batches will touch — the admission candidates of
  the :class:`~repro.runtime.remote_cache.RemoteFeatureCache`).

Empty shards are legal throughout: a partition map produced with
``num_parts > num_vertices`` (see :func:`~repro.graph.partition.bfs_partition`)
simply yields zero-width slices, which downstream consumers (the shm
layout, the sharded dealer) must handle, not crash on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


@dataclass(frozen=True)
class ShardMap:
    """One vertex partition, indexed both ways.

    Attributes
    ----------
    parts:
        ``(num_vertices,)`` shard id per global vertex id.
    num_shards:
        Total shard count — may exceed ``parts.max() + 1`` (trailing
        empty shards are representable).
    order:
        ``(num_vertices,)`` global ids in shard-major order (shard 0's
        vertices first, ascending global id within a shard) — the row
        order a shard-sliced feature matrix is stored in.
    shard_row:
        ``(num_vertices,)`` inverse of ``order``: the shard-major row
        holding each global id (``order[shard_row[g]] == g``).
    offsets:
        ``(num_shards + 1,)`` shard slice boundaries in shard-major
        rows: shard ``k`` owns rows ``offsets[k]:offsets[k + 1]``.
    """

    parts: np.ndarray
    num_shards: int
    order: np.ndarray
    shard_row: np.ndarray
    offsets: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def from_partition(cls, parts: np.ndarray,
                       num_shards: int | None = None) -> "ShardMap":
        """Build the two-way map from a partition assignment.

        ``num_shards`` defaults to ``parts.max() + 1``; pass it
        explicitly when trailing shards may be empty (their slices come
        out zero-width, which is legal everywhere downstream).
        """
        parts = np.asarray(parts, dtype=np.int64)
        if parts.ndim != 1:
            raise GraphError("parts must be a 1-D assignment array")
        n = parts.size
        inferred = int(parts.max()) + 1 if n else 0
        if num_shards is None:
            num_shards = max(inferred, 1)
        if num_shards < 1:
            raise GraphError("num_shards must be positive")
        if n and (parts.min() < 0 or inferred > num_shards):
            raise GraphError(
                f"partition ids must lie in [0, {num_shards})")
        order = np.argsort(parts, kind="stable").astype(np.int64)
        shard_row = np.empty(n, dtype=np.int64)
        shard_row[order] = np.arange(n, dtype=np.int64)
        sizes = np.bincount(parts, minlength=num_shards)
        offsets = np.concatenate((
            np.zeros(1, dtype=np.int64),
            np.cumsum(sizes, dtype=np.int64)))
        return cls(parts=parts, num_shards=int(num_shards), order=order,
                   shard_row=shard_row, offsets=offsets)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.parts.size)

    def shard_sizes(self) -> np.ndarray:
        """``(num_shards,)`` owned-vertex count per shard."""
        return np.diff(self.offsets)

    def owned(self, shard: int) -> np.ndarray:
        """Global ids shard ``shard`` owns, in shard-local row order."""
        self._check_shard(shard)
        return self.order[self.offsets[shard]:self.offsets[shard + 1]]

    def locate(self, ids: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Translate global ids to ``(shard, local_row)`` pairs.

        ``local_row`` is the position inside the owning shard's slice —
        the index a per-shard feature buffer would be addressed with.
        """
        ids = np.asarray(ids, dtype=np.int64)
        shard = self.parts[ids]
        local = self.shard_row[ids] - self.offsets[shard]
        return shard, local

    def to_global(self, shard: np.ndarray,
                  local_row: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`locate`."""
        shard = np.asarray(shard, dtype=np.int64)
        local_row = np.asarray(local_row, dtype=np.int64)
        return self.order[self.offsets[shard] + local_row]

    def halo(self, graph: CSRGraph, shard: int) -> np.ndarray:
        """Remote vertices shard ``shard``'s batches can touch.

        The unique out-neighbors of the shard's owned vertices that live
        on *other* shards — the vertices whose features a worker must
        fetch across the (simulated) interconnect, and therefore the
        admission candidates of its remote-feature cache. Sorted global
        ids; empty for an empty shard.
        """
        own = self.owned(shard)
        if own.size == 0:
            return np.zeros(0, dtype=np.int64)
        starts = graph.indptr[own]
        ends = graph.indptr[own + 1]
        if int((ends - starts).sum()) == 0:
            return np.zeros(0, dtype=np.int64)
        neigh = np.concatenate(
            [graph.indices[s:e] for s, e in zip(starts, ends)])
        cand = np.unique(neigh)
        return cand[self.parts[cand] != shard]

    # ------------------------------------------------------------------
    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise GraphError(
                f"shard {shard} out of range [0, {self.num_shards})")
