"""Graph partitioners for the distributed comparator models.

P3 and DistDGL(v2) distribute the input graph across compute nodes (paper
§VII notes the resulting workload-imbalance and inter-node communication).
We provide two partitioners:

* :func:`hash_partition` — random/hash assignment (P3 partitions features by
  hashing; also the worst case for edge cut),
* :func:`bfs_partition` — locality-aware BFS growing, a stand-in for the
  METIS partitioning DistDGL uses (much lower edge cut on clustered graphs).

plus :func:`partition_quality` which reports the metrics the baselines
charge communication for (edge cut, replication factor, balance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def hash_partition(graph: CSRGraph, num_parts: int,
                   seed: int = 0) -> np.ndarray:
    """Assign each vertex to a partition pseudo-randomly.

    Returns an ``(num_vertices,)`` int array of partition ids. Balance is
    near-perfect; edge cut approaches ``(num_parts - 1) / num_parts``.
    """
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, num_parts, size=graph.num_vertices,
                         dtype=np.int64)
    return parts


def bfs_partition(graph: CSRGraph, num_parts: int,
                  seed: int = 0) -> np.ndarray:
    """Grow ``num_parts`` balanced regions by parallel BFS.

    Seeds are spread uniformly at random; frontiers expand round-robin, each
    claiming unvisited neighbors until its size budget is met. Produces far
    lower edge cut than hashing on graphs with community structure — a cheap
    stand-in for METIS (which is not available offline).

    ``num_parts`` may exceed ``graph.num_vertices``: only the first
    ``min(num_parts, n)`` regions get a seed vertex and the surplus
    partitions stay empty — a legal (empty-shard) assignment downstream
    consumers like :class:`~repro.graph.shard_map.ShardMap` must
    represent, not an error. Every partition size stays within the
    ``ceil(n / num_parts)`` budget.
    """
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    parts = np.full(n, -1, dtype=np.int64)
    budget = -(-n // num_parts)  # ceil
    sizes = np.zeros(num_parts, dtype=np.int64)

    seeds = rng.choice(n, size=min(num_parts, n), replace=False)
    frontiers: list[np.ndarray] = []
    for p, s in enumerate(seeds):
        parts[s] = p
        sizes[p] = 1
        frontiers.append(np.array([s], dtype=np.int64))

    sym = graph  # expand along out-edges; callers pass symmetrized graphs
    active = True
    while active:
        active = False
        for p in range(len(frontiers)):
            if sizes[p] >= budget or frontiers[p].size == 0:
                continue
            # All unvisited out-neighbors of the current frontier.
            f = frontiers[p]
            starts, ends = sym.indptr[f], sym.indptr[f + 1]
            total = int((ends - starts).sum())
            if total == 0:
                frontiers[p] = np.zeros(0, dtype=np.int64)
                continue
            neigh = np.concatenate(
                [sym.indices[s:e] for s, e in zip(starts, ends)])
            cand = np.unique(neigh)
            cand = cand[parts[cand] == -1]
            room = budget - sizes[p]
            if cand.size > room:
                cand = cand[:room]
            if cand.size:
                parts[cand] = p
                sizes[p] += cand.size
                frontiers[p] = cand
                active = True
            else:
                frontiers[p] = np.zeros(0, dtype=np.int64)

    # Unreached vertices (isolated or budget-starved): round-robin to the
    # smallest partitions.
    leftovers = np.flatnonzero(parts == -1)
    for v in leftovers:
        p = int(np.argmin(sizes))
        parts[v] = p
        sizes[p] += 1
    return parts


@dataclass(frozen=True)
class PartitionQuality:
    """Partition metrics consumed by the distributed baselines.

    Attributes
    ----------
    edge_cut_fraction:
        Fraction of edges whose endpoints live in different partitions —
        proportional to the inter-node feature traffic DistDGL pays.
    replication_factor:
        Average number of partitions that must hold (a halo copy of) each
        vertex: ``sum_p |V_p ∪ halo_p| / |V|``.
    imbalance:
        ``max_p |V_p| / mean_p |V_p|`` — 1.0 is perfect balance.
    """

    edge_cut_fraction: float
    replication_factor: float
    imbalance: float


def partition_quality(graph: CSRGraph,
                      parts: np.ndarray) -> PartitionQuality:
    """Compute cut/replication/balance metrics for a vertex partition."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.num_vertices,):
        raise GraphError("parts must have one entry per vertex")
    num_parts = int(parts.max()) + 1 if parts.size else 0
    src, dst = graph.edges()
    cut_mask = parts[src] != parts[dst]
    edge_cut = float(cut_mask.mean()) if src.size else 0.0

    sizes = np.bincount(parts, minlength=num_parts).astype(np.float64)
    imbalance = float(sizes.max() / sizes.mean()) if num_parts else 1.0

    # Replication: every cut edge forces the destination partition to hold a
    # halo copy of the source vertex. Count distinct (partition, src) pairs.
    if src.size:
        cut_src = src[cut_mask]
        cut_dst_part = parts[dst[cut_mask]]
        pairs = np.unique(cut_dst_part * np.int64(graph.num_vertices)
                          + cut_src)
        replicated = pairs.size
    else:
        replicated = 0
    replication = 1.0 + replicated / max(1, graph.num_vertices)
    return PartitionQuality(edge_cut_fraction=edge_cut,
                            replication_factor=float(replication),
                            imbalance=imbalance)
