"""Graph substrate: CSR storage, generators, datasets, partitioning.

The input graph topology ``G(V, E)`` is stored in host ("CPU") memory as a
compressed sparse row structure (:class:`CSRGraph`), exactly as HyScale-GNN
keeps the full topology host-resident (paper §III-B). Synthetic stand-ins for
the paper's three evaluation datasets live in :mod:`repro.graph.datasets`.
"""

from .csr import CSRGraph
from .coo import coalesce_edges, sort_edges_by_src
from .generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from .datasets import (
    DATASET_REGISTRY,
    DatasetSpec,
    GraphDataset,
    load_dataset,
)
from .partition import bfs_partition, hash_partition, partition_quality
from .shard_map import ShardMap
from .validate import check_graph

__all__ = [
    "CSRGraph",
    "coalesce_edges",
    "sort_edges_by_src",
    "erdos_renyi_graph",
    "power_law_graph",
    "rmat_graph",
    "DATASET_REGISTRY",
    "DatasetSpec",
    "GraphDataset",
    "load_dataset",
    "bfs_partition",
    "hash_partition",
    "partition_quality",
    "ShardMap",
    "check_graph",
]
