"""Scaled synthetic stand-ins for the paper's evaluation datasets.

Table III of the paper:

========================  ===========  =============  ====  ===  ====
Dataset                   #Vertices    #Edges         f0    f1   f2
========================  ===========  =============  ====  ===  ====
ogbn-products             2,449,029    61,859,140     100   256  47
ogbn-papers100M           111,059,956  1,615,685,872  128   256  172
MAG240M (homo)            121,751,666  1,297,748,926  756   256  153
========================  ===========  =============  ====  ===  ====

We cannot download OGB data (no network) and cannot hold billion-edge graphs
in this environment, so :func:`load_dataset` materializes a *scaled* graph
(default ~1/64 - 1/2048 of the original vertex count) that preserves:

* average degree (controls |E^l| per mini-batch),
* a heavy-tailed degree distribution (controls neighbor dedup, i.e. |V^0|),
* the exact layer dimensions f0/f1/f2 (controls every traffic/compute term),
* the training-set fraction (controls iterations per epoch).

The *full-scale* statistics are retained on :class:`DatasetSpec` so the
analytic performance model can still reason about the paper-sized graphs
(e.g. the Fig. 9 scalability projection and Table VI epoch-time estimates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph
from .generators import power_law_graph

#: Train-set sizes of the real datasets (OGB leaderboard splits), used to
#: derive iterations-per-epoch: products 196,615; papers100M 1,207,179;
#: MAG240M 1,112,392 labelled arxiv papers.
_TRAIN_COUNTS = {
    "ogbn-products": 196_615,
    "ogbn-papers100M": 1_207_179,
    "mag240m": 1_112_392,
}


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one evaluation dataset.

    ``num_vertices``/``num_edges``/``train_count`` describe the *real*
    (paper-scale) dataset; scaled instances derive their own counts from
    these via ``scale``.
    """

    name: str
    num_vertices: int
    num_edges: int
    feature_dim: int          # f0
    hidden_dim: int           # f1
    num_classes: int          # f2
    train_count: int
    default_scale: float
    degree_exponent: float = 2.1

    @property
    def avg_degree(self) -> float:
        """Average degree of the full-scale graph."""
        return self.num_edges / self.num_vertices

    @property
    def train_fraction(self) -> float:
        """Fraction of vertices that are training targets."""
        return self.train_count / self.num_vertices

    def iterations_per_epoch(self, minibatch_size: int,
                             num_trainers: int) -> int:
        """Iterations to cover the full-scale train set.

        Each of the ``num_trainers`` trainers consumes one mini-batch per
        iteration (paper §V), so an epoch is ``ceil(train / (mb * n))``.
        """
        per_iter = minibatch_size * num_trainers
        return max(1, -(-self.train_count // per_iter))


#: Registry keyed by canonical dataset name. ``default_scale`` keeps the
#: largest dataset's scaled feature matrix under ~200 MB.
DATASET_REGISTRY: dict[str, DatasetSpec] = {
    "ogbn-products": DatasetSpec(
        name="ogbn-products",
        num_vertices=2_449_029,
        num_edges=61_859_140,
        feature_dim=100,
        hidden_dim=256,
        num_classes=47,
        train_count=_TRAIN_COUNTS["ogbn-products"],
        default_scale=1.0 / 128,
        degree_exponent=2.0,   # product co-purchase graphs are denser/hubbier
    ),
    "ogbn-papers100M": DatasetSpec(
        name="ogbn-papers100M",
        num_vertices=111_059_956,
        num_edges=1_615_685_872,
        feature_dim=128,
        hidden_dim=256,
        num_classes=172,
        train_count=_TRAIN_COUNTS["ogbn-papers100M"],
        default_scale=1.0 / 2048,
    ),
    "mag240m": DatasetSpec(
        name="mag240m",
        num_vertices=121_751_666,
        num_edges=1_297_748_926,
        feature_dim=756,
        hidden_dim=256,
        num_classes=153,
        train_count=_TRAIN_COUNTS["mag240m"],
        default_scale=1.0 / 4096,
    ),
}

#: Aliases accepted by :func:`load_dataset`.
_ALIASES = {
    "products": "ogbn-products",
    "papers100m": "ogbn-papers100M",
    "ogbn-papers100m": "ogbn-papers100M",
    "mag240m (homo)": "mag240m",
    "mag240m-homo": "mag240m",
}


@dataclass
class GraphDataset:
    """A materialized (scaled) dataset instance.

    Attributes
    ----------
    spec:
        Full-scale :class:`DatasetSpec`.
    scale:
        Vertex-count scale factor actually used.
    graph:
        Symmetrized :class:`CSRGraph` topology (host-resident).
    features:
        ``(num_vertices, f0)`` float32 feature matrix (host-resident).
    labels:
        ``(num_vertices,)`` int64 class labels in ``[0, num_classes)``.
    train_mask:
        Boolean mask of training target vertices.
    """

    spec: DatasetSpec
    scale: float
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray

    @property
    def name(self) -> str:
        """Canonical dataset name."""
        return self.spec.name

    @property
    def train_ids(self) -> np.ndarray:
        """Vertex ids of training targets."""
        return np.flatnonzero(self.train_mask)

    @property
    def layer_dims(self) -> tuple[int, int, int]:
        """(f0, f1, f2) for the paper's standard 2-layer models."""
        return (self.spec.feature_dim, self.spec.hidden_dim,
                self.spec.num_classes)

    @property
    def feature_nbytes(self) -> int:
        """Bytes of the scaled feature matrix."""
        return int(self.features.nbytes)

    def full_scale_feature_nbytes(self) -> int:
        """Bytes the *full-scale* feature matrix would occupy (float32)."""
        return self.spec.num_vertices * self.spec.feature_dim * 4


def _make_labels(num_vertices: int, num_classes: int, features: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
    """Labels correlated with features so training can actually learn.

    A random linear probe over the first 16 feature columns defines the
    class; plus 10% label noise. This gives examples/benches a learnable
    signal without shipping real OGB labels.
    """
    probe_dim = min(16, features.shape[1])
    probe = rng.standard_normal((probe_dim, num_classes)).astype(np.float32)
    logits = features[:, :probe_dim] @ probe
    labels = np.argmax(logits, axis=1).astype(np.int64)
    noise = rng.random(num_vertices) < 0.1
    labels[noise] = rng.integers(0, num_classes, size=int(noise.sum()))
    return labels


def load_dataset(name: str, scale: float | None = None,
                 seed: int = 0) -> GraphDataset:
    """Materialize a scaled synthetic instance of a paper dataset.

    Parameters
    ----------
    name:
        One of ``"ogbn-products"``, ``"ogbn-papers100M"``, ``"mag240m"``
        (case-insensitive; common aliases accepted).
    scale:
        Vertex-count scale factor in ``(0, 1]``. Defaults to the registry's
        ``default_scale``. Tests use much smaller scales.
    seed:
        RNG seed for topology, features and labels.

    Raises
    ------
    GraphError
        For unknown names or invalid scales.
    """
    key = name.strip().lower()
    canonical = _ALIASES.get(key, key)
    # Registry keys are mixed-case; normalize lookup.
    by_lower = {k.lower(): k for k in DATASET_REGISTRY}
    if canonical.lower() not in by_lower:
        raise GraphError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_REGISTRY)}")
    spec = DATASET_REGISTRY[by_lower[canonical.lower()]]

    if scale is None:
        scale = spec.default_scale
    if not 0.0 < scale <= 1.0:
        raise GraphError("scale must be in (0, 1]")

    num_vertices = max(64, int(round(spec.num_vertices * scale)))
    rng = np.random.default_rng(seed)
    # Symmetrization roughly doubles the directed edge count (duplicate
    # reverse edges collapse); generate at ~0.53x so the symmetrized graph
    # lands near scale * spec.num_edges, matching Table III densities.
    graph = power_law_graph(
        num_vertices=num_vertices,
        avg_degree=spec.avg_degree * 0.53,
        exponent=spec.degree_exponent,
        seed=rng,
    ).symmetrize()

    features = rng.standard_normal(
        (graph.num_vertices, spec.feature_dim)).astype(np.float32)
    labels = _make_labels(graph.num_vertices, spec.num_classes, features,
                          rng)

    train_mask = np.zeros(graph.num_vertices, dtype=bool)
    n_train = max(1, int(round(graph.num_vertices * spec.train_fraction)))
    train_mask[rng.choice(graph.num_vertices, size=n_train,
                          replace=False)] = True

    return GraphDataset(spec=spec, scale=scale, graph=graph,
                        features=features, labels=labels,
                        train_mask=train_mask)


def tiny_dataset(num_vertices: int = 256, feature_dim: int = 16,
                 num_classes: int = 4, avg_degree: float = 8.0,
                 seed: int = 0) -> GraphDataset:
    """A small ad-hoc dataset for unit tests and the quickstart example."""
    if num_vertices < 8:
        raise GraphError("tiny_dataset needs at least 8 vertices")
    rng = np.random.default_rng(seed)
    graph = power_law_graph(num_vertices, avg_degree, seed=rng).symmetrize()
    features = rng.standard_normal(
        (graph.num_vertices, feature_dim)).astype(np.float32)
    labels = _make_labels(graph.num_vertices, num_classes, features, rng)
    train_mask = rng.random(graph.num_vertices) < 0.5
    if not train_mask.any():
        train_mask[0] = True
    spec = DatasetSpec(
        name="tiny",
        num_vertices=num_vertices,
        num_edges=graph.num_edges,
        feature_dim=feature_dim,
        hidden_dim=32,
        num_classes=num_classes,
        train_count=int(train_mask.sum()),
        default_scale=1.0,
    )
    return GraphDataset(spec=spec, scale=1.0, graph=graph,
                        features=features, labels=labels,
                        train_mask=train_mask)
