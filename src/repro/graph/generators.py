"""Synthetic graph generators.

The paper evaluates on three OGB graphs (Table III). Without network access
we synthesize graphs that preserve the properties the timing model is
sensitive to: vertex count, average degree, and a heavy-tailed degree
distribution (which controls neighbor-overlap and therefore |V^0| per
mini-batch — the quantity the FPGA Feature Duplicator exploits).

All generators are fully vectorized and deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi_graph(num_vertices: int, avg_degree: float,
                      seed: int | np.random.Generator = 0) -> CSRGraph:
    """Uniform random directed graph with the given expected out-degree.

    Edges are sampled i.i.d.; duplicates are coalesced so realized degree is
    marginally below ``avg_degree`` for dense settings.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be positive")
    rng = _rng(seed)
    num_edges = int(round(num_vertices * avg_degree))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=True)


def power_law_graph(num_vertices: int, avg_degree: float,
                    exponent: float = 2.1,
                    max_degree_fraction: float = 0.02,
                    source_exponent: float = 2.6,
                    seed: int | np.random.Generator = 0) -> CSRGraph:
    """Directed graph whose *in*-degree follows a truncated power law.

    Destination endpoints are drawn from a Zipf-like rank distribution over
    vertices; sources are uniform. This produces hub vertices like
    citation/product graphs: a few vertices are referenced by a large
    fraction of edges, which is what makes neighbor sampling dedup
    effective (and the FPGA Feature Duplicator useful).

    Parameters
    ----------
    exponent:
        Target *degree-distribution* exponent γ (P(deg = d) ∝ d^-γ);
        2.0-2.3 matches web/citation graphs. Internally converted to the
        rank-weight exponent α = 1 / (γ - 1) (preferential-attachment
        correspondence); using γ directly as the rank exponent would give
        one vertex the majority of all edges.
    max_degree_fraction:
        Upper bound on any vertex's expected in-degree as a fraction of
        ``num_vertices``. Scaled-down graphs keep the full graph's average
        degree, which would otherwise let the top hub touch most of the
        graph; real OGB hubs reach only ~0.2-0.7% of vertices.
    source_exponent:
        Degree exponent for the *source* endpoints. Uniform sources would
        give every vertex an out-degree near the mean, but real graphs
        have median degree well below the mean (most papers cite few
        others); a milder skew on sources reproduces that, which matters
        because neighbor-sampling traffic scales with
        ``E[min(degree, fanout)]``, dominated by low-degree vertices.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be positive")
    if exponent <= 1.0:
        raise GraphError("exponent must be > 1 for a normalizable tail")
    if not 0.0 < max_degree_fraction <= 1.0:
        raise GraphError("max_degree_fraction must be in (0, 1]")
    rng = _rng(seed)
    num_edges = int(round(num_vertices * avg_degree))
    alpha = 1.0 / (exponent - 1.0)

    # Rank-based Zipf sampling via inverse-CDF on cumulative rank weights.
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    # Cap hub probability: expected in-degree of vertex i is
    # num_edges * w_i / Σw; clip so it stays below the fraction cap.
    # A few clip-renormalize rounds converge (weights only shrink).
    prob_cap = max_degree_fraction * num_vertices / max(num_edges, 1)
    if prob_cap < 1.0:
        for _ in range(8):
            p = weights / weights.sum()
            over = p > prob_cap
            if not over.any():
                break
            weights[over] = prob_cap * weights.sum()
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(num_edges)
    popular = np.searchsorted(cdf, u).astype(np.int64)

    # Scatter popularity ranks onto shuffled vertex ids so hubs are spread
    # across the id space (avoids artificial locality).
    perm = rng.permutation(num_vertices).astype(np.int64)
    dst = perm[np.clip(popular, 0, num_vertices - 1)]

    # Sources: milder power law (independent rank permutation).
    alpha_src = 1.0 / (source_exponent - 1.0)
    w_src = ranks ** (-alpha_src)
    cdf_src = np.cumsum(w_src)
    cdf_src /= cdf_src[-1]
    src_rank = np.searchsorted(cdf_src, rng.random(num_edges))
    perm_src = rng.permutation(num_vertices).astype(np.int64)
    src = perm_src[np.clip(src_rank, 0, num_vertices - 1)]
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=False)


def rmat_graph(scale: int, avg_degree: float,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int | np.random.Generator = 0) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) generator.

    Produces ``2**scale`` vertices with a skewed, community-like edge
    distribution. Quadrant probabilities default to the Graph500 values
    (a=0.57, b=0.19, c=0.19, d=0.05).
    """
    if scale <= 0 or scale > 30:
        raise GraphError("scale must be in (0, 30]")
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError("quadrant probabilities must form a distribution")
    rng = _rng(seed)
    num_vertices = 1 << scale
    num_edges = int(round(num_vertices * avg_degree))

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Vectorized over edges, loop over the `scale` bit positions only.
    for bit in range(scale):
        r = rng.random(num_edges)
        go_right = r >= (a + c)          # quadrants b, d: dst high bit set
        go_down = ((r >= a) & (r < a + c)) | (r >= (a + b + c))  # c, d
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=False)


def connected_training_mask(graph: CSRGraph, train_fraction: float,
                            seed: int | np.random.Generator = 0
                            ) -> np.ndarray:
    """Boolean mask selecting a random ``train_fraction`` of vertices.

    OGB datasets designate a subset of vertices as training targets; the
    epoch length in the paper's experiments is ``|train| / minibatch_size``
    iterations, so the fraction matters for epoch-time reproduction.
    """
    if not 0.0 < train_fraction <= 1.0:
        raise GraphError("train_fraction must be in (0, 1]")
    rng = _rng(seed)
    mask = np.zeros(graph.num_vertices, dtype=bool)
    n_train = max(1, int(round(graph.num_vertices * train_fraction)))
    mask[rng.choice(graph.num_vertices, size=n_train, replace=False)] = True
    return mask
