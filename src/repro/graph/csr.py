"""Compressed-sparse-row graph storage.

:class:`CSRGraph` stores a directed graph as ``(indptr, indices)`` arrays in
the usual CSR convention: the out-neighbors of vertex ``v`` are
``indices[indptr[v]:indptr[v + 1]]``. For GNN aggregation we usually need
*in*-neighbors (messages flow source → destination), so the structure can
lazily build and cache its transpose.

Design notes (following the hpc-parallel guides):

* all hot paths are vectorized NumPy; no per-edge Python loops;
* arrays are C-contiguous and use the smallest safe integer dtype;
* neighbor access returns *views* into ``indices`` — never copies.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import GraphError


def _as_index_array(a, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(a)
    if arr.ndim != 1:
        raise GraphError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise GraphError(f"{name} must be an integer array, got {arr.dtype}")
    return arr.astype(np.int64, copy=False)


class CSRGraph:
    """Directed graph in CSR form.

    Parameters
    ----------
    indptr:
        ``(num_vertices + 1,)`` monotone array of row offsets.
    indices:
        ``(num_edges,)`` array of destination vertices, grouped by source.
    num_vertices:
        Optional explicit vertex count; defaults to ``len(indptr) - 1``.

    Raises
    ------
    GraphError
        If the arrays do not form a valid CSR structure.
    """

    __slots__ = ("indptr", "indices", "num_vertices", "_transpose",
                 "_out_degrees")

    def __init__(self, indptr, indices, num_vertices: int | None = None):
        self.indptr = _as_index_array(indptr, "indptr")
        self.indices = _as_index_array(indices, "indices")
        if self.indptr.size == 0:
            raise GraphError("indptr must have at least one element")
        n = self.indptr.size - 1
        if num_vertices is not None and num_vertices != n:
            raise GraphError(
                f"num_vertices={num_vertices} inconsistent with indptr "
                f"(implies {n})")
        self.num_vertices = n
        if self.indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr[-1]={self.indptr[-1]} must equal "
                f"len(indices)={self.indices.size}")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= n):
            raise GraphError("edge endpoint out of range")
        self._transpose: CSRGraph | None = None
        self._out_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, src, dst, num_vertices: int,
                   dedup: bool = False) -> "CSRGraph":
        """Build a CSR graph from parallel ``src``/``dst`` edge arrays.

        Parameters
        ----------
        src, dst:
            Edge endpoint arrays of equal length.
        num_vertices:
            Total vertex count (endpoints must be < this).
        dedup:
            Drop duplicate ``(src, dst)`` pairs when True.
        """
        src = _as_index_array(src, "src")
        dst = _as_index_array(dst, "dst")
        if src.size != dst.size:
            raise GraphError("src and dst must have equal length")
        if num_vertices <= 0:
            raise GraphError("num_vertices must be positive")
        if src.size and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= num_vertices):
            raise GraphError("edge endpoint out of range")
        if dedup and src.size:
            keys = src * np.int64(num_vertices) + dst
            _, keep = np.unique(keys, return_index=True)
            src, dst = src[keep], dst[keep]
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        indices = np.ascontiguousarray(dst[order])
        counts = np.bincount(src_sorted, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, indices)

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        """Graph with ``num_vertices`` vertices and no edges."""
        if num_vertices <= 0:
            raise GraphError("num_vertices must be positive")
        return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.indices.size)

    def out_degree(self, v: int | np.ndarray) -> np.ndarray | int:
        """Out-degree of one vertex or an array of vertices."""
        return self.indptr[np.asarray(v) + 1] - self.indptr[np.asarray(v)]

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.indptr)
        return self._out_degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a view into ``indices`` (no copy)."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range")
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    @property
    def avg_degree(self) -> float:
        """Average out-degree."""
        return self.num_edges / self.num_vertices

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` COO arrays (src is materialized)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        self.out_degrees)
        return src, self.indices.copy()

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """Graph with all edges reversed (cached after first call).

        The transpose is the CSC view of this graph: its ``neighbors(v)``
        are the *in*-neighbors of ``v`` here, which is what GNN aggregation
        consumes.
        """
        if self._transpose is None:
            src, dst = self.edges()
            self._transpose = CSRGraph.from_edges(
                dst, src, self.num_vertices)
        return self._transpose

    def symmetrize(self) -> "CSRGraph":
        """Return the graph with every edge present in both directions.

        Duplicate edges are coalesced. Mirrors the usual OGB preprocessing
        of treating citation/product graphs as undirected.
        """
        src, dst = self.edges()
        return CSRGraph.from_edges(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            self.num_vertices,
            dedup=True,
        )

    def with_self_loops(self) -> "CSRGraph":
        """Return the graph with a self-loop added to every vertex.

        GCN's aggregation includes the vertex itself (paper Eq. 1 aggregates
        over ``N(v) ∪ {v}``); self-loops realize that in the adjacency.
        Existing duplicate edges (including existing self-loops) are
        coalesced.
        """
        src, dst = self.edges()
        loop = np.arange(self.num_vertices, dtype=np.int64)
        return CSRGraph.from_edges(
            np.concatenate([src, loop]),
            np.concatenate([dst, loop]),
            self.num_vertices,
            dedup=True,
        )

    def subgraph_edges(self, vertices: Iterable[int]) -> int:
        """Number of edges with *both* endpoints in ``vertices``.

        Used by partition-quality metrics; vectorized membership test.
        """
        mask = np.zeros(self.num_vertices, dtype=bool)
        mask[np.asarray(list(vertices), dtype=np.int64)] = True
        src, dst = self.edges()
        return int(np.count_nonzero(mask[src] & mask[dst]))

    # ------------------------------------------------------------------
    # Memory accounting (for the hw/memory model)
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes of topology storage (indptr + indices)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CSRGraph(num_vertices={self.num_vertices}, "
                f"num_edges={self.num_edges})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices))

    def __hash__(self) -> int:  # structures are mutable-array backed
        raise TypeError("CSRGraph is not hashable")
