"""Edge-list (COO) helpers shared by samplers and kernel models.

The FPGA aggregation kernel (paper §IV-C) requires mini-batch edges sorted by
source vertex so the Feature Duplicator can reuse each fetched feature for
all of its out-edges back-to-back. :func:`sort_edges_by_src` implements that
ordering and :func:`source_run_lengths` exposes the reuse counts the kernel
model charges.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError


def coalesce_edges(src: np.ndarray, dst: np.ndarray,
                   num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort edges by ``(src, dst)`` and drop duplicates.

    Returns new arrays; inputs are unchanged.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise GraphError("src and dst must have equal shape")
    if src.size == 0:
        return src.copy(), dst.copy()
    keys = src * np.int64(num_vertices) + dst
    uniq = np.unique(keys)
    return uniq // num_vertices, uniq % num_vertices


def sort_edges_by_src(src: np.ndarray,
                      dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the edges stably sorted by source vertex.

    This is the edge order the FPGA scatter PEs consume (paper §IV-C:
    "HyScale-GNN first sorts the edges within a mini-batch by their source
    vertex so that edges with the same source vertex are executed in a
    back-to-back manner").
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise GraphError("src and dst must have equal shape")
    order = np.argsort(src, kind="stable")
    return src[order], dst[order]


def source_run_lengths(sorted_src: np.ndarray) -> np.ndarray:
    """Run lengths of equal consecutive sources in a src-sorted edge list.

    For a src-sorted list, run length of source ``v`` equals the number of
    times the Feature Duplicator can reuse ``X[v]`` after a single DDR fetch.
    """
    sorted_src = np.asarray(sorted_src)
    if sorted_src.size == 0:
        return np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(sorted_src)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_src.size]])
    return (ends - starts).astype(np.int64)


def unique_sources(src: np.ndarray) -> np.ndarray:
    """Distinct source vertices of an edge list (the O(|V^0|) traffic set)."""
    return np.unique(np.asarray(src, dtype=np.int64))
