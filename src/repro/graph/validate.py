"""Structural validation for graphs and datasets.

:func:`check_graph` re-verifies every CSR invariant from first principles
(independent of the checks the constructor performs) and is used by tests,
by :func:`repro.graph.datasets.load_dataset` consumers, and as a debugging
aid. It raises :class:`repro.errors.GraphError` with a precise message on
the first violation found.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def check_graph(graph: CSRGraph, *, require_symmetric: bool = False,
                forbid_self_loops: bool = False,
                forbid_duplicates: bool = False) -> None:
    """Verify CSR structural invariants.

    Parameters
    ----------
    require_symmetric:
        Additionally require every edge to exist in both directions.
    forbid_self_loops:
        Fail if any ``(v, v)`` edge exists.
    forbid_duplicates:
        Fail if any ``(u, v)`` pair appears more than once.
    """
    indptr, indices = graph.indptr, graph.indices
    if indptr.ndim != 1 or indices.ndim != 1:
        raise GraphError("indptr and indices must be 1-D")
    if indptr[0] != 0:
        raise GraphError("indptr must start at 0")
    if indptr[-1] != indices.size:
        raise GraphError("indptr must end at num_edges")
    if np.any(np.diff(indptr) < 0):
        raise GraphError("indptr must be monotone non-decreasing")
    if indices.size:
        if indices.min() < 0 or indices.max() >= graph.num_vertices:
            raise GraphError("edge endpoint out of range")

    src, dst = graph.edges()
    if forbid_self_loops and np.any(src == dst):
        raise GraphError("graph contains self-loops")
    if forbid_duplicates and src.size:
        keys = src * np.int64(graph.num_vertices) + dst
        if np.unique(keys).size != keys.size:
            raise GraphError("graph contains duplicate edges")
    if require_symmetric:
        fwd = np.sort(src * np.int64(graph.num_vertices) + dst)
        rev = np.sort(dst * np.int64(graph.num_vertices) + src)
        if not np.array_equal(fwd, rev):
            raise GraphError("graph is not symmetric")


def degree_histogram(graph: CSRGraph, bins: int = 32) -> tuple[np.ndarray,
                                                               np.ndarray]:
    """Log-spaced out-degree histogram (used by dataset sanity benches)."""
    degs = graph.out_degrees
    max_deg = max(1, int(degs.max()) if degs.size else 1)
    edges = np.unique(np.geomspace(1, max_deg + 1, num=bins).astype(
        np.int64))
    hist, _ = np.histogram(degs, bins=edges)
    return hist, edges
