"""Trainer nodes: one model replica bound to one (modelled) device.

A :class:`TrainerNode` couples the functional plane (a real NumPy model
replica trained on real sampled batches) with the timing plane (the
device's kernel cost model evaluated on the same batch's statistics).
The hybrid system instantiates one CPU trainer plus one per accelerator;
the multi-GPU baseline instantiates accelerator trainers only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..hw.kernels import PropagationBreakdown
from ..nn.loss import accuracy, softmax_cross_entropy
from ..nn.models import GNNModel
from ..sampling.base import MiniBatch


@dataclass(frozen=True)
class TrainerReport:
    """Outcome of one trainer's work on one mini-batch."""

    trainer: str
    loss: float
    accuracy: float
    batch_targets: int
    propagation: PropagationBreakdown | None


class TrainerNode:
    """One GNN Trainer (paper §III-A).

    Parameters
    ----------
    name:
        Identifier, e.g. ``"cpu"`` or ``"accel0"``.
    kind:
        ``"cpu"`` or ``"accel"`` (placement; decides whether batches must
        cross PCIe, which the runtime accounts).
    model:
        This trainer's model replica.
    kernel_model:
        Device cost model with a ``propagation(stats, dims, model)``
        method, or ``None`` to skip timing (pure-functional tests).
    dims / model_name:
        Layer dimensions and model family for the kernel model.
    """

    def __init__(self, name: str, kind: str, model: GNNModel,
                 kernel_model, dims, model_name: str) -> None:
        if kind not in ("cpu", "accel"):
            raise ConfigError(f"unknown trainer kind {kind!r}")
        self.name = name
        self.kind = kind
        self.model = model
        self.kernel_model = kernel_model
        self.dims = tuple(dims)
        self.model_name = model_name

    def train_minibatch(self, minibatch: MiniBatch, x0: np.ndarray,
                        labels: np.ndarray,
                        global_degrees: np.ndarray | None
                        ) -> TrainerReport:
        """Forward + backward on one batch; gradients stay in the model.

        The caller (runtime) is responsible for synchronization and the
        optimizer step, mirroring the paper's separation between Trainers
        and the Synchronizer.
        """
        self.model.zero_grad()
        logits = self.model.forward(minibatch, x0, global_degrees)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        acc = accuracy(logits, labels)
        self.model.backward(dlogits)
        breakdown = None
        if self.kernel_model is not None:
            breakdown = self.kernel_model.propagation(
                minibatch.stats(), self.dims, self.model_name)
        return TrainerReport(trainer=self.name, loss=loss, accuracy=acc,
                             batch_targets=minibatch.targets.size,
                             propagation=breakdown)

    def evaluate(self, minibatch: MiniBatch, x0: np.ndarray,
                 labels: np.ndarray,
                 global_degrees: np.ndarray | None) -> tuple[float, float]:
        """(loss, accuracy) without touching gradients."""
        logits = self.model.forward(minibatch, x0, global_degrees)
        loss, _ = softmax_cross_entropy(logits, labels)
        self.model._caches = None
        return loss, accuracy(logits, labels)
