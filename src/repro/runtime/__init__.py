"""The HyScale-GNN runtime: protocol, pipeline, DRM, and the hybrid system.

This package is the paper's primary contribution (§III-§IV):

* :mod:`repro.runtime.protocol` — the processor-accelerator training
  protocol's handshake signals and ordering invariants (paper Fig. 5,
  Listing 1);
* :mod:`repro.runtime.synchronizer` — gradient all-reduce across trainer
  replicas (gather → average → broadcast);
* :mod:`repro.runtime.trainer` — CPU and accelerator trainer nodes
  (functional NumPy training + kernel-model timing);
* :mod:`repro.runtime.prefetch` — the two-stage feature prefetch buffers;
* :mod:`repro.runtime.drm` — the Dynamic Resource Management engine
  (paper Algorithm 1, verbatim decision structure);
* :mod:`repro.runtime.core` — the shared runtime core:
  :class:`TrainingSession` (owns all construction: sampler via the
  registry in :mod:`repro.sampling`, trainer replicas, synchronizer,
  optimizers, perf model, DRM, quantize policy) and :class:`BatchPlan`
  (the per-trainer quota / permutation-cursor logic, implemented once);
* :mod:`repro.runtime.backends` — pluggable execution strategies over
  the core. The **backend registry** maps a name to an
  :class:`ExecutionBackend` subclass: ``get_backend("virtual")`` returns
  :class:`VirtualTimeBackend` (sequential, modelled-hardware time —
  the paper-figure plane), ``get_backend("threaded")`` returns
  :class:`ThreadedBackend` (live threads, Listing-1 handshakes),
  ``get_backend("process")`` returns :class:`ProcessPoolBackend`
  (worker processes over a shared-memory feature store — GIL-free
  NumPy training), ``get_backend("process_sampling")`` returns
  :class:`ProcessSamplingBackend` (workers that additionally run the
  sample stage locally from independent per-worker RNG streams — the
  parent deals plan shards and adjudicates DRM),
  ``get_backend("pipelined")`` returns
  :class:`PipelinedBackend` (overlapped per-trainer
  sample → gather → transfer stage threads with an adaptive,
  perf-model-driven look-ahead — the paper's §IV-B prefetch made
  live), and ``get_backend("process_pipelined")`` returns
  :class:`ProcessPipelinedBackend` (the fusion of the last two: the
  parent deals plan shards *ahead* through a bounded adaptive
  look-ahead window while each worker overlaps its local
  sample → gather → transfer chain with train+sync on stage threads —
  process parallelism and stage overlap composed). All execute the
  *same* plan and session, so hybrid
  split, DRM, prefetch and transfer quantization behave identically on
  each; new executors (e.g. multi-node sharding) join via
  :func:`register_backend` without touching the core and inherit the
  tiered conformance suite
  (``tests/integration/backend_conformance.py``) at the tier their
  ``conformance_tier`` capability flag declares — the full backend-
  author guide lives in ``docs/backends.md``;
* :mod:`repro.runtime.shm` — :class:`SharedFeatureStore`, the
  single-segment shared-memory mapping of the dataset's features,
  labels and CSR topology that process workers gather from zero-copy;
* :mod:`repro.runtime.resctl` — feedback-driven resource control:
  :class:`StageMonitor` (realized per-stage wall times sampled from
  the live planes), :class:`OnlineEstimator` (calibrates the analytic
  perf model against the realized signal), and :class:`NodeAllocator`
  (arbitrates look-ahead depth budget across concurrent sessions).
  The overlapped backends expose the loop through their
  ``depth_source`` knob (see ``docs/architecture.md``);
* :mod:`repro.runtime.hybrid` — :class:`HyScaleGNN`, the top-level
  system facade (session + virtual-time backend);
* :mod:`repro.runtime.executor` — :class:`ThreadedExecutor`, the
  threaded facade (session + threaded backend).
"""

from .protocol import ProtocolLog, ProtocolEvent, Signal, validate_protocol
from .synchronizer import GradientSynchronizer
from .trainer import TrainerNode, TrainerReport
from .prefetch import PrefetchBuffer
from .drm import DRMDecision, DRMEngine
from .core import BatchPlan, PlannedIteration, TrainingSession
from .stage_pipeline import (
    PreparedBatch,
    StagePipeline,
    StageTimings,
    WorkSource,
)
from .shm import (
    SharedFeatureStore,
    SharedPrefetchSpec,
    SharedSamplerSpec,
    SharedStoreManifest,
)
from .backends import (
    BACKENDS,
    BackendOptions,
    ExecutionBackend,
    PipelinedBackend,
    ProcessPipelinedBackend,
    ProcessPoolBackend,
    ProcessSamplingBackend,
    ShardedBackend,
    ShardedReport,
    ThreadedBackend,
    VirtualTimeBackend,
    available_backends,
    build_backend,
    get_backend,
    register_backend,
    resolve_options,
)
from .backends.threaded import ExecutorReport
from .backends.virtual import EpochReport
from .backends.process_pool import ProcessReport
from .backends.process_sampling import ProcessSamplingReport
from .backends.pipelined import (
    DEPTH_SOURCES,
    PipelinedReport,
    StageStats,
    adaptive_depth,
    seed_depth,
)
from .backends.process_pipelined import (
    LookaheadDealer,
    ProcessPipelinedReport,
)
from .resctl import (
    DEFAULT_ALLOCATOR,
    DepthGrant,
    NodeAllocator,
    OnlineEstimator,
    StageMonitor,
    StageSummary,
    fold_worker_realized,
    summarize_calibration,
)
from .hybrid import HyScaleGNN
from .executor import ThreadedExecutor

__all__ = [
    "Signal",
    "ProtocolEvent",
    "ProtocolLog",
    "validate_protocol",
    "GradientSynchronizer",
    "TrainerNode",
    "TrainerReport",
    "PrefetchBuffer",
    "DRMEngine",
    "DRMDecision",
    "TrainingSession",
    "BatchPlan",
    "PlannedIteration",
    "StagePipeline",
    "StageTimings",
    "PreparedBatch",
    "WorkSource",
    "ExecutionBackend",
    "VirtualTimeBackend",
    "ThreadedBackend",
    "ProcessPoolBackend",
    "ProcessSamplingBackend",
    "PipelinedBackend",
    "ProcessPipelinedBackend",
    "ShardedBackend",
    "ShardedReport",
    "ProcessReport",
    "ProcessSamplingReport",
    "PipelinedReport",
    "ProcessPipelinedReport",
    "LookaheadDealer",
    "StageStats",
    "adaptive_depth",
    "seed_depth",
    "DEPTH_SOURCES",
    "DEFAULT_ALLOCATOR",
    "DepthGrant",
    "NodeAllocator",
    "OnlineEstimator",
    "StageMonitor",
    "StageSummary",
    "fold_worker_realized",
    "summarize_calibration",
    "SharedFeatureStore",
    "SharedPrefetchSpec",
    "SharedSamplerSpec",
    "SharedStoreManifest",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "available_backends",
    "BackendOptions",
    "build_backend",
    "resolve_options",
    "HyScaleGNN",
    "EpochReport",
    "ThreadedExecutor",
    "ExecutorReport",
]
