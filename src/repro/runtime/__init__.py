"""The HyScale-GNN runtime: protocol, pipeline, DRM, and the hybrid system.

This package is the paper's primary contribution (§III-§IV):

* :mod:`repro.runtime.protocol` — the processor-accelerator training
  protocol's handshake signals and ordering invariants (paper Fig. 5,
  Listing 1);
* :mod:`repro.runtime.synchronizer` — gradient all-reduce across trainer
  replicas (gather → average → broadcast);
* :mod:`repro.runtime.trainer` — CPU and accelerator trainer nodes
  (functional NumPy training + kernel-model timing);
* :mod:`repro.runtime.prefetch` — the two-stage feature prefetch buffers;
* :mod:`repro.runtime.drm` — the Dynamic Resource Management engine
  (paper Algorithm 1, verbatim decision structure);
* :mod:`repro.runtime.hybrid` — :class:`HyScaleGNN`, the top-level system
  that trains functionally while accounting virtual time;
* :mod:`repro.runtime.executor` — a live multi-threaded executor using
  condition-variable handshakes exactly like the paper's pthread
  implementation.
"""

from .protocol import ProtocolLog, ProtocolEvent, Signal, validate_protocol
from .synchronizer import GradientSynchronizer
from .trainer import TrainerNode, TrainerReport
from .prefetch import PrefetchBuffer
from .drm import DRMDecision, DRMEngine
from .hybrid import EpochReport, HyScaleGNN
from .executor import ThreadedExecutor

__all__ = [
    "Signal",
    "ProtocolEvent",
    "ProtocolLog",
    "validate_protocol",
    "GradientSynchronizer",
    "TrainerNode",
    "TrainerReport",
    "PrefetchBuffer",
    "DRMEngine",
    "DRMDecision",
    "HyScaleGNN",
    "EpochReport",
    "ThreadedExecutor",
]
