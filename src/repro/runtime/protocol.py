"""Processor-accelerator training protocol (paper §III-C, Fig. 5).

The protocol defines the handshake between trainers, the synchronizer and
the runtime inside each iteration:

1. every trainer finishes propagation and raises ``DONE`` (after its
   gradients are stored/transferred to CPU memory);
2. when all ``n`` DONEs arrived, the synchronizer performs the all-reduce
   and broadcasts averaged gradients;
3. every trainer applies the update and raises ``ACK``;
4. when all ``n`` ACKs arrived, the runtime starts the next iteration.

:class:`ProtocolLog` records these events (from either the virtual-time
engine or the threaded executor) and :func:`validate_protocol` checks the
ordering invariants — the reproduction's analogue of "the handshake code
in Listing 1 is correct".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ProtocolError


class Signal(enum.Enum):
    """Handshake signal types (paper Fig. 5)."""

    DONE = "DONE"            # trainer -> synchronizer: gradients ready
    SYNC = "SYNC"            # synchronizer: all-reduce completed
    ACK = "ACK"              # trainer -> runtime: weights updated
    ITER_START = "ITER"      # runtime: next iteration begins


@dataclass(frozen=True)
class ProtocolEvent:
    """One protocol event."""

    iteration: int
    signal: Signal
    sender: str
    timestamp: float = 0.0


class ProtocolLog:
    """Append-only event log with per-iteration queries."""

    def __init__(self) -> None:
        self.events: list[ProtocolEvent] = []

    def record(self, iteration: int, signal: Signal, sender: str,
               timestamp: float = 0.0) -> None:
        """Append an event."""
        if iteration < 0:
            raise ProtocolError("iteration must be non-negative")
        self.events.append(ProtocolEvent(iteration, signal, sender,
                                         timestamp))

    def iteration_events(self, iteration: int) -> list[ProtocolEvent]:
        """Events of one iteration, in arrival order."""
        return [e for e in self.events if e.iteration == iteration]

    def count(self, iteration: int, signal: Signal) -> int:
        """Number of events of one type within an iteration."""
        return sum(1 for e in self.iteration_events(iteration)
                   if e.signal is signal)

    @property
    def num_iterations(self) -> int:
        if not self.events:
            return 0
        return max(e.iteration for e in self.events) + 1


def validate_protocol(log: ProtocolLog, num_trainers: int) -> None:
    """Check the protocol invariants over a full log.

    Raises :class:`repro.errors.ProtocolError` on the first violation:

    * exactly ``num_trainers`` DONE and ACK events per iteration;
    * exactly one SYNC per iteration;
    * all DONEs precede the SYNC; the SYNC precedes all ACKs;
    * iteration ``i+1`` events never precede iteration ``i``'s last ACK.
    """
    if num_trainers <= 0:
        raise ProtocolError("num_trainers must be positive")
    order: dict[int, int] = {id(e): i for i, e in enumerate(log.events)}

    last_ack_pos = -1
    for it in range(log.num_iterations):
        events = log.iteration_events(it)
        dones = [e for e in events if e.signal is Signal.DONE]
        syncs = [e for e in events if e.signal is Signal.SYNC]
        acks = [e for e in events if e.signal is Signal.ACK]
        if len(dones) != num_trainers:
            raise ProtocolError(
                f"iteration {it}: {len(dones)} DONE events, expected "
                f"{num_trainers}")
        if len(syncs) != 1:
            raise ProtocolError(
                f"iteration {it}: {len(syncs)} SYNC events, expected 1")
        if len(acks) != num_trainers:
            raise ProtocolError(
                f"iteration {it}: {len(acks)} ACK events, expected "
                f"{num_trainers}")
        if len({e.sender for e in dones}) != num_trainers:
            raise ProtocolError(
                f"iteration {it}: duplicate DONE sender")
        if len({e.sender for e in acks}) != num_trainers:
            raise ProtocolError(
                f"iteration {it}: duplicate ACK sender")
        sync_pos = order[id(syncs[0])]
        for e in dones:
            if order[id(e)] > sync_pos:
                raise ProtocolError(
                    f"iteration {it}: DONE from {e.sender} after SYNC")
        for e in acks:
            if order[id(e)] < sync_pos:
                raise ProtocolError(
                    f"iteration {it}: ACK from {e.sender} before SYNC")
        first_pos = min(order[id(e)] for e in events)
        if first_pos < last_ack_pos:
            raise ProtocolError(
                f"iteration {it} started before iteration {it - 1} "
                "finished")
        last_ack_pos = max(order[id(e)] for e in acks)
