"""Feature quantization for PCIe transfer (paper §VIII future work).

The paper's stated future work: "we plan to exploit techniques like data
quantization to relieve the stress on the PCIe bandwidth". This module
implements it: mini-batch feature matrices destined for accelerators are
quantized before crossing PCIe (and dequantized on-device), cutting the
Data Transfer stage's traffic 2× (fp16) or 4× (int8).

The functional plane applies the *real* quantize-dequantize round trip to
accelerator trainers' inputs — the accuracy cost is measured, not
assumed (the CPU trainer keeps reading full-precision features from host
memory, matching the mechanism). ``tests/integration`` and
``benchmarks/bench_extension_quantization.py`` quantify both sides of
the trade.

The numeric work dispatches through the kernel registry
(:mod:`repro.kernels`): the default fast tier runs the int8 round trip
with a single destination buffer and in-place round/clip/rescale (no
int8 or widened temporaries), and the accelerator gather+transfer
chokepoint (:func:`repro.runtime.core.gather_batch_features`) fuses the
two stages into one kernel. Every tier returns bit-identical results
(``docs/kernels.md`` documents the contract).
"""

from __future__ import annotations

import numpy as np

from .. import kernels

#: Bytes per feature element on the PCIe link, per precision mode
#: (re-exported from the kernel registry, the single ground truth).
TRANSFER_BYTES = kernels.TRANSFER_BYTES


def quantize_dequantize(x: np.ndarray, mode: str) -> np.ndarray:
    """Round-trip ``x`` through the transfer precision.

    Parameters
    ----------
    x:
        ``(rows, features)`` float array (any float dtype).
    mode:
        ``"fp32"`` (identity), ``"fp16"`` (IEEE half round-trip), or
        ``"int8"`` (per-row symmetric linear quantization — each feature
        row carries its own scale, as a real implementation would ship
        one fp32 scale per row alongside the payload).

    Returns an array of ``x``'s own float dtype with the quantization
    error applied — a float32 batch comes back float32 (dtype
    inflation here used to double every downstream trainer's memory
    traffic).
    """
    return kernels.quantize(x, mode)


def quantization_rmse(x: np.ndarray, mode: str) -> float:
    """Root-mean-square quantization error (diagnostics/benches)."""
    x = np.asarray(x, dtype=np.float64)
    err = quantize_dequantize(x, mode) - x
    return float(np.sqrt(np.mean(err * err)))
