"""Feature quantization for PCIe transfer (paper §VIII future work).

The paper's stated future work: "we plan to exploit techniques like data
quantization to relieve the stress on the PCIe bandwidth". This module
implements it: mini-batch feature matrices destined for accelerators are
quantized before crossing PCIe (and dequantized on-device), cutting the
Data Transfer stage's traffic 2× (fp16) or 4× (int8).

The functional plane applies the *real* quantize-dequantize round trip to
accelerator trainers' inputs — the accuracy cost is measured, not
assumed (the CPU trainer keeps reading full-precision features from host
memory, matching the mechanism). ``tests/integration`` and
``benchmarks/bench_extension_quantization.py`` quantify both sides of
the trade.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

#: Bytes per feature element on the PCIe link, per precision mode.
TRANSFER_BYTES = {"fp32": 4, "fp16": 2, "int8": 1}


def quantize_dequantize(x: np.ndarray, mode: str) -> np.ndarray:
    """Round-trip ``x`` through the transfer precision.

    Parameters
    ----------
    x:
        ``(rows, features)`` float array (any float dtype).
    mode:
        ``"fp32"`` (identity), ``"fp16"`` (IEEE half round-trip), or
        ``"int8"`` (per-row symmetric linear quantization — each feature
        row carries its own scale, as a real implementation would ship
        one fp32 scale per row alongside the payload).

    Returns a float64 array with the quantization error applied.
    """
    if mode not in TRANSFER_BYTES:
        raise ConfigError(
            f"unknown transfer precision {mode!r}; "
            f"expected one of {sorted(TRANSFER_BYTES)}")
    x = np.asarray(x)
    if x.ndim != 2:
        raise ConfigError("expected a 2-D feature matrix")
    if mode == "fp32":
        return x.astype(np.float64, copy=False)
    if mode == "fp16":
        return x.astype(np.float16).astype(np.float64)
    # int8: symmetric per-row scale.
    absmax = np.abs(x).max(axis=1, keepdims=True)
    scale = np.where(absmax > 0, absmax / 127.0, 1.0)
    q = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
    return q.astype(np.float64) * scale


def quantization_rmse(x: np.ndarray, mode: str) -> float:
    """Root-mean-square quantization error (diagnostics/benches)."""
    x = np.asarray(x, dtype=np.float64)
    err = quantize_dequantize(x, mode) - x
    return float(np.sqrt(np.mean(err * err)))
