"""HyScale-GNN: the top-level hybrid training system (paper §III).

:class:`HyScaleGNN` wires every component together:

* a :class:`~repro.sampling.neighbor.NeighborSampler` (Mini-batch Sampler)
  over the host-resident graph;
* a Feature Loader (host-memory row gather);
* one :class:`~repro.runtime.trainer.TrainerNode` per device (CPU trainer
  when hybrid, plus one per accelerator), each with its own model replica;
* the :class:`~repro.runtime.synchronizer.GradientSynchronizer`;
* the :class:`~repro.runtime.drm.DRMEngine` (when enabled);
* the :class:`~repro.sim.engine.PipelineSimulator` resolving the
  four-stage pipeline with or without Two-stage Feature Prefetching.

Two entry points:

* :meth:`train_epoch` — *functional* training on the (scaled) dataset:
  real sampling, real forward/backward, real gradient all-reduce, and
  virtual-time accounting from the realized batches. Convergence and
  equivalence claims are validated in this mode.
* :meth:`simulate_epoch` — *timing-only* simulation, optionally at the
  full paper dataset scale (projected batch statistics with measured
  per-batch jitter). This is what the figure benches sweep; it includes
  the effects the analytic model omits (kernel-launch overheads,
  pipeline fill/flush, per-batch workload variation, DRM transients) —
  the paper's predicted-vs-actual gap (Fig. 8) arises here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig, TrainingConfig, layer_dims
from ..errors import ConfigError
from ..graph.datasets import GraphDataset
from ..hw.topology import PlatformSpec
from ..nn.models import build_model
from ..nn.optim import SGD
from ..perfmodel.mapping import initial_mapping
from ..perfmodel.model import (
    PerformanceModel,
    StageTimes,
    WorkloadSplit,
    throughput_mteps,
)
from ..perfmodel.sampling_profile import (
    SamplingProfile,
    project_full_scale_stats,
)
from ..sampling.base import MiniBatchStats
from ..sampling.neighbor import NeighborSampler
from ..sim.engine import PipelineSimulator
from ..sim.trace import Timeline
from .drm import DRMEngine
from .synchronizer import GradientSynchronizer
from .trainer import TrainerNode

_PIPELINE_STAGES = ("sample", "load", "transfer", "propagate")


@dataclass
class EpochReport:
    """Everything one epoch produced.

    ``epoch_time_s`` is *virtual* (modelled-hardware) time; functional
    quality metrics are populated only by :meth:`HyScaleGNN.train_epoch`.
    """

    mode: str                                  # "functional" | "simulated"
    iterations: int
    epoch_time_s: float
    timeline: Timeline
    stage_history: list[StageTimes] = field(default_factory=list)
    split_history: list[WorkloadSplit] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    total_edges: float = 0.0

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses)) if self.losses else float("nan")

    @property
    def throughput_mteps(self) -> float:
        """Eq. 5 over the whole epoch."""
        if self.epoch_time_s <= 0:
            return 0.0
        return self.total_edges / self.epoch_time_s / 1e6

    def bottleneck_stage(self) -> str | None:
        """Dominant pipeline stage over the epoch."""
        return self.timeline.bottleneck_stage()


class HyScaleGNN:
    """Hybrid GNN training system on a modelled heterogeneous node.

    Parameters
    ----------
    dataset:
        A (scaled) :class:`~repro.graph.datasets.GraphDataset`.
    platform:
        Node description (accelerator count/kind, links).
    train_cfg / sys_cfg:
        Algorithm parameters and system feature flags (hybrid / DRM /
        prefetch — the Fig. 11 ablation axes).
    full_scale:
        When True (the figure benches), the timing plane reasons about
        the *paper-scale* dataset: batch statistics are projected to the
        full graph (collision-corrected) and the full train-set size sets
        the iteration count. The compile-time mapping, the DRM inputs and
        the simulation then see consistent statistics. Functional
        training (:meth:`train_epoch`) always runs on the scaled graph.
    profile_probes:
        Batches sampled to build the sampling profile.
    fpga_n_pes / fpga_m_macs:
        FPGA kernel parallelism (Table IV) for FPGA platforms.
    """

    def __init__(self, dataset: GraphDataset, platform: PlatformSpec,
                 train_cfg: TrainingConfig,
                 sys_cfg: SystemConfig | None = None, *,
                 full_scale: bool = False,
                 profile_probes: int = 6,
                 sampler_rate_per_thread: float | None = None,
                 fpga_n_pes: int = 8, fpga_m_macs: int = 2048) -> None:
        if platform.num_accelerators == 0 and not (
                sys_cfg is None or sys_cfg.hybrid):
            raise ConfigError("no accelerators and no CPU trainer")
        self.dataset = dataset
        self.platform = platform
        self.train_cfg = train_cfg
        self.sys_cfg = sys_cfg if sys_cfg is not None else SystemConfig()
        self.full_scale = full_scale

        self.dims = layer_dims(dataset.spec.feature_dim,
                               train_cfg.hidden_dim,
                               dataset.spec.num_classes,
                               train_cfg.num_layers)
        self.sampler = NeighborSampler(
            dataset.graph, dataset.train_ids, train_cfg.fanouts,
            dataset.spec.feature_dim, seed=train_cfg.seed)
        measured = SamplingProfile.measure(
            self.sampler, train_cfg.minibatch_size,
            num_probes=profile_probes, seed=train_cfg.seed + 1)
        if full_scale:
            # Replace the measured means with the full-graph projection,
            # keeping the measured relative variation for jitter.
            self.profile = SamplingProfile(
                base_minibatch_size=train_cfg.minibatch_size,
                mean_stats=project_full_scale_stats(
                    dataset.graph, dataset.spec, train_cfg.fanouts,
                    train_cfg.minibatch_size),
                rel_std=measured.rel_std)
        else:
            self.profile = measured
        pm_kwargs = {}
        if sampler_rate_per_thread is not None:
            pm_kwargs["sampler_rate_per_thread"] = sampler_rate_per_thread
        from .quantize import TRANSFER_BYTES
        self.perfmodel = PerformanceModel(
            platform, self.dims, train_cfg.model, self.profile,
            transfer_elem_bytes=TRANSFER_BYTES[
                self.sys_cfg.transfer_precision],
            fpga_n_pes=fpga_n_pes, fpga_m_macs=fpga_m_macs, **pm_kwargs)

        # ---- compile-time coarse mapping (paper §IV-A) ----
        if self.sys_cfg.hybrid:
            self.split = initial_mapping(
                self.perfmodel, train_cfg.minibatch_size,
                hybrid=True, pipelined=self.sys_cfg.prefetch,
                coarse=True).split
        else:
            n = platform.num_accelerators
            self.split = WorkloadSplit(
                cpu_targets=0,
                accel_targets=(train_cfg.minibatch_size,) * n,
                sample_threads=128, load_threads=64, train_threads=0)
        self.initial_split = self.split

        # ---- trainers + synchronizer (functional plane) ----
        self._degrees = dataset.graph.out_degrees
        self.trainers: list[TrainerNode] = []
        if self.sys_cfg.hybrid:
            self.trainers.append(TrainerNode(
                "cpu", "cpu",
                build_model(train_cfg.model, self.dims, train_cfg.seed),
                None, self.dims, train_cfg.model))
        for i in range(platform.num_accelerators):
            self.trainers.append(TrainerNode(
                f"accel{i}", "accel",
                build_model(train_cfg.model, self.dims, train_cfg.seed),
                None, self.dims, train_cfg.model))
        self.synchronizer = GradientSynchronizer(
            [t.model for t in self.trainers], weighting="batch")
        self.optimizers = [SGD(t.model, lr=train_cfg.learning_rate)
                           for t in self.trainers]

        self.drm = DRMEngine(self.sys_cfg, train_cfg.minibatch_size,
                             hybrid=self.sys_cfg.hybrid,
                             pipelined=self.sys_cfg.prefetch) \
            if self.sys_cfg.drm else None
        self._rng = np.random.default_rng(train_cfg.seed + 2)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def num_trainers(self) -> int:
        return len(self.trainers)

    def _split_target_counts(self) -> list[int]:
        """Per-trainer target quota in trainer order."""
        counts = []
        if self.sys_cfg.hybrid:
            counts.append(self.split.cpu_targets)
        counts.extend(self.split.accel_targets)
        return counts

    def _launch_overhead_s(self) -> float:
        """Per-iteration accelerator launch cost (simulated-actual only)."""
        accel = self.platform.accelerator
        if accel is None or self.platform.num_accelerators == 0:
            return 0.0
        if accel.kind == "fpga":
            launches = 2
        else:
            launches = 6 * self.train_cfg.num_layers * 2
        return launches * accel.kernel_launch_s

    def _stage_times(self, stats_cpu: MiniBatchStats | None,
                     stats_accel: list[MiniBatchStats | None]
                     ) -> StageTimes:
        return self.perfmodel.stage_times(self.split, stats_cpu,
                                          stats_accel)

    def _duration_row(self, times: StageTimes) -> list[float]:
        """Pipeline-stage durations including the 'actual' extras the
        analytic model omits (paper §VI-C): kernel-launch latency and
        pipeline-flush overhead on the accelerator pass, plus PCIe
        duplex contention between prefetch pushes and gradient pulls
        (only present when the stages actually overlap)."""
        accel = self.platform.accelerator
        flush = accel.pipeline_flush_frac if accel is not None else 0.0
        prop = (times.t_train_accel * (1.0 + flush)
                if times.t_train_accel > 0 else 0.0)
        prop = max(prop, times.t_train_cpu) + times.t_sync
        transfer = times.t_transfer
        if self.sys_cfg.prefetch and transfer > 0:
            transfer *= 1.0 + self.platform.pcie.duplex_derate
        return [times.t_sample, times.t_load, transfer,
                prop + self._launch_overhead_s()]

    def _drm_step(self, times: StageTimes, iteration: int) -> None:
        if self.drm is not None:
            self.split = self.drm.adjust(self.split, times, iteration)

    def _make_pipeline(self) -> PipelineSimulator:
        depth = self.sys_cfg.prefetch_depth if self.sys_cfg.prefetch \
            else 0
        return PipelineSimulator(_PIPELINE_STAGES, prefetch_depth=depth)

    # ------------------------------------------------------------------
    # Functional training
    # ------------------------------------------------------------------
    def train_epoch(self, max_iterations: int | None = None
                    ) -> EpochReport:
        """One epoch of real training with virtual-time accounting.

        Every trainer with a non-zero quota samples a real batch, loads
        real features, computes real gradients; the synchronizer averages
        them (batch-size weighted) and every optimizer steps. Stage times
        for the same iteration come from the realized batch statistics.
        """
        perm = self._rng.permutation(self.dataset.train_ids)
        cursor = 0
        rows: list[list[float]] = []
        report = EpochReport(mode="functional", iterations=0,
                             epoch_time_s=0.0, timeline=Timeline())
        features = self.dataset.features
        labels_all = self.dataset.labels

        iteration = 0
        while cursor < perm.size:
            counts = self._split_target_counts()
            stats_cpu: MiniBatchStats | None = None
            stats_accel: list[MiniBatchStats | None] = []
            batch_sizes: list[int] = []
            losses_iter: list[float] = []
            accs_iter: list[float] = []
            edges_iter = 0.0

            for idx, trainer in enumerate(self.trainers):
                want = counts[idx]
                take = min(want, perm.size - cursor)
                if take <= 0:
                    batch_sizes.append(0)
                    if trainer.kind == "accel":
                        stats_accel.append(None)
                    continue
                targets = perm[cursor:cursor + take]
                cursor += take
                mb = self.sampler.sample(targets)
                st = mb.stats()
                edges_iter += st.total_edges
                if trainer.kind == "cpu":
                    stats_cpu = st
                else:
                    stats_accel.append(st)
                x0 = features[mb.input_nodes].astype(np.float64)
                if trainer.kind == "accel" and \
                        self.sys_cfg.transfer_precision != "fp32":
                    # Accelerator inputs cross PCIe quantized (§VIII
                    # extension); the CPU trainer reads host memory at
                    # full precision.
                    from .quantize import quantize_dequantize
                    x0 = quantize_dequantize(
                        x0, self.sys_cfg.transfer_precision)
                rep = trainer.train_minibatch(
                    mb, x0, labels_all[mb.targets], self._degrees)
                self.synchronizer.signal_done(trainer.name, iteration)
                batch_sizes.append(take)
                losses_iter.append(rep.loss)
                accs_iter.append(rep.accuracy)

            # Trainers that got no work this iteration still participate
            # in the all-reduce with zero gradients and weight zero.
            active = [b for b in batch_sizes if b > 0]
            if not active:
                break
            # Pad DONE signals for idle trainers (they have nothing to
            # contribute but the barrier still counts them).
            for idx, b in enumerate(batch_sizes):
                if b == 0:
                    self.trainers[idx].model.zero_grad()
                    self.synchronizer.signal_done(
                        self.trainers[idx].name, iteration)
            while len(batch_sizes) < self.num_trainers:
                batch_sizes.append(0)
            self.synchronizer.all_reduce(batch_sizes, iteration)
            for opt in self.optimizers:
                opt.step()

            times = self._stage_times(stats_cpu, stats_accel)
            rows.append(self._duration_row(times))
            report.stage_history.append(times)
            report.split_history.append(self.split)
            report.losses.append(float(np.mean(losses_iter)))
            report.accuracies.append(float(np.mean(accs_iter)))
            report.total_edges += edges_iter
            self._drm_step(times, iteration)

            iteration += 1
            if max_iterations is not None and iteration >= max_iterations:
                break

        report.iterations = iteration
        timeline = self._make_pipeline().run(rows)
        report.timeline = timeline
        report.epoch_time_s = timeline.makespan
        return report

    def train(self, epochs: int | None = None,
              max_iterations: int | None = None) -> list[EpochReport]:
        """Run several functional epochs."""
        n = epochs if epochs is not None else self.train_cfg.epochs
        return [self.train_epoch(max_iterations) for _ in range(n)]

    # ------------------------------------------------------------------
    # Timing-only simulation
    # ------------------------------------------------------------------
    def simulate_epoch(self, full_scale: bool | None = None,
                       iterations: int | None = None,
                       jitter: bool = True) -> EpochReport:
        """Simulate one epoch's timing without functional training.

        Parameters
        ----------
        full_scale:
            Use the paper-scale train-set size for the iteration count
            (defaults to the system's construction-time setting; batch
            statistics always come from the system's profile, which is
            projection-based iff the system was built full-scale).
        iterations:
            Override the iteration count (e.g. short sweeps).
        jitter:
            Apply the measured per-batch size variation so iterations
            are not identical (stragglers + DRM noise — part of the
            predicted-vs-actual gap).
        """
        if full_scale is None:
            full_scale = self.full_scale
        base = self.train_cfg.minibatch_size
        base_stats = self.profile.expected_stats(base)
        if full_scale:
            train_count = self.dataset.spec.train_count
        else:
            train_count = int(self.dataset.train_ids.size)

        report = EpochReport(mode="simulated", iterations=0,
                             epoch_time_s=0.0, timeline=Timeline())
        rows: list[list[float]] = []
        remaining = train_count
        it = 0
        while remaining > 0:
            if iterations is not None and it >= iterations:
                break
            counts = self._split_target_counts()
            total = sum(counts)
            if total <= 0:
                raise ConfigError("split trains no targets")
            take_total = min(total, remaining)
            frac = take_total / total

            stats_cpu = None
            stats_accel: list[MiniBatchStats | None] = []
            k = 0
            for trainer in self.trainers:
                want = counts[k] if k < len(counts) else 0
                k += 1
                eff = int(round(want * frac))
                # Independent per-trainer batch-size variation: the
                # iteration barrier waits for the straggler, part of
                # the predicted-vs-actual gap (paper Fig. 5 barriers).
                scale_j = 1.0
                if jitter and self.profile.rel_std > 0:
                    scale_j = float(np.exp(self._rng.normal(
                        0.0, self.profile.rel_std)))
                st = base_stats.scaled(scale_j * eff / base) \
                    if eff > 0 else None
                if trainer.kind == "cpu":
                    stats_cpu = st
                else:
                    stats_accel.append(st)
                if st is not None:
                    report.total_edges += st.total_edges
            remaining -= take_total

            times = self._stage_times(stats_cpu, stats_accel)
            rows.append(self._duration_row(times))
            report.stage_history.append(times)
            report.split_history.append(self.split)
            self._drm_step(times, it)
            it += 1

        report.iterations = it
        timeline = self._make_pipeline().run(rows)
        report.timeline = timeline
        report.epoch_time_s = timeline.makespan
        return report

    # ------------------------------------------------------------------
    def predicted_epoch_time(self, full_scale: bool | None = None
                             ) -> float:
        """Closed-form prediction (paper Eq. 6 steady state) — the
        'predicted' series of Fig. 8, no launch/fill/jitter effects."""
        if full_scale is None:
            full_scale = self.full_scale
        base = self.train_cfg.minibatch_size
        base_stats = self.profile.expected_stats(base)
        train_count = self.dataset.spec.train_count if full_scale \
            else int(self.dataset.train_ids.size)
        split = self.split
        counts = self._split_target_counts()
        stats_cpu = None
        stats_accel: list[MiniBatchStats | None] = []
        for trainer, want in zip(self.trainers, counts):
            st = base_stats.scaled(want / base) if want > 0 else None
            if trainer.kind == "cpu":
                stats_cpu = st
            else:
                stats_accel.append(st)
        times = self.perfmodel.stage_times(split, stats_cpu, stats_accel)
        t_iter = times.iteration_time(pipelined=self.sys_cfg.prefetch)
        iters = max(1, -(-train_count // max(1, split.total_targets)))
        return iters * t_iter
