"""HyScale-GNN: the top-level hybrid training system (paper §III).

:class:`HyScaleGNN` is a thin facade over the shared runtime core: a
:class:`~repro.runtime.core.TrainingSession` (which owns the sampler,
trainer replicas, synchronizer, optimizers, performance model and DRM)
executed by the :class:`~repro.runtime.backends.VirtualTimeBackend`.
Construction logic lives in the session — the same session can be handed
to any registered backend (see :mod:`repro.runtime.backends`), which is
how the threaded plane gains hybrid split / DRM / quantized transfer for
free.

Two entry points:

* :meth:`train_epoch` — *functional* training on the (scaled) dataset:
  real sampling, real forward/backward, real gradient all-reduce, and
  virtual-time accounting from the realized batches. Convergence and
  equivalence claims are validated in this mode.
* :meth:`simulate_epoch` — *timing-only* simulation, optionally at the
  full paper dataset scale (projected batch statistics with measured
  per-batch jitter). This is what the figure benches sweep; it includes
  the effects the analytic model omits (kernel-launch overheads,
  pipeline fill/flush, per-batch workload variation, DRM transients) —
  the paper's predicted-vs-actual gap (Fig. 8) arises here.
"""

from __future__ import annotations

from ..config import SystemConfig, TrainingConfig
from ..graph.datasets import GraphDataset
from ..hw.topology import PlatformSpec
from ..perfmodel.model import WorkloadSplit
from .backends.virtual import EpochReport, VirtualTimeBackend
from .core import TrainingSession

__all__ = ["EpochReport", "HyScaleGNN"]


class HyScaleGNN:
    """Hybrid GNN training system on a modelled heterogeneous node.

    Parameters
    ----------
    dataset:
        A (scaled) :class:`~repro.graph.datasets.GraphDataset`.
    platform:
        Node description (accelerator count/kind, links).
    train_cfg / sys_cfg:
        Algorithm parameters and system feature flags (hybrid / DRM /
        prefetch — the Fig. 11 ablation axes).
    full_scale:
        When True (the figure benches), the timing plane reasons about
        the *paper-scale* dataset: batch statistics are projected to the
        full graph (collision-corrected) and the full train-set size sets
        the iteration count. The compile-time mapping, the DRM inputs and
        the simulation then see consistent statistics. Functional
        training (:meth:`train_epoch`) always runs on the scaled graph.
    profile_probes:
        Batches sampled to build the sampling profile.
    fpga_n_pes / fpga_m_macs:
        FPGA kernel parallelism (Table IV) for FPGA platforms.
    """

    def __init__(self, dataset: GraphDataset, platform: PlatformSpec,
                 train_cfg: TrainingConfig,
                 sys_cfg: SystemConfig | None = None, *,
                 full_scale: bool = False,
                 profile_probes: int = 6,
                 sampler_rate_per_thread: float | None = None,
                 fpga_n_pes: int = 8, fpga_m_macs: int = 2048) -> None:
        self.session = TrainingSession(
            dataset, train_cfg, sys_cfg, platform,
            full_scale=full_scale, profile_probes=profile_probes,
            sampler_rate_per_thread=sampler_rate_per_thread,
            fpga_n_pes=fpga_n_pes, fpga_m_macs=fpga_m_macs)
        self.backend = VirtualTimeBackend(self.session)

    # ------------------------------------------------------------------
    # Session delegation (the public surface predating the core split)
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> GraphDataset:
        return self.session.dataset

    @property
    def platform(self) -> PlatformSpec:
        return self.session.platform

    @property
    def train_cfg(self) -> TrainingConfig:
        return self.session.train_cfg

    @property
    def sys_cfg(self) -> SystemConfig:
        return self.session.sys_cfg

    @property
    def full_scale(self) -> bool:
        return self.session.full_scale

    @property
    def dims(self):
        return self.session.dims

    @property
    def sampler(self):
        return self.session.sampler

    @property
    def profile(self):
        return self.session.profile

    @property
    def perfmodel(self):
        return self.session.perfmodel

    @property
    def split(self) -> WorkloadSplit:
        return self.session.split

    @split.setter
    def split(self, value: WorkloadSplit) -> None:
        self.session.split = value

    @property
    def initial_split(self) -> WorkloadSplit:
        return self.session.initial_split

    @property
    def trainers(self):
        return self.session.trainers

    @property
    def synchronizer(self):
        return self.session.synchronizer

    @property
    def optimizers(self):
        return self.session.optimizers

    @property
    def drm(self):
        return self.session.drm

    @property
    def num_trainers(self) -> int:
        return self.session.num_trainers

    # ------------------------------------------------------------------
    # Training / simulation entry points
    # ------------------------------------------------------------------
    def train_epoch(self, max_iterations: int | None = None
                    ) -> EpochReport:
        """One epoch of real training with virtual-time accounting."""
        return self.backend.run_epoch(max_iterations)

    def train(self, epochs: int | None = None,
              max_iterations: int | None = None) -> list[EpochReport]:
        """Run several functional epochs."""
        return self.backend.train(epochs, max_iterations)

    def simulate_epoch(self, full_scale: bool | None = None,
                       iterations: int | None = None,
                       jitter: bool = True) -> EpochReport:
        """Simulate one epoch's timing without functional training."""
        return self.backend.simulate_epoch(full_scale, iterations, jitter)

    def predicted_epoch_time(self, full_scale: bool | None = None
                             ) -> float:
        """Closed-form prediction (paper Eq. 6 steady state)."""
        return self.session.predicted_epoch_time(full_scale)
