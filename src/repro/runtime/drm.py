"""Dynamic Resource Management engine (paper §IV-A, Algorithm 1).

The DRM engine is a bottleneck-guided optimizer invoked once per
iteration with the measured stage times. Its decision structure follows
Algorithm 1 line by line:

* ``T_Accel = max(T_Tran, T_TA)`` — transfer and accelerator training are
  bundled because their times co-vary with the accelerator workload;
* the bottleneck (largest) and fastest (smallest) of
  ``{T_SC, T_SA, T_Load, T_TC, T_Accel}`` select the case;
* ``balance_work`` shifts mini-batch quota (or sampling share) between
  CPU and accelerators, conserving the total mini-batch size;
* ``balance_thread`` moves CPU threads from the fastest CPU-resident task
  to the bottlenecked one.

Three engineering details the paper leaves implicit:

* **hysteresis** — if the bottleneck exceeds the runner-up by less than
  ``hysteresis`` (relative), no action is taken; otherwise the engine
  oscillates on noise;
* **non-CPU "fastest"** — Algorithm 1's ``balance_thread(fastest, ...)``
  can name an accelerator task, which has no CPU threads to donate; we
  substitute the fastest *CPU* task, which is the only sensible reading;
* **measured-improvement revert** — after each move the engine watches
  the next iteration's measured per-target time; if the move made things
  worse it is undone and that bottleneck case enters a short cooldown.
  Without this guard a bottleneck-only rule oscillates between two
  stages whose times cross (the "improve training throughput" objective
  of §IV-A demands moves that actually help).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import ConfigError
from ..perfmodel.model import StageTimes, WorkloadSplit

#: Stage keys used by the decision logic.
_SC, _SA, _LOAD, _TC, _ACCEL = ("sample_cpu", "sample_accel", "load",
                                "train_cpu", "train_accel_bundle")
_CPU_TASKS = (_SC, _LOAD, _TC)

#: Minimum targets an active accelerator trainer keeps (work cannot be
#: drained to zero by repeated balance_work calls).
MIN_ACCEL_TARGETS = 64

#: Minimum threads the sampler/loader pools always retain.
_THREAD_FLOOR = 16


@dataclass(frozen=True)
class DRMDecision:
    """Record of one DRM invocation (for traces, tests and benches)."""

    iteration: int
    bottleneck: str
    fastest: str
    action: str            # "balance_work" | "balance_thread" | "none"
    detail: str
    old_split: WorkloadSplit
    new_split: WorkloadSplit


class DRMEngine:
    """Stateful fine-grained task-mapping optimizer.

    Parameters
    ----------
    config:
        System flags; ``config.drm_work_step`` / ``drm_thread_step`` set
        the move granularity.
    minibatch_size:
        Base mini-batch size (work moves in ``drm_work_step`` fractions
        of this).
    hybrid:
        Whether a CPU trainer exists (balance_work toward the CPU is a
        no-op otherwise).
    total_threads:
        CPU thread budget the split must respect.
    hysteresis:
        Relative slack under which the engine declines to act.
    """

    def __init__(self, config: SystemConfig, minibatch_size: int,
                 hybrid: bool, total_threads: int = 256,
                 hysteresis: float = 0.05, pipelined: bool = True,
                 revert_tolerance: float = 0.05,
                 cooldown_iterations: int = 5) -> None:
        if minibatch_size <= 0:
            raise ConfigError("minibatch_size must be positive")
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigError("hysteresis must be in [0, 1)")
        self.config = config
        self.minibatch_size = minibatch_size
        self.hybrid = hybrid
        self.total_threads = total_threads
        self.hysteresis = hysteresis
        self.pipelined = pipelined
        self.revert_tolerance = revert_tolerance
        self.cooldown_iterations = cooldown_iterations
        self.decisions: list[DRMDecision] = []
        self._pending: tuple[WorkloadSplit, float, str] | None = None
        self._cooldown: dict[str, int] = {}
        self._backoff: dict[str, int] = {}
        self._best: tuple[WorkloadSplit, float] | None = None

    # ------------------------------------------------------------------
    def _metric(self, split: WorkloadSplit, times: StageTimes) -> float:
        """Seconds per trained target — lower is better."""
        total = max(1, split.total_targets)
        return times.iteration_time(self.pipelined) / total

    def adjust(self, split: WorkloadSplit, times: StageTimes,
               iteration: int = 0) -> WorkloadSplit:
        """One Algorithm-1 step with measured-improvement feedback.

        The throughput metric is compared against the *best* state seen
        so far (not merely the pre-move state): sequences of small moves
        that each slip under the tolerance can otherwise creep the
        system far from its optimum before any single step looks bad.
        """
        metric = self._metric(split, times)
        if self._best is None or metric < self._best[1]:
            self._best = (split, metric)

        # Judge the previous move against the best-known state.
        if self._pending is not None:
            _, _, case = self._pending
            self._pending = None
            best_split, best_metric = self._best
            if metric > best_metric * (1.0 + self.revert_tolerance):
                # Exponential backoff: a case that keeps regressing gets
                # progressively longer cooldowns (cap 64 iterations).
                back = min(64, self._backoff.get(case, 0) * 2
                           or self.cooldown_iterations)
                self._backoff[case] = back
                self._cooldown[case] = back
                self.decisions.append(DRMDecision(
                    iteration=iteration, bottleneck=case, fastest="",
                    action="revert", detail="move regressed throughput",
                    old_split=split, new_split=best_split))
                return best_split
            self._backoff.pop(case, None)

        new_split = self._algorithm1(split, times, iteration)
        if new_split is not split:
            self._pending = (split, metric,
                             self.decisions[-1].bottleneck)
        return new_split

    def _algorithm1(self, split: WorkloadSplit, times: StageTimes,
                    iteration: int) -> WorkloadSplit:
        """The verbatim Algorithm-1 decision switch."""
        stage = {
            _SC: times.t_sample_cpu,
            _SA: times.t_sample_accel,
            _LOAD: times.t_load,
            _TC: times.t_train_cpu,
            _ACCEL: times.t_accel,       # Alg. 1 line 1 bundle
        }
        ranked = sorted(stage, key=stage.get, reverse=True)
        bottleneck, fastest = ranked[0], ranked[-1]
        second_fastest = ranked[-2]
        cpu_ranked = sorted(_CPU_TASKS, key=stage.get)
        fastest_cpu = cpu_ranked[0]

        def register(action: str, detail: str,
                     new_split: WorkloadSplit) -> WorkloadSplit:
            self.decisions.append(DRMDecision(
                iteration=iteration, bottleneck=bottleneck,
                fastest=fastest, action=action, detail=detail,
                old_split=split, new_split=new_split))
            return new_split

        runner_up = stage[ranked[1]]
        if stage[bottleneck] <= runner_up * (1.0 + self.hysteresis):
            return register("none", "within hysteresis", split)
        remaining = self._cooldown.get(bottleneck, 0)
        if remaining > 0:
            self._cooldown[bottleneck] = remaining - 1
            return register("none", "case in cooldown", split)

        # --- Algorithm 1 switch -----------------------------------------
        if bottleneck == _SA:
            return register("balance_work", "sampling accel->cpu",
                            self._shift_sampling(split, toward_accel=False))
        if bottleneck == _ACCEL:
            return register("balance_work", "training accel->cpu",
                            self._shift_training(split, toward_accel=False))
        if bottleneck == _LOAD:
            return register(
                "balance_thread", f"{fastest_cpu} -> load",
                self._move_threads(split, donor=fastest_cpu, to=_LOAD))
        if bottleneck == _SC:
            if fastest == _SA or (fastest == _ACCEL
                                  and second_fastest == _SA):
                return register("balance_work", "sampling cpu->accel",
                                self._shift_sampling(split,
                                                     toward_accel=True))
            donor = fastest if fastest in _CPU_TASKS else fastest_cpu
            return register(
                "balance_thread", f"{donor} -> sample",
                self._move_threads(split, donor=donor, to=_SC))
        if bottleneck == _TC:
            if fastest == _ACCEL or (fastest == _SA
                                     and second_fastest == _ACCEL):
                return register("balance_work", "training cpu->accel",
                                self._shift_training(split,
                                                     toward_accel=True))
            donor = fastest if fastest in _CPU_TASKS else fastest_cpu
            return register(
                "balance_thread", f"{donor} -> train",
                self._move_threads(split, donor=donor, to=_TC))
        raise ConfigError(f"unhandled bottleneck {bottleneck!r}")

    # ------------------------------------------------------------------
    # balance_work
    # ------------------------------------------------------------------
    def _shift_training(self, split: WorkloadSplit,
                        toward_accel: bool) -> WorkloadSplit:
        """Move mini-batch quota between CPU trainer and accelerators.

        The total (paper §IV-A: "the total mini-batch size executed on
        the hybrid system remains the same") is conserved exactly.

        Threads follow work: the runtime allocates CPU worker threads per
        assigned mini-batch, so the CPU trainer's thread pool scales with
        its quota (donated by / returned to the sampler and loader,
        which keep a floor of ``_THREAD_FLOOR`` each). Without this a
        work move toward the CPU always regresses — the trainer would
        run the larger batch on the old, undersized pool.
        """
        n_accel = len(split.accel_targets)
        if n_accel == 0 or not self.hybrid:
            return split
        step_total = max(n_accel, int(round(
            self.config.drm_work_step * self.minibatch_size)))
        per_accel = max(1, step_total // n_accel)
        accel = list(split.accel_targets)
        if toward_accel:
            move = min(split.cpu_targets, per_accel * n_accel)
            if move == 0:
                return split
            base, rem = divmod(move, n_accel)
            for i in range(n_accel):
                accel[i] += base + (1 if i < rem else 0)
            new_cpu = split.cpu_targets - move
        else:
            # accel -> cpu: every accelerator donates equally, floored
            # at the minimum quota.
            moved = 0
            for i in range(n_accel):
                donate = min(per_accel,
                             max(0, accel[i] - MIN_ACCEL_TARGETS))
                accel[i] -= donate
                moved += donate
            if moved == 0:
                return split
            new_cpu = split.cpu_targets + moved
        threads = self._train_pool_for(split, new_cpu)
        return split.with_updates(cpu_targets=new_cpu,
                                  accel_targets=tuple(accel), **threads)

    def _train_pool_for(self, split: WorkloadSplit,
                        new_targets: int) -> dict[str, int]:
        """Thread allocation after the CPU quota changes to
        ``new_targets`` (threads follow work)."""
        if new_targets == 0:
            # Trainer drained: return its threads to the sampler.
            return {"sample_threads": split.sample_threads +
                    split.train_threads,
                    "load_threads": split.load_threads,
                    "train_threads": 0}
        if split.cpu_targets == 0:
            want = max(1, self.total_threads // 8)
        else:
            ratio = new_targets / split.cpu_targets
            want = max(1, int(round(split.train_threads * ratio)))
        delta = want - split.train_threads
        sample, load = split.sample_threads, split.load_threads
        if delta > 0:
            # Donate proportionally from sampler and loader, floors kept.
            avail_s = max(0, sample - _THREAD_FLOOR)
            avail_l = max(0, load - _THREAD_FLOOR)
            avail = avail_s + avail_l
            grant = min(delta, avail)
            take_s = min(avail_s, int(round(
                grant * (avail_s / avail)))) if avail else 0
            take_l = min(avail_l, grant - take_s)
            sample -= take_s
            load -= take_l
            want = split.train_threads + take_s + take_l
        else:
            sample += -delta
        return {"sample_threads": sample, "load_threads": load,
                "train_threads": max(1, want)}

    def _shift_sampling(self, split: WorkloadSplit,
                        toward_accel: bool) -> WorkloadSplit:
        """Move sampling share between CPU and accelerators."""
        if len(split.accel_targets) == 0:
            return split
        step = self.config.drm_work_step
        frac = split.accel_sample_fraction + (step if toward_accel
                                              else -step)
        frac = min(1.0, max(0.0, frac))
        if frac == split.accel_sample_fraction:
            return split
        return split.with_updates(accel_sample_fraction=frac)

    # ------------------------------------------------------------------
    # balance_thread
    # ------------------------------------------------------------------
    def _move_threads(self, split: WorkloadSplit, donor: str,
                      to: str) -> WorkloadSplit:
        """Move ``drm_thread_step`` threads from ``donor`` to ``to``."""
        if donor == to:
            return split
        fields = {_SC: "sample_threads", _LOAD: "load_threads",
                  _TC: "train_threads"}
        if donor not in fields or to not in fields:
            return split
        counts = {
            "sample_threads": split.sample_threads,
            "load_threads": split.load_threads,
            "train_threads": split.train_threads,
        }
        donor_field, to_field = fields[donor], fields[to]
        # Samplers and loaders always keep one thread; the CPU trainer
        # keeps one only while it has work assigned.
        if donor_field == "train_threads":
            floor = 1 if split.cpu_targets > 0 else 0
        else:
            floor = 1
        movable = max(0, counts[donor_field] - floor)
        step = min(self.config.drm_thread_step, movable)
        if step <= 0:
            return split
        counts[donor_field] -= step
        counts[to_field] += step
        return split.with_updates(**counts)
