"""Shared runtime core: one training protocol, pluggable execution.

The paper describes a single training *protocol* (Fig. 5 / Listing 1)
realized on heterogeneous executors. This module is that protocol's
backend-independent half:

* :class:`TrainingSession` owns **construction** — dataset, sampler (via
  the registry in :mod:`repro.sampling`), one model replica per trainer,
  the :class:`~repro.runtime.synchronizer.GradientSynchronizer`,
  optimizers, the performance model, the DRM engine, and the transfer
  quantization policy — all derived from
  :class:`~repro.config.TrainingConfig` / :class:`~repro.config.SystemConfig`.
* :class:`BatchPlan` encodes the per-trainer quota / permutation-cursor
  logic exactly once: every epoch shuffles the train set, and every
  iteration slices per-trainer target batches off the cursor according to
  the *current* workload split (so DRM re-balancing takes effect on the
  next iteration, identically in every backend).
* An :class:`~repro.runtime.backends.ExecutionBackend` consumes the plan
  and the session: the virtual-time backend resolves the iteration loop
  sequentially with modelled-hardware timing, the threaded backend runs
  it on live threads — same batches, same gradients, same DRM
  trajectory, bit-identical losses.

A session built *with* a :class:`~repro.hw.topology.PlatformSpec` carries
the full timing plane (perf model, workload split, DRM); a session built
without one (``platform=None``) is functional-only — the historical
:class:`~repro.runtime.executor.ThreadedExecutor` configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..config import SystemConfig, TrainingConfig, layer_dims
from ..errors import ConfigError, ProtocolError
from ..graph.datasets import GraphDataset
from ..hw.topology import PlatformSpec
from .. import kernels
from ..nn.models import build_model
from ..nn.optim import SGD
from ..perfmodel.mapping import initial_mapping
from ..perfmodel.model import (
    PerformanceModel,
    StageTimes,
    WorkloadSplit,
)
from ..perfmodel.sampling_profile import (
    SamplingProfile,
    project_full_scale_stats,
)
from ..sampling import build_sampler
from ..sampling.base import MiniBatch, MiniBatchStats
from ..sim.engine import PipelineSimulator
from .drm import DRMEngine
from .quantize import TRANSFER_BYTES
from .stage_pipeline import (
    StagePipeline,
    WorkSource,
    apply_transfer_policy,
    gather_batch_features,
    gather_feature_rows,
)
from .synchronizer import GradientSynchronizer
from .trainer import TrainerNode

#: The four pipeline stages of one iteration (paper Fig. 5).
PIPELINE_STAGES = ("sample", "load", "transfer", "propagate")


# ---------------------------------------------------------------------------
# Batch planning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlannedIteration:
    """One iteration's per-trainer target assignment.

    ``assignments[i]`` is the slice of the epoch permutation trainer ``i``
    trains this iteration, or ``None`` when the trainer sits idle (zero
    quota, or the permutation cursor ran out — the tail iteration of an
    epoch). Trainer order matches ``TrainingSession.trainers``.
    """

    epoch: int
    index: int                                    # iteration within epoch
    assignments: tuple[np.ndarray | None, ...]

    @property
    def batch_sizes(self) -> tuple[int, ...]:
        return tuple(0 if a is None else int(a.size)
                     for a in self.assignments)

    @property
    def total_targets(self) -> int:
        return sum(self.batch_sizes)


class BatchPlan:
    """The epoch iterator: quota slicing over a per-epoch permutation.

    This is the single implementation of the cursor logic both execution
    backends share (previously duplicated — and, on the threaded plane,
    replaced by i.i.d. redraws that never covered the train set).

    Parameters
    ----------
    train_ids:
        Global ids eligible as batch targets.
    counts_fn:
        Zero-arg callable returning the current per-trainer quotas in
        trainer order. Read *once per iteration* so DRM moves apply from
        the next iteration on.
    rng:
        Generator for the per-epoch shuffles. Shared with the owning
        session so epoch permutations consume the same stream in every
        backend.
    """

    def __init__(self, train_ids: np.ndarray,
                 counts_fn: Callable[[], list[int]],
                 rng: np.random.Generator) -> None:
        train_ids = np.asarray(train_ids, dtype=np.int64)
        if train_ids.size == 0:
            raise ConfigError("batch plan needs a non-empty train set")
        self.train_ids = train_ids
        self.counts_fn = counts_fn
        self.rng = rng
        self.epochs_started = 0

    def start_epoch(self) -> Iterator[PlannedIteration]:
        """Yield one epoch of :class:`PlannedIteration` objects.

        The permutation is drawn eagerly (advancing the shared RNG once
        per epoch); iterations are yielded lazily so a backend can stop
        early (``max_iterations``) without consuming the rest.
        """
        epoch = self.epochs_started
        self.epochs_started += 1
        perm = self.rng.permutation(self.train_ids)
        return self._iterate(epoch, perm)

    def iterate(self, iterations: int
                ) -> Iterator[tuple[int, PlannedIteration]]:
        """Yield ``(global_iteration, planned)`` for exactly
        ``iterations`` synchronized iterations.

        Rolls into a fresh epoch permutation whenever the cursor is
        exhausted, so long runs still visit every train vertex once per
        epoch. This is the single epoch-rolling loop every live backend
        drives (threaded producer, process-pool parent) — the
        numbering, the roll-over point, and the no-progress guard can
        never drift between planes.

        Raises
        ------
        ProtocolError
            If an epoch yields no work (all quotas zero) — the run
            cannot make progress.
        """
        produced = 0
        while produced < iterations:
            before = produced
            for planned in self.start_epoch():
                yield produced, planned
                produced += 1
                if produced >= iterations:
                    return
            if produced == before:
                raise ProtocolError(
                    "batch plan yielded no work for an epoch")

    def _iterate(self, epoch: int,
                 perm: np.ndarray) -> Iterator[PlannedIteration]:
        cursor = 0
        index = 0
        while cursor < perm.size:
            counts = list(self.counts_fn())
            assignments: list[np.ndarray | None] = []
            for want in counts:
                take = min(max(0, int(want)), perm.size - cursor)
                if take <= 0:
                    assignments.append(None)
                    continue
                assignments.append(perm[cursor:cursor + take])
                cursor += take
            if all(a is None for a in assignments):
                return    # zero total quota: nobody can make progress
            yield PlannedIteration(epoch=epoch, index=index,
                                   assignments=tuple(assignments))
            index += 1


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class TrainingSession:
    """Everything one training run owns, independent of how it executes.

    Parameters
    ----------
    dataset / train_cfg / sys_cfg:
        Workload, algorithm parameters, and system feature flags.
    platform:
        Node description. When given, the session carries the full timing
        plane (sampling profile, performance model, compile-time workload
        split, DRM) and derives its trainer set from the platform (CPU
        trainer when hybrid + one per accelerator). When ``None`` the
        session is functional-only and ``num_trainers`` replicas are
        built with a uniform per-trainer quota.
    full_scale:
        Project batch statistics to the paper-scale dataset (timing plane
        only; functional training always runs on the scaled graph).
    profile_probes:
        Batches sampled to build the sampling profile (platform sessions).
    num_trainers:
        Trainer count for ``platform=None`` sessions (ignored otherwise).
    sampler_rate_per_thread / fpga_n_pes / fpga_m_macs:
        Performance-model calibration knobs (see
        :class:`~repro.perfmodel.model.PerformanceModel`).
    """

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 sys_cfg: SystemConfig | None = None,
                 platform: PlatformSpec | None = None, *,
                 full_scale: bool = False,
                 profile_probes: int = 6,
                 num_trainers: int = 3,
                 sampler_rate_per_thread: float | None = None,
                 fpga_n_pes: int = 8, fpga_m_macs: int = 2048) -> None:
        self.dataset = dataset
        self.platform = platform
        self.train_cfg = train_cfg
        self.sys_cfg = sys_cfg if sys_cfg is not None else SystemConfig()
        self.full_scale = full_scale
        if platform is not None and platform.num_accelerators == 0 \
                and not self.sys_cfg.hybrid:
            raise ConfigError("no accelerators and no CPU trainer")
        if platform is None and num_trainers < 1:
            raise ConfigError("need at least one trainer")
        if platform is None and self.sys_cfg.drm:
            raise ConfigError(
                "DRM requires a platform: without the timing plane "
                "there are no stage times to balance "
                "(pass platform=..., or sys_cfg with drm=False)")

        self.dims = layer_dims(dataset.spec.feature_dim,
                               train_cfg.hidden_dim,
                               dataset.spec.num_classes,
                               train_cfg.num_layers)
        # ---- sampler (pluggable via the registry) ----
        self.sampler = build_sampler(
            train_cfg.sampler, dataset.graph, dataset.train_ids,
            train_cfg, dataset.spec.feature_dim)
        self.degrees = dataset.graph.out_degrees

        # ---- timing plane (platform sessions only) ----
        self.profile: SamplingProfile | None = None
        self.perfmodel: PerformanceModel | None = None
        if platform is not None:
            measured = SamplingProfile.measure(
                self.sampler, train_cfg.minibatch_size,
                num_probes=profile_probes, seed=train_cfg.seed + 1)
            if full_scale:
                # Replace the measured means with the full-graph
                # projection, keeping measured relative jitter.
                self.profile = SamplingProfile(
                    base_minibatch_size=train_cfg.minibatch_size,
                    mean_stats=project_full_scale_stats(
                        dataset.graph, dataset.spec, train_cfg.fanouts,
                        train_cfg.minibatch_size),
                    rel_std=measured.rel_std)
            else:
                self.profile = measured
            pm_kwargs = {}
            if sampler_rate_per_thread is not None:
                pm_kwargs["sampler_rate_per_thread"] = \
                    sampler_rate_per_thread
            self.perfmodel = PerformanceModel(
                platform, self.dims, train_cfg.model, self.profile,
                transfer_elem_bytes=TRANSFER_BYTES[
                    self.sys_cfg.transfer_precision],
                fpga_n_pes=fpga_n_pes, fpga_m_macs=fpga_m_macs,
                **pm_kwargs)

        # ---- compile-time coarse mapping (paper §IV-A) ----
        self.split = self._initial_split(num_trainers)
        self.initial_split = self.split

        # ---- trainers + synchronizer + optimizers ----
        self.trainers = self._build_trainers(num_trainers)
        self.synchronizer = GradientSynchronizer(
            [t.model for t in self.trainers], weighting="batch")
        self.optimizers = [SGD(t.model, lr=train_cfg.learning_rate)
                           for t in self.trainers]

        self.drm = DRMEngine(self.sys_cfg, train_cfg.minibatch_size,
                             hybrid=self.sys_cfg.hybrid,
                             pipelined=self.sys_cfg.prefetch) \
            if self.sys_cfg.drm else None
        self.rng = np.random.default_rng(train_cfg.seed + 2)
        self.plan = BatchPlan(dataset.train_ids,
                              self.split_target_counts, self.rng)
        # The shared per-item producer chain (sample → gather →
        # transfer) both session kinds compose; the stage hooks below
        # delegate to it, and the serving plane builds its own over the
        # same stack.
        self.pipeline = StagePipeline(
            self.sampler, dataset.features, dataset.labels,
            self.sys_cfg.transfer_precision)
        # Historical alias for the pipeline's sampler serialization.
        self._sampler_lock = self.pipeline.sampler_lock

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _initial_split(self, num_trainers: int) -> WorkloadSplit:
        cfg = self.train_cfg
        if self.platform is None:
            # Historical executor quota: every trainer gets an equal
            # slice, capped so small train sets still feed every trainer.
            n = num_trainers
            mb = max(8, min(cfg.minibatch_size,
                            self.dataset.train_ids.size // n or 8))
            if self.sys_cfg.hybrid:
                return WorkloadSplit(cpu_targets=mb,
                                     accel_targets=(mb,) * (n - 1))
            return WorkloadSplit(cpu_targets=0,
                                 accel_targets=(mb,) * n,
                                 train_threads=0)
        if self.sys_cfg.hybrid:
            return initial_mapping(
                self.perfmodel, cfg.minibatch_size,
                hybrid=True, pipelined=self.sys_cfg.prefetch,
                coarse=True).split
        n = self.platform.num_accelerators
        return WorkloadSplit(
            cpu_targets=0,
            accel_targets=(cfg.minibatch_size,) * n,
            sample_threads=128, load_threads=64, train_threads=0)

    def _build_trainers(self, num_trainers: int) -> list[TrainerNode]:
        cfg = self.train_cfg
        trainers: list[TrainerNode] = []
        if self.platform is not None:
            if self.sys_cfg.hybrid:
                trainers.append(TrainerNode(
                    "cpu", "cpu",
                    build_model(cfg.model, self.dims, cfg.seed),
                    None, self.dims, cfg.model))
            for i in range(self.platform.num_accelerators):
                trainers.append(TrainerNode(
                    f"accel{i}", "accel",
                    build_model(cfg.model, self.dims, cfg.seed),
                    None, self.dims, cfg.model))
            return trainers
        for i in range(num_trainers):
            kind = "cpu" if (i == 0 and self.sys_cfg.hybrid) else "accel"
            trainers.append(TrainerNode(
                f"trainer{i}", kind,
                build_model(cfg.model, self.dims, cfg.seed),
                None, self.dims, cfg.model))
        return trainers

    # ------------------------------------------------------------------
    # Plan / split
    # ------------------------------------------------------------------
    @property
    def num_trainers(self) -> int:
        return len(self.trainers)

    @property
    def has_timing(self) -> bool:
        """Does this session carry the modelled-hardware timing plane?"""
        return self.perfmodel is not None

    def split_target_counts(self) -> list[int]:
        """Per-trainer target quota in trainer order."""
        counts = []
        if self.sys_cfg.hybrid:
            counts.append(self.split.cpu_targets)
        counts.extend(self.split.accel_targets)
        return counts

    def iterations_per_epoch(self) -> int:
        """Iterations one epoch takes (total quota is DRM-invariant)."""
        total = self.split.total_targets
        if total <= 0:
            raise ConfigError("split trains no targets")
        return -(-int(self.dataset.train_ids.size) // total)

    @property
    def work_source(self) -> WorkSource:
        """The numbered work-item stream backends drain
        (:class:`~repro.runtime.stage_pipeline.WorkSource`): for a
        training session, the :class:`BatchPlan`. Serving sessions
        expose their micro-batch queue through the same property, which
        is what lets an overlapped dispatcher drive either plane."""
        return self.plan

    # ------------------------------------------------------------------
    # Pipeline-stage hooks (shared hot path)
    #
    # One method per Fig.-5 producer stage, so an overlapped backend can
    # run sample / load / transfer on separate stage threads while
    # executing the exact same bits as the sequential planes (which call
    # the fused ``load_features``). All delegate to the composed
    # :class:`~repro.runtime.stage_pipeline.StagePipeline` — the
    # extraction the serving plane shares.
    # ------------------------------------------------------------------
    def sample_stage(self, targets: np.ndarray) -> MiniBatch:
        """Sample one mini-batch (thread-safe).

        The sampler's RNG stream is shared; the pipeline's lock makes
        each draw atomic so concurrent stage threads interleave whole
        batches, never corrupt the stream.
        """
        return self.pipeline.sample(targets)

    def gather_stage(self, mb: MiniBatch) -> np.ndarray:
        """Feature-gather (load) stage: host-DDR row gather, fp32/64."""
        return self.pipeline.gather(mb)

    def transfer_stage(self, x0: np.ndarray,
                       trainer_kind: str) -> np.ndarray:
        """Transfer stage: the PCIe quantization policy for this link."""
        return self.pipeline.transfer(x0, trainer_kind)

    def load_features(self, mb: MiniBatch, trainer_kind: str, *,
                      pool: kernels.BufferPool | None = None
                      ) -> np.ndarray:
        """Gather one mini-batch's input features, ready for the trainer.

        Delegates to the pipeline's fused chokepoint
        (:func:`gather_batch_features` underneath — the single
        implementation every execution substrate uses; process-pool
        workers call it against the shared-memory feature store), so
        the transfer policy can never drift between planes. ``pool`` is
        the sequential-call-site opt-in documented there (the threaded
        producer keeps batches in flight and passes none).
        """
        return self.pipeline.load(mb, trainer_kind, pool=pool)

    def labels_for(self, mb: MiniBatch) -> np.ndarray:
        return self.dataset.labels[mb.targets]

    def shared_sampler_spec(self):
        """Picklable spec a worker rebuilds this session's sampler from.

        The spec travels in the :class:`~repro.runtime.shm.SharedStoreManifest`
        of a worker-sampling backend; each worker derives its own
        independent RNG stream from the config's base seed via
        :func:`repro.sampling.worker_stream_seed`, so the parent deals
        only target-id shards of the :class:`BatchPlan` and the sample
        stage runs on every worker's cores in parallel.
        """
        from .shm import SharedSamplerSpec
        return SharedSamplerSpec(train_cfg=self.train_cfg,
                                 feature_dim=self.dataset.spec.feature_dim)

    def reduce_and_step(self, batch_sizes: list[int],
                        iteration: int | None = None) -> np.ndarray:
        """Synchronize one iteration: all-reduce then step every
        optimizer (idle trainers receive the averaged gradients too,
        keeping replicas consistent). Returns the averaged flat
        gradient, exactly as :class:`GradientSynchronizer` does."""
        avg = self.synchronizer.all_reduce(list(batch_sizes), iteration)
        for opt in self.optimizers:
            opt.step()
        return avg

    # ------------------------------------------------------------------
    # Timing plane helpers (platform sessions)
    # ------------------------------------------------------------------
    def _require_timing(self) -> None:
        if not self.has_timing:
            raise ConfigError(
                "timing plane unavailable: session built without a "
                "platform")

    def stage_times(self, stats_cpu: MiniBatchStats | None,
                    stats_accel: list[MiniBatchStats | None]
                    ) -> StageTimes:
        self._require_timing()
        return self.perfmodel.stage_times(self.split, stats_cpu,
                                          stats_accel)

    def launch_overhead_s(self) -> float:
        """Per-iteration accelerator launch cost (simulated-actual only)."""
        accel = self.platform.accelerator
        if accel is None or self.platform.num_accelerators == 0:
            return 0.0
        if accel.kind == "fpga":
            launches = 2
        else:
            launches = 6 * self.train_cfg.num_layers * 2
        return launches * accel.kernel_launch_s

    def duration_row(self, times: StageTimes,
                     overlapped: bool | None = None) -> list[float]:
        """Pipeline-stage durations including the 'actual' extras the
        analytic model omits (paper §VI-C): kernel-launch latency and
        pipeline-flush overhead on the accelerator pass, plus PCIe
        duplex contention between prefetch pushes and gradient pulls.

        The duplex derate models link contention that only exists when
        the next iteration's feature push genuinely overlaps this
        iteration's gradient pull, so it is gated on ``overlapped`` —
        the executing backend's overlap capability
        (:attr:`~repro.runtime.backends.base.ExecutionBackend.overlaps_transfer`).
        ``None`` (legacy callers) defers to ``sys_cfg.prefetch``: the
        reference plane models the overlapped pipeline whenever
        prefetching is configured. A lock-step backend that resolves
        transfer strictly before the pull passes ``False`` and never
        pays the derate, however ``prefetch`` is set.
        """
        self._require_timing()
        accel = self.platform.accelerator
        flush = accel.pipeline_flush_frac if accel is not None else 0.0
        prop = (times.t_train_accel * (1.0 + flush)
                if times.t_train_accel > 0 else 0.0)
        prop = max(prop, times.t_train_cpu) + times.t_sync
        transfer = times.t_transfer
        if overlapped is None:
            overlapped = self.sys_cfg.prefetch
        if overlapped and self.sys_cfg.prefetch and transfer > 0:
            transfer *= 1.0 + self.platform.pcie.duplex_derate
        return [times.t_sample, times.t_load, transfer,
                prop + self.launch_overhead_s()]

    def drm_step(self, times: StageTimes, iteration: int) -> None:
        """One Algorithm-1 adjustment; affects the next planned iteration."""
        if self.drm is not None:
            self.split = self.drm.adjust(self.split, times, iteration)

    def timing_step(self, stats_cpu: MiniBatchStats | None,
                    stats_accel: list[MiniBatchStats | None],
                    iteration: int, *,
                    estimator=None,
                    realized: dict[str, float] | None = None,
                    calibrate: bool = False,
                    overlapped: bool | None = None
                    ) -> tuple[StageTimes, list[float], WorkloadSplit]:
        """One timing-plane step over realized batch statistics.

        Returns ``(times, duration_row, split)`` where ``split`` is the
        workload split that was *in effect* for this iteration (captured
        before the DRM adjustment mutates it), then applies the
        Algorithm-1 adjustment. Every backend records its stage/split
        history through this single hook, so the bookkeeping order —
        stage times from iteration ``i``'s stats, split snapshot, *then*
        DRM — can never drift between execution planes.

        The resctl hooks are strictly opt-in, so planes that pass
        nothing stay bit-identical to the uncalibrated contract:

        * ``estimator`` — an
          :class:`~repro.runtime.resctl.OnlineEstimator`; when given
          with this iteration's ``realized`` wall times (canonical
          stage keys, see :mod:`repro.runtime.resctl.monitor`) the
          pair is observed for calibration;
        * ``calibrate`` — when true (an overlapped backend with
          ``depth_source="realized"``), the returned/recorded times
          are the estimator's calibrated copy, so the duration row,
          the DRM adjustment and the caller's adaptive look-ahead all
          steer from monitored wall times. ``False`` observes without
          feeding back — ``depth_source="model"`` still reports
          calibration error while reproducing analytic trajectories
          bit for bit;
        * ``overlapped`` — the backend's transfer-overlap capability,
          forwarded to :meth:`duration_row`.
        """
        times = self.stage_times(stats_cpu, stats_accel)
        if estimator is not None:
            if realized:
                estimator.observe(realized, times)
            if calibrate:
                times = estimator.calibrate(times)
        row = self.duration_row(times, overlapped=overlapped)
        split = self.split
        self.drm_step(times, iteration)
        return times, row, split

    def make_pipeline(self) -> PipelineSimulator:
        depth = self.sys_cfg.prefetch_depth if self.sys_cfg.prefetch \
            else 0
        return PipelineSimulator(PIPELINE_STAGES, prefetch_depth=depth)

    # ------------------------------------------------------------------
    def predicted_epoch_time(self, full_scale: bool | None = None
                             ) -> float:
        """Closed-form prediction (paper Eq. 6 steady state) — the
        'predicted' series of Fig. 8, no launch/fill/jitter effects."""
        self._require_timing()
        if full_scale is None:
            full_scale = self.full_scale
        base = self.train_cfg.minibatch_size
        base_stats = self.profile.expected_stats(base)
        train_count = self.dataset.spec.train_count if full_scale \
            else int(self.dataset.train_ids.size)
        split = self.split
        counts = self.split_target_counts()
        stats_cpu = None
        stats_accel: list[MiniBatchStats | None] = []
        for trainer, want in zip(self.trainers, counts):
            st = base_stats.scaled(want / base) if want > 0 else None
            if trainer.kind == "cpu":
                stats_cpu = st
            else:
                stats_accel.append(st)
        times = self.perfmodel.stage_times(split, stats_cpu, stats_accel)
        t_iter = times.iteration_time(pipelined=self.sys_cfg.prefetch)
        iters = max(1, -(-train_count // max(1, split.total_targets)))
        return iters * t_iter
