"""Gradient synchronizer: gather → average → broadcast (paper §III-A).

The Synchronizer implements synchronous SGD across trainer model replicas.
Averaging is *weighted by batch size* by default: with DRM the per-trainer
mini-batch sizes differ, and the weighted average is what keeps the hybrid
update bit-equivalent to single-device large-batch SGD (each trainer's
gradient is the mean over its own batch; the weighted combination equals
the mean over the union batch). With equal batch sizes the weighted and
uniform averages coincide, which is the case the paper describes
("training on 4 GPUs with mini-batch size 1024 is equivalent to training
on 1 GPU with mini-batch size 4096").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ProtocolError, ShapeError
from ..nn.models import GNNModel
from .protocol import ProtocolLog, Signal


class GradientSynchronizer:
    """All-reduce over a fixed set of model replicas.

    Parameters
    ----------
    models:
        The trainer replicas. All must have identical parameter layout.
    weighting:
        ``"batch"`` (default) weights each replica's gradient by its batch
        size; ``"uniform"`` averages plainly (the paper's literal
        description).
    """

    def __init__(self, models: Sequence[GNNModel],
                 weighting: str = "batch") -> None:
        if not models:
            raise ProtocolError("synchronizer needs at least one model")
        sizes = {m.num_params for m in models}
        if len(sizes) != 1:
            raise ShapeError("replicas disagree on parameter count")
        if weighting not in ("batch", "uniform"):
            raise ProtocolError(f"unknown weighting {weighting!r}")
        self.models = list(models)
        self.weighting = weighting
        self._done_count = 0
        self._log: ProtocolLog | None = None

    def attach_log(self, log: ProtocolLog) -> None:
        """Record protocol events into ``log`` on subsequent calls."""
        self._log = log

    @property
    def num_trainers(self) -> int:
        return len(self.models)

    # ------------------------------------------------------------------
    def signal_done(self, trainer_name: str, iteration: int = 0) -> int:
        """A trainer announces its gradients are in CPU memory.

        Returns the DONE count so far this iteration (Listing 1's
        ``DONE`` variable).
        """
        self._done_count += 1
        if self._done_count > self.num_trainers:
            raise ProtocolError("more DONE signals than trainers")
        if self._log is not None:
            self._log.record(iteration, Signal.DONE, trainer_name)
        return self._done_count

    def all_reduce(self, batch_sizes: Sequence[int] | None = None,
                   iteration: int = 0) -> np.ndarray:
        """Average gradients across replicas and write them back.

        Must be called only after every trainer signalled DONE (when the
        protocol log is attached the precondition is enforced; without
        signalling the synchronizer may be driven directly, e.g. by
        tests).

        Returns the averaged flat gradient (mainly for inspection).
        """
        if self._log is not None and \
                self._done_count != self.num_trainers:
            raise ProtocolError(
                f"all_reduce with {self._done_count}/"
                f"{self.num_trainers} DONE signals")
        flats = [m.get_flat_grads() for m in self.models]
        if self.weighting == "batch":
            if batch_sizes is None:
                raise ProtocolError(
                    "batch weighting requires batch_sizes")
            if len(batch_sizes) != self.num_trainers:
                raise ShapeError("one batch size per trainer required")
            w = np.asarray(batch_sizes, dtype=np.float64)
            if (w < 0).any() or w.sum() <= 0:
                raise ShapeError("batch sizes must be non-negative and "
                                 "not all zero")
            w = w / w.sum()
        else:
            w = np.full(self.num_trainers, 1.0 / self.num_trainers)
        avg = np.zeros_like(flats[0])
        for wi, f in zip(w, flats):
            avg += wi * f
        for m in self.models:
            m.set_flat_grads(avg)
        if self._log is not None:
            self._log.record(iteration, Signal.SYNC, "synchronizer")
        self._done_count = 0
        return avg

    def broadcast_parameters(self, source: int = 0) -> None:
        """Copy replica ``source``'s parameters to all others.

        Used at startup (all replicas must begin identical) and by tests
        after perturbations.
        """
        if not 0 <= source < self.num_trainers:
            raise ProtocolError("source replica out of range")
        flat = self.models[source].get_flat_params()
        for i, m in enumerate(self.models):
            if i != source:
                m.set_flat_params(flat)

    def replicas_consistent(self, atol: float = 1e-9) -> bool:
        """Are all replica parameters (near-)identical?"""
        ref = self.models[0].get_flat_params()
        return all(np.allclose(m.get_flat_params(), ref, atol=atol)
                   for m in self.models[1:])
