"""Node-level look-ahead budget arbitration (resctl stage 3 of 3).

One machine, several concurrent :class:`TrainingSession`s: each
overlapped backend wants look-ahead depth (in-flight iterations, each
holding sampled graphs and gathered feature buffers), and the node has
a finite appetite for that in-flight memory. The
:class:`NodeAllocator` arbitrates a shared **depth budget**: sessions
register when their run starts, read their *live* grant every time the
adaptive policy resizes (the cap is an equal share of the budget, so
it rises automatically as co-tenants finish), and release on exit — a
``finally``-guarded release, so budget can never leak past a failed
run. The shape follows Spirit's incremental allocator (monitor →
estimator → allocator) and QY-style dynamic resource release: finished
jobs return their share immediately rather than holding it to the end
of the gang.

A process-global :data:`DEFAULT_ALLOCATOR` (budget
:data:`DEFAULT_DEPTH_BUDGET`) backs backends that are not handed an
explicit allocator; with a single registered session the equal share
is the whole budget, so single-session behavior is unchanged — the
arbitration only binds when sessions actually contend.
"""

from __future__ import annotations

import itertools
import threading

from ...errors import ProtocolError

#: Default node-wide look-ahead depth budget. Deliberately comfortable:
#: a lone session (or a handful) is never throttled below the
#: per-backend ``max_depth`` caps; contention among many co-tenant
#: sessions is what the arbitration is for.
DEFAULT_DEPTH_BUDGET = 64


class DepthGrant:
    """One registered session's live claim on the node budget.

    ``depth_cap`` re-reads the allocator on every call — a grant is a
    *subscription* to the current fair share, not a frozen number, so
    a session picks up released budget at its very next adaptive
    resize without any callback plumbing. Usable as a context manager;
    ``release()`` is idempotent.
    """

    def __init__(self, allocator: "NodeAllocator", token: int,
                 name: str, max_depth: int) -> None:
        self._allocator = allocator
        self.token = token
        self.name = name
        self.max_depth = max_depth

    @property
    def depth_cap(self) -> int:
        """This session's current depth cap (>= 1 always: a grant can
        throttle look-ahead, never deadlock a pipeline)."""
        return self._allocator._cap_for(self.token)

    @property
    def released(self) -> bool:
        return not self._allocator._holds(self.token)

    def release(self) -> None:
        self._allocator.release(self)

    def __enter__(self) -> "DepthGrant":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else \
            f"cap={self.depth_cap}"
        return f"<DepthGrant {self.name!r} {state}>"


class NodeAllocator:
    """Arbitrates look-ahead depth across concurrent sessions.

    Parameters
    ----------
    depth_budget:
        Total in-flight look-ahead depth the node will grant across
        all registered sessions. Each session's cap is the equal share
        ``max(1, budget // active)`` clamped to its requested
        ``max_depth`` — never below 1, so registering more sessions
        than budget degrades to lock-step dealing, not deadlock.
    """

    def __init__(self, depth_budget: int = DEFAULT_DEPTH_BUDGET) -> None:
        if depth_budget < 1:
            raise ProtocolError("depth budget must be >= 1")
        self.depth_budget = depth_budget
        self._lock = threading.Lock()
        self._tokens = itertools.count()
        self._active: dict[int, tuple[str, int]] = {}
        #: Audit trail of ``(event, name)`` pairs — the multi-session
        #: smoke asserts the release discipline off this.
        self.events: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    def register(self, name: str, max_depth: int) -> DepthGrant:
        """Claim a share of the node budget for one session run."""
        if max_depth < 1:
            raise ProtocolError("max_depth must be >= 1")
        with self._lock:
            token = next(self._tokens)
            self._active[token] = (name, max_depth)
            self.events.append(("register", name))
        return DepthGrant(self, token, name, max_depth)

    def release(self, grant: DepthGrant) -> None:
        """Return a grant's share to the pool (idempotent)."""
        with self._lock:
            entry = self._active.pop(grant.token, None)
            if entry is not None:
                self.events.append(("release", entry[0]))

    # ------------------------------------------------------------------
    def _holds(self, token: int) -> bool:
        with self._lock:
            return token in self._active

    def _cap_for(self, token: int) -> int:
        with self._lock:
            entry = self._active.get(token)
            if entry is None:
                raise ProtocolError(
                    "depth_cap read on a released grant")
            share = max(1, self.depth_budget // len(self._active))
            return min(entry[1], share)

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def available_depth(self) -> int:
        """Budget not currently claimed by equal shares (observability;
        grants are shares, not reservations, so this is the headroom
        the *next* registrant would dilute)."""
        with self._lock:
            if not self._active:
                return self.depth_budget
            used = sum(min(cap,
                           max(1, self.depth_budget
                               // len(self._active)))
                       for _, cap in self._active.values())
            return max(0, self.depth_budget - used)

    def snapshot(self) -> dict:
        """Point-in-time view for logs and the multi-session smoke."""
        with self._lock:
            active = len(self._active)
            share = max(1, self.depth_budget // active) if active \
                else self.depth_budget
            return {
                "depth_budget": self.depth_budget,
                "active_sessions": active,
                "fair_share": share,
                "sessions": {name: min(cap, share)
                             for name, cap in self._active.values()},
                "events": list(self.events),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<NodeAllocator budget={self.depth_budget} "
                f"active={self.active_count}>")


#: Process-global allocator backends fall back to when not handed one.
DEFAULT_ALLOCATOR = NodeAllocator()
