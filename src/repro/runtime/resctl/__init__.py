"""Feedback-driven resource control: monitor → estimator → allocator.

The runtime's timing plane predicts; this package *measures, corrects,
and arbitrates*:

* :class:`StageMonitor` (``monitor.py``) — bounded ring buffers of
  realized per-stage wall times sampled from the live planes
  (threaded/pipelined stage threads; process-plane workers via the
  ``wstats`` pipe message), with EWMA and percentile summaries;
* :class:`OnlineEstimator` (``estimator.py``) — per-stage
  multiplicative correction factors calibrating the
  :class:`~repro.perfmodel.model.PerformanceModel` against realized
  :class:`~repro.perfmodel.model.StageTimes`, confidence-weighted and
  falling back to the analytic model until warm;
* :class:`NodeAllocator` (``allocator.py``) — a node-level look-ahead
  depth budget arbitrated across concurrent
  :class:`~repro.runtime.core.TrainingSession` runs, released as
  sessions finish.

The overlapped backends (:mod:`~repro.runtime.backends.pipelined`,
:mod:`~repro.runtime.backends.process_pipelined`) wire all three
together behind their ``depth_source`` knob: ``"realized"`` (default)
drives ``adaptive_depth`` and ``drm_step`` from calibrated times,
``"model"`` reproduces the purely-analytic trajectories bit for bit.
The lock-step planes feed the monitor (observability) but never
calibrate — their conformance contract is bit-parity with the
analytic reference. ``docs/architecture.md`` carries the subsystem
diagram; ``docs/backends.md`` the knob and wire-protocol contract.
"""

from .allocator import (
    DEFAULT_ALLOCATOR,
    DEFAULT_DEPTH_BUDGET,
    DepthGrant,
    NodeAllocator,
)
from .estimator import (
    FIELD_BY_STAGE,
    OnlineEstimator,
    summarize_calibration,
)
from .monitor import (
    REALIZED_STAGES,
    StageMonitor,
    StageSummary,
    fold_worker_realized,
    map_worker_totals,
)

__all__ = [
    "DEFAULT_ALLOCATOR",
    "DEFAULT_DEPTH_BUDGET",
    "DepthGrant",
    "NodeAllocator",
    "FIELD_BY_STAGE",
    "OnlineEstimator",
    "summarize_calibration",
    "REALIZED_STAGES",
    "StageMonitor",
    "StageSummary",
    "fold_worker_realized",
    "map_worker_totals",
]
