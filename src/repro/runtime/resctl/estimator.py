"""Online model calibration (resctl stage 2 of 3).

The :class:`~repro.perfmodel.model.PerformanceModel` predicts stage
times from batch statistics and platform constants; on a live plane
the realized wall times are the authoritative signal. The
:class:`OnlineEstimator` closes the gap with one **multiplicative
correction factor per stage**: every observation pairs a realized
duration with the analytic prediction for the same iteration, the
estimator maintains EWMAs of both sides, and the correction is their
ratio — **confidence-weighted** so a handful of noisy samples cannot
yank the model around, and **falling back to the analytic model until
warm** (below ``warmup`` observations a stage's correction is exactly
1.0, so a cold estimator is a no-op by construction).

:meth:`calibrate` maps modelled :class:`StageTimes` to calibrated
ones field by field; stages never observed stay analytic. The result
is guaranteed finite and non-negative whatever the observations were
(property-tested) — a calibration subsystem that can emit ``nan`` into
``drm_step`` would be worse than no calibration at all.

The overlapped backends feed calibrated times into ``adaptive_depth``
and ``drm_step`` when their ``depth_source`` knob is ``"realized"``
(the default); ``depth_source="model"`` keeps observing (so reports
still expose the model-vs-realized error) but never calibrates,
reproducing the uncalibrated trajectories bit for bit.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping

from ...errors import ProtocolError
from ...perfmodel.model import StageTimes
from .monitor import REALIZED_STAGES, StageMonitor

#: StageTimes field backing each canonical stage key.
FIELD_BY_STAGE = {
    "sample_cpu": "t_sample_cpu",
    "sample_accel": "t_sample_accel",
    "load": "t_load",
    "transfer": "t_transfer",
    "train_cpu": "t_train_cpu",
    "train_accel": "t_train_accel",
    "sync": "t_sync",
}


class OnlineEstimator:
    """Per-stage multiplicative calibration of the analytic model.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor for the realized/modelled accumulators.
    warmup:
        Observations a stage needs before its correction deviates from
        1.0 (the analytic-model fallback), and the half-life of the
        confidence weight beyond it.
    ratio_bounds:
        Hard clamp on the correction factor — wall clocks and the
        modelled hardware live on very different absolute scales, so
        the bounds are wide; they exist to keep a denormal or an
        outlier from producing a non-finite calibrated time.
    monitor:
        Optional :class:`StageMonitor`; every realized observation is
        forwarded to it, so wiring one estimator gives a backend both
        calibration *and* the monitoring surface.
    """

    def __init__(self, alpha: float = 0.3, warmup: int = 3,
                 ratio_bounds: tuple[float, float] = (1e-9, 1e9),
                 monitor: StageMonitor | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ProtocolError("estimator alpha must be in (0, 1]")
        if warmup < 1:
            raise ProtocolError("estimator warmup must be >= 1")
        lo, hi = ratio_bounds
        if not (0.0 < lo < hi and math.isfinite(hi)):
            raise ProtocolError(
                "ratio bounds must satisfy 0 < lo < hi < inf")
        self.alpha = alpha
        self.warmup = warmup
        self.ratio_bounds = (float(lo), float(hi))
        self.monitor = monitor
        self._lock = threading.Lock()
        self._count: dict[str, int] = {}
        self._realized_ewma: dict[str, float] = {}
        self._model_ewma: dict[str, float] = {}

    # ------------------------------------------------------------------
    def observe(self, realized: Mapping[str, float],
                model: StageTimes) -> None:
        """Pair one iteration's realized stage map with its analytic
        prediction. Invalid samples (non-finite, negative, or a stage
        the model predicts as zero-time) are skipped — they carry no
        calibratable ratio."""
        if self.monitor is not None:
            clean = {k: v for k, v in realized.items()
                     if isinstance(v, (int, float))
                     and math.isfinite(v) and v >= 0.0}
            if clean:
                self.monitor.observe_times(clean)
        for stage, value in realized.items():
            field = FIELD_BY_STAGE.get(stage)
            if field is None:
                continue
            r = float(value)
            m = float(getattr(model, field))
            if not math.isfinite(r) or r <= 0.0:
                continue
            if not math.isfinite(m) or m <= 0.0:
                continue
            with self._lock:
                self._count[stage] = self._count.get(stage, 0) + 1
                prev_r = self._realized_ewma.get(stage)
                prev_m = self._model_ewma.get(stage)
                self._realized_ewma[stage] = r if prev_r is None else \
                    self.alpha * r + (1.0 - self.alpha) * prev_r
                self._model_ewma[stage] = m if prev_m is None else \
                    self.alpha * m + (1.0 - self.alpha) * prev_m

    # ------------------------------------------------------------------
    def observations(self, stage: str) -> int:
        with self._lock:
            return self._count.get(stage, 0)

    def is_warm(self, stage: str | None = None) -> bool:
        """Whether ``stage`` (or, with ``None``, any stage) has enough
        observations to deviate from the analytic model."""
        with self._lock:
            if stage is not None:
                return self._count.get(stage, 0) >= self.warmup
            return any(c >= self.warmup for c in self._count.values())

    def correction(self, stage: str) -> float:
        """The stage's confidence-weighted multiplicative correction.

        ``realized_ewma / model_ewma``, clamped to ``ratio_bounds``,
        blended toward 1.0 by the confidence weight
        ``n / (n + warmup)`` — and exactly 1.0 below ``warmup``
        observations (the analytic fallback)."""
        with self._lock:
            n = self._count.get(stage, 0)
            if n < self.warmup:
                return 1.0
            r = self._realized_ewma[stage]
            m = self._model_ewma[stage]
        lo, hi = self.ratio_bounds
        ratio = min(hi, max(lo, r / m)) if m > 0.0 else 1.0
        if not math.isfinite(ratio):
            return 1.0
        confidence = n / (n + self.warmup)
        corrected = 1.0 + confidence * (ratio - 1.0)
        return corrected if math.isfinite(corrected) and \
            corrected > 0.0 else 1.0

    def calibrate(self, times: StageTimes) -> StageTimes:
        """Calibrated copy of modelled ``times``: each field scaled by
        its stage's correction. Unobserved (or cold) stages pass
        through analytically; every output field is finite and
        non-negative no matter what was observed."""
        updates: dict[str, float] = {}
        for stage, field in FIELD_BY_STAGE.items():
            value = float(getattr(times, field))
            c = self.correction(stage)
            if c == 1.0:
                continue
            scaled = value * c
            if not math.isfinite(scaled) or scaled < 0.0:
                # Defensive: a pathological model value times a large
                # correction must degrade to the analytic value, never
                # poison DRM/adaptive-depth with nan/inf.
                scaled = value if math.isfinite(value) and \
                    value >= 0.0 else 0.0
            updates[field] = scaled
        return times.with_updates(**updates) if updates else times

    # ------------------------------------------------------------------
    def calibration_error(self) -> dict[str, float]:
        """Per-stage relative model-vs-realized error
        ``|model - realized| / realized`` over the EWMAs, for every
        stage with at least one paired observation."""
        out: dict[str, float] = {}
        with self._lock:
            for stage in self._count:
                r = self._realized_ewma.get(stage)
                m = self._model_ewma.get(stage)
                if r is None or m is None or r <= 0.0:
                    continue
                out[stage] = abs(m - r) / r
        return out

    def summary(self) -> dict[str, dict]:
        """Per-stage calibration digest for reports and benches:
        ``{stage: {correction, error, observations, warm,
        realized_ewma_s, model_ewma_s}}``."""
        errors = self.calibration_error()
        out: dict[str, dict] = {}
        with self._lock:
            stages = sorted(
                self._count,
                key=lambda s: (REALIZED_STAGES.index(s)
                               if s in REALIZED_STAGES else
                               len(REALIZED_STAGES), s))
            snapshot = [(s, self._count[s],
                         self._realized_ewma.get(s, 0.0),
                         self._model_ewma.get(s, 0.0))
                        for s in stages]
        for stage, n, r_ewma, m_ewma in snapshot:
            out[stage] = {
                "correction": self.correction(stage),
                "error": errors.get(stage, 0.0),
                "observations": n,
                "warm": n >= self.warmup,
                "realized_ewma_s": r_ewma,
                "model_ewma_s": m_ewma,
            }
        return out


def summarize_calibration(calibration: Mapping[str, Mapping]) -> str:
    """One-line per-stage model-vs-realized error report — the single
    formatter behind the wall-clock bench's ``calib`` column. Shows
    warm stages' relative error (``xN`` factors beyond 10x so wildly
    mis-scaled models stay readable); ``"-"`` when nothing is warm
    (functional sessions, cold estimators)."""
    parts = []
    for stage, digest in calibration.items():
        if not digest.get("warm"):
            continue
        err = float(digest.get("error", 0.0))
        parts.append(f"{stage}:{err:.0%}" if err < 10.0
                     else f"{stage}:x{err:.0f}")
    return " ".join(parts) if parts else "-"
