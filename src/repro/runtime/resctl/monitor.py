"""Realized per-stage wall-time monitoring (resctl stage 1 of 3).

The timing plane everywhere else in the runtime is *modelled*: the
:class:`~repro.perfmodel.model.PerformanceModel` turns realized batch
statistics into predicted :class:`~repro.perfmodel.model.StageTimes`.
The live planes, however, also *measure*: the threaded/pipelined stage
threads and the process-plane workers (via the ``wstats`` pipe message,
a sibling of the kernel-counter ``kstats`` round trip) know exactly how
long each sample/gather/transfer/train pass took on this machine.

:class:`StageMonitor` is where those measurements land: one bounded
ring buffer per stage, an incrementally-maintained EWMA, and
percentile summaries over the retained window. It is the feed for the
:class:`~repro.runtime.resctl.estimator.OnlineEstimator` (which
calibrates the analytic model against the realized signal) and a
stand-alone observability surface (``summary()`` renders in reports
and benches).

Stage keys follow :meth:`StageTimes.as_dict` — ``sample_cpu``,
``sample_accel``, ``load``, ``transfer``, ``train_cpu``,
``train_accel``, ``sync`` — so a realized observation always has an
unambiguous analytic counterpart. :func:`fold_worker_realized` is the
single mapping from per-trainer raw stage durations (what a stage
thread or worker actually measures: ``sample``/``load``/``transfer``/
``train`` plus the trainer's kind) onto those keys, shared by the
pipelined plane and both worker-sampling process planes so the
aggregation semantics (CPU contributions summed, accelerator
contributions maxed — mirroring the model's own Eq. 7–9 reductions)
can never drift between planes.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ...errors import ProtocolError

#: Canonical realized-stage keys, aligned with ``StageTimes.as_dict``.
REALIZED_STAGES = ("sample_cpu", "sample_accel", "load", "transfer",
                   "train_cpu", "train_accel", "sync")


def fold_worker_realized(per_trainer: Iterable[tuple[str, Mapping]],
                         sync_s: float | None = None
                         ) -> dict[str, float]:
    """Fold per-trainer raw stage durations into canonical stage keys.

    ``per_trainer`` yields ``(kind, stage_s)`` pairs where ``kind`` is
    the trainer's ``"cpu"``/``"accel"`` and ``stage_s`` maps raw stage
    names (``sample``/``load``/``transfer``/``train``) to measured
    seconds. Reductions mirror the analytic model's: CPU-side work is
    summed (the model's CPU terms aggregate over the whole CPU side),
    accelerator-side work is maxed (Eq. 8/9 take the slowest
    accelerator), ``load`` is summed across all trainers (host-DDR
    bandwidth is shared), and ``sync`` is the caller-measured
    all-reduce duration. Keys never observed stay absent — the
    estimator treats absent stages as "still analytic".
    """
    realized: dict[str, float] = {}

    def _add(key: str, value: float) -> None:
        realized[key] = realized.get(key, 0.0) + value

    def _max(key: str, value: float) -> None:
        realized[key] = max(realized.get(key, 0.0), value)

    for kind, stage_s in per_trainer:
        if not stage_s:
            continue
        for stage, value in stage_s.items():
            v = float(value)
            if not math.isfinite(v) or v < 0.0:
                continue
            if stage == "sample":
                (_add if kind == "cpu" else _max)(
                    "sample_cpu" if kind == "cpu" else "sample_accel",
                    v)
            elif stage == "load":
                _add("load", v)
            elif stage == "transfer":
                if kind == "accel":
                    _max("transfer", v)
            elif stage == "train":
                (_add if kind == "cpu" else _max)(
                    "train_cpu" if kind == "cpu" else "train_accel", v)
    if sync_s is not None and math.isfinite(sync_s) and sync_s >= 0.0:
        realized["sync"] = float(sync_s)
    return realized


def map_worker_totals(kind: str, totals: Mapping[str, tuple]
                      ) -> dict[str, tuple[int, float]]:
    """Map one worker's raw ``wstats`` accounting onto canonical keys.

    The ``wstats`` pipe payload is ``{raw_stage: (count, total_s)}``
    with raw stage names (``sample``/``load``/``transfer``/``train``)
    because the worker does not know which side of the hybrid split it
    sits on — the parent does, via the trainer's ``kind``. Attribution
    follows :func:`fold_worker_realized`: sampling and training split
    into the ``_cpu``/``_accel`` columns by kind, ``load`` is
    kind-agnostic, and ``transfer`` only exists on the accelerator
    side. Unknown raw stages are dropped rather than invented.
    """
    key_by_raw = {
        "sample": "sample_cpu" if kind == "cpu" else "sample_accel",
        "load": "load",
        "transfer": "transfer" if kind == "accel" else None,
        "train": "train_cpu" if kind == "cpu" else "train_accel",
    }
    mapped: dict[str, tuple[int, float]] = {}
    for raw, entry in totals.items():
        key = key_by_raw.get(raw)
        if key is None:
            continue
        mapped[key] = (int(entry[0]), float(entry[1]))
    return mapped


@dataclass(frozen=True)
class StageSummary:
    """One stage's monitored wall-time digest."""

    stage: str
    count: int           # observations ever (ring may have dropped old)
    total_s: float       # cumulative seconds across all observations
    ewma_s: float        # exponentially-weighted moving average
    p50_s: float         # median over the retained window
    p95_s: float         # tail over the retained window

    def describe(self) -> str:
        return (f"{self.stage}: n={self.count} ewma={self.ewma_s:.2e}s "
                f"p50={self.p50_s:.2e}s p95={self.p95_s:.2e}s")


class StageMonitor:
    """Bounded ring buffers of realized per-stage wall times.

    Thread-safe: stage threads on the threaded/pipelined planes and the
    parent's collect loop on the process planes observe concurrently.

    Parameters
    ----------
    window:
        Samples retained per stage for the percentile summaries (the
        EWMA and the count/total accumulators are unbounded-history).
    alpha:
        EWMA smoothing factor in ``(0, 1]`` — the weight of the newest
        sample.
    """

    def __init__(self, window: int = 128, alpha: float = 0.25) -> None:
        if window < 1:
            raise ProtocolError("monitor window must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ProtocolError("monitor alpha must be in (0, 1]")
        self.window = window
        self.alpha = alpha
        self._lock = threading.Lock()
        self._rings: dict[str, deque] = {}
        self._ewma: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._total: dict[str, float] = {}

    # ------------------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        """Record one realized wall-time sample for ``stage``."""
        v = float(seconds)
        if not math.isfinite(v) or v < 0.0:
            raise ProtocolError(
                f"monitor sample for {stage!r} must be finite and "
                f">= 0, got {seconds!r}")
        with self._lock:
            ring = self._rings.setdefault(
                stage, deque(maxlen=self.window))
            ring.append(v)
            prev = self._ewma.get(stage)
            self._ewma[stage] = v if prev is None else \
                self.alpha * v + (1.0 - self.alpha) * prev
            self._count[stage] = self._count.get(stage, 0) + 1
            self._total[stage] = self._total.get(stage, 0.0) + v

    def observe_times(self, realized: Mapping[str, float]) -> None:
        """Record one iteration's realized stage map (canonical keys)."""
        for stage, seconds in realized.items():
            self.observe(stage, seconds)

    def merge_totals(self, totals: Mapping[str, tuple]) -> None:
        """Fold a worker's cumulative ``{stage: (count, total_s)}``
        accounting (the ``wstats`` pipe payload) into the count/total
        accumulators. Totals carry no per-sample resolution, so the
        ring/EWMA stay untouched — but the per-stage mean the summary
        derives from ``total_s / count`` reflects the worker-side work
        even on planes that never ship per-iteration timings."""
        for stage, (count, total_s) in totals.items():
            c = int(count)
            t = float(total_s)
            if c < 0 or not math.isfinite(t) or t < 0.0:
                raise ProtocolError(
                    f"invalid wstats entry for {stage!r}: "
                    f"({count!r}, {total_s!r})")
            if c == 0:
                continue
            with self._lock:
                self._count[stage] = self._count.get(stage, 0) + c
                self._total[stage] = self._total.get(stage, 0.0) + t

    # ------------------------------------------------------------------
    def stages(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(set(self._count) | set(self._rings)))

    def count(self, stage: str) -> int:
        with self._lock:
            return self._count.get(stage, 0)

    def ewma(self, stage: str) -> float | None:
        with self._lock:
            return self._ewma.get(stage)

    def percentile(self, stage: str, q: float) -> float | None:
        """The ``q``-th percentile over the retained window."""
        if not 0.0 <= q <= 100.0:
            raise ProtocolError("percentile must be in [0, 100]")
        with self._lock:
            ring = self._rings.get(stage)
            if not ring:
                return None
            return float(np.percentile(np.asarray(ring), q))

    def summary(self) -> dict[str, StageSummary]:
        """Per-stage digests, canonical-key order first."""
        out: dict[str, StageSummary] = {}
        with self._lock:
            stages = sorted(
                set(self._count) | set(self._rings),
                key=lambda s: (REALIZED_STAGES.index(s)
                               if s in REALIZED_STAGES else
                               len(REALIZED_STAGES), s))
            for stage in stages:
                ring = self._rings.get(stage)
                arr = np.asarray(ring) if ring else None
                count = self._count.get(stage, 0)
                total = self._total.get(stage, 0.0)
                ewma = self._ewma.get(stage)
                if ewma is None:
                    # Totals-only stage (wstats): the mean is the best
                    # point estimate the payload carries.
                    ewma = total / count if count else 0.0
                out[stage] = StageSummary(
                    stage=stage, count=count, total_s=total,
                    ewma_s=float(ewma),
                    p50_s=float(np.percentile(arr, 50))
                    if arr is not None else float(ewma),
                    p95_s=float(np.percentile(arr, 95))
                    if arr is not None else float(ewma))
        return out

    def describe(self) -> str:
        return " | ".join(s.describe() for s in self.summary().values()) \
            or "no observations"
