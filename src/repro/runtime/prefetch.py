"""Two-stage feature prefetch buffers (paper §IV-B, Fig. 7).

The prefetcher keeps up to ``depth`` prepared mini-batches in flight per
consumer: while the accelerator executes batch ``i``, batch ``i+1`` is in
transfer and batch ``i+2`` is being loaded — the two stages overlap
because they use different memory channels (host DDR vs PCIe).

In the virtual-time engine the overlap itself is resolved by the
:class:`~repro.sim.engine.PipelineSimulator`; :class:`PrefetchBuffer` is
the *data-plane* structure used by the live backends (a bounded,
thread-safe queue with depth = prefetch depth), plus occupancy accounting
that tests assert against.

Timeouts are **monotonic deadlines**: a ``put``/``get`` that passes
``timeout=t`` fails at most ``t`` seconds after the call, no matter how
many spurious or unproductive condition wakeups happen in between (a
churning peer that repeatedly notifies without freeing space must not
extend the deadline). The pipelined backend additionally relies on
:meth:`resize` — its adaptive look-ahead grows and shrinks the effective
depth while producers and consumers are live — and on the per-buffer
occupancy statistics (:attr:`high_water`, :attr:`mean_occupancy`) that
the per-stage overlap report aggregates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from ..errors import ProtocolError, StageTimeoutError


class PrefetchBuffer:
    """Bounded FIFO with blocking put/get and occupancy stats.

    Semantics match a ``queue.Queue(maxsize=depth)`` but with explicit
    close() for clean shutdown, deadline-based timeouts, a live
    :meth:`resize`, and high-water / mean-occupancy tracking.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ProtocolError("prefetch depth must be >= 1")
        self.depth = depth
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.high_water = 0
        self.total_puts = 0
        self.total_gets = 0
        self._occupancy_sum = 0
        self._occupancy_samples = 0

    def _wait(self, cond: threading.Condition,
              deadline: float | None, what: str) -> None:
        """One deadline-aware wait on ``cond`` (lock already held).

        ``Condition.wait(timeout)`` restarts its timer on every call, so
        a loop that re-waits after each wakeup can block arbitrarily
        longer than the requested timeout whenever a peer keeps
        notifying without making the predicate true. Re-deriving the
        remaining budget from one monotonic deadline bounds the *total*
        blocked time instead.
        """
        if deadline is None:
            cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not cond.wait(remaining):
            # Either the budget is already spent, or this single wait
            # consumed the rest of it without a notification.
            if deadline - time.monotonic() <= 0:
                # Typed as an infra failure (not a conformance one):
                # CI log triage keys off the exception class.
                raise StageTimeoutError(f"prefetch {what} timed out")

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Insert, blocking while the buffer is full.

        Raises
        ------
        ProtocolError
            If the buffer was closed.
        StageTimeoutError
            If the deadline (``timeout`` seconds from the call) expired.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._not_full:
            while len(self._items) >= self.depth and not self._closed:
                self._wait(self._not_full, deadline, "put")
            if self._closed:
                raise ProtocolError("put on closed prefetch buffer")
            self._items.append(item)
            self.total_puts += 1
            self._sample_occupancy()
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Remove the oldest item, blocking while empty.

        Returns ``None`` when the buffer is closed and drained (the
        consumer's shutdown signal).
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._not_empty:
            while not self._items and not self._closed:
                self._wait(self._not_empty, deadline, "get")
            if not self._items:
                return None
            item = self._items.popleft()
            self.total_gets += 1
            self._sample_occupancy()
            self._not_full.notify()
            return item

    def resize(self, depth: int) -> None:
        """Change the capacity of a live buffer.

        Growing wakes blocked producers immediately; shrinking below the
        current occupancy keeps the queued items (nothing is dropped)
        and simply blocks further puts until consumers drain below the
        new depth.
        """
        if depth < 1:
            raise ProtocolError("prefetch depth must be >= 1")
        with self._lock:
            grew = depth > self.depth
            self.depth = depth
            if grew:
                self._not_full.notify_all()

    def close(self) -> None:
        """Mark the stream finished; wakes all waiters."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def _sample_occupancy(self) -> None:
        """Record occupancy after a state change (lock held)."""
        occ = len(self._items)
        self.high_water = max(self.high_water, occ)
        self._occupancy_sum += occ
        self._occupancy_samples += 1

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def mean_occupancy(self) -> float:
        """Average occupancy sampled at every put/get transition."""
        with self._lock:
            if self._occupancy_samples == 0:
                return 0.0
            return self._occupancy_sum / self._occupancy_samples
