"""Two-stage feature prefetch buffers (paper §IV-B, Fig. 7).

The prefetcher keeps up to ``depth`` prepared mini-batches in flight per
consumer: while the accelerator executes batch ``i``, batch ``i+1`` is in
transfer and batch ``i+2`` is being loaded — the two stages overlap
because they use different memory channels (host DDR vs PCIe).

In the virtual-time engine the overlap itself is resolved by the
:class:`~repro.sim.engine.PipelineSimulator`; :class:`PrefetchBuffer` is
the *data-plane* structure used by the threaded executor (a bounded,
thread-safe queue with depth = prefetch depth), plus occupancy accounting
that tests assert against.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from ..errors import ProtocolError


class PrefetchBuffer:
    """Bounded FIFO with blocking put/get and occupancy stats.

    Semantics match a ``queue.Queue(maxsize=depth)`` but with explicit
    close() for clean shutdown and high-water tracking.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ProtocolError("prefetch depth must be >= 1")
        self.depth = depth
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.high_water = 0
        self.total_puts = 0

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Insert, blocking while the buffer is full.

        Raises
        ------
        ProtocolError
            If the buffer was closed, or the timeout expired.
        """
        with self._not_full:
            while len(self._items) >= self.depth and not self._closed:
                if not self._not_full.wait(timeout):
                    raise ProtocolError("prefetch put timed out")
            if self._closed:
                raise ProtocolError("put on closed prefetch buffer")
            self._items.append(item)
            self.total_puts += 1
            self.high_water = max(self.high_water, len(self._items))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Remove the oldest item, blocking while empty.

        Returns ``None`` when the buffer is closed and drained (the
        consumer's shutdown signal).
        """
        with self._not_empty:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout):
                    raise ProtocolError("prefetch get timed out")
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark the stream finished; wakes all waiters."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._items)
