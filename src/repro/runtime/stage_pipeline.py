"""The per-item stage pipeline, extracted from the training session.

Every consumer of the runtime — the six training backends *and* the
online serving plane (:mod:`repro.serving`) — pushes work items through
the same Fig.-5 producer chain: **sample** a computational graph for
some target vertices, **gather** their input features from host DDR,
apply the **transfer** (PCIe quantization) policy for the executing
device. Historically that chain lived as methods on
:class:`~repro.runtime.core.TrainingSession`; this module is the
extraction that lets a non-training session reuse it:

* :class:`StagePipeline` — the sampler + feature-store + transfer
  policy bundle with one method per stage (``sample`` / ``gather`` /
  ``transfer``), the fused ``load`` chokepoint, and a timed
  :meth:`~StagePipeline.prepare` that runs the whole chain for one work
  item and reports per-stage wall times (what the serving plane bills
  against its latency budget);
* :class:`WorkSource` — the protocol behind which the training
  :class:`~repro.runtime.core.BatchPlan` (epoch permutation + quota
  cursor) and the serving micro-batch queue look identical to an
  overlapped backend's dispatcher: a stream of
  ``(index, work item)`` pairs.

:class:`~repro.runtime.core.TrainingSession` composes a
:class:`StagePipeline` and keeps its historical stage hooks
(``sample_stage`` …) as thin delegations, so the six backends execute
bit-identical paths; :class:`~repro.serving.ServingSession` composes
the same class over the same sampler/kernel/feature-store stack.

The three module-level stage functions (pure; also called directly by
the process-plane shm workers against their own feature mappings) moved
here with the extraction — :mod:`repro.runtime.core` re-exports them
unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from .. import kernels
from ..sampling.base import MiniBatch, Sampler
from .quantize import quantize_dequantize


def gather_feature_rows(features: np.ndarray, mb: MiniBatch, *,
                        out: np.ndarray | None = None,
                        pool: kernels.BufferPool | None = None
                        ) -> np.ndarray:
    """The feature-gather (load) stage: one host-memory row gather.

    Dispatches through the kernel registry (:mod:`repro.kernels`), so
    the active ``REPRO_KERNELS`` tier decides how the rows move; every
    tier returns the same float64 bits. ``out``/``pool`` make the fast
    tier allocation-free — **opt-in**: a pooled result is only valid
    until the next gather from the same pool, so only provably
    sequential call sites (the virtual backend's epoch loop, the
    process-plane workers) pass one; the overlapped planes keep several
    batches in flight and must not (see ``docs/kernels.md``). Without
    them the call is pure — safe to run concurrently from pipeline
    stage threads.
    """
    return kernels.gather_rows(features, mb.input_nodes, out=out,
                               pool=pool)


def apply_transfer_policy(x0: np.ndarray, trainer_kind: str,
                          transfer_precision: str) -> np.ndarray:
    """The transfer stage: the PCIe link's quantization policy.

    Accelerator-bound batches pay the transfer-quantization round trip
    (paper §VIII extension); the CPU trainer reads host memory at full
    precision, so the stage is the identity for it.
    """
    if trainer_kind == "accel" and transfer_precision != "fp32":
        return quantize_dequantize(x0, transfer_precision)
    return x0


def gather_batch_features(features: np.ndarray, mb: MiniBatch,
                          trainer_kind: str,
                          transfer_precision: str, *,
                          pool: kernels.BufferPool | None = None
                          ) -> np.ndarray:
    """Gather one mini-batch's input features, ready for a trainer.

    The fused load + transfer path: pure function of
    ``(features, batch, kind, precision)`` so every execution
    substrate — the in-process backends via
    :meth:`TrainingSession.load_features`, process-pool workers against
    their shared-memory mapping, the pipelined backend's separate
    gather/transfer stage threads — runs the identical bits.
    Accelerator-bound quantized batches take the registry's **fused**
    gather+quantize kernel (one pass over the rows, no float64
    intermediate between the stages on the fast tier); everything else
    is a plain gather. ``pool`` is the same opt-in as
    :func:`gather_feature_rows`.
    """
    if trainer_kind == "accel" and transfer_precision != "fp32":
        return kernels.gather_quantize(features, mb.input_nodes,
                                       transfer_precision, pool=pool)
    return kernels.gather_rows(features, mb.input_nodes, pool=pool)


# ---------------------------------------------------------------------------
# Work sources
# ---------------------------------------------------------------------------

@runtime_checkable
class WorkSource(Protocol):
    """A stream of work items an overlapped dispatcher can drain.

    Training's :class:`~repro.runtime.core.BatchPlan` yields
    ``(global_iteration, PlannedIteration)`` pairs off per-epoch
    permutations; the serving plane's micro-batch queue yields
    ``(sequence_number, MicroBatch)`` pairs off the admission queue.
    Either way a backend's dispatcher sees a numbered stream it feeds
    into the stage pipeline — which is what lets one overlapped
    executor drive both planes.
    """

    def iterate(self, iterations: int
                ) -> Iterator[tuple[int, object]]:
        """Yield up to ``iterations`` numbered work items."""
        ...


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StageTimings:
    """Realized wall time of one work item's producer chain."""

    sample_s: float
    gather_s: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        return self.sample_s + self.gather_s + self.transfer_s


@dataclass(frozen=True)
class PreparedBatch:
    """One work item after the full producer chain: the sampled
    computational graph, its device-ready input features, its labels
    (``None`` for label-free serving items), and the per-stage wall
    times the chain realized."""

    mb: MiniBatch
    x0: np.ndarray
    labels: np.ndarray | None
    timings: StageTimings


class StagePipeline:
    """The sample → gather → transfer chain over one feature store.

    Parameters
    ----------
    sampler:
        The mini-batch sampler (one shared RNG stream; draws are
        serialized through :attr:`sampler_lock`).
    features / labels:
        The feature matrix and (optionally) label vector the gather and
        label stages read. Process-plane workers construct a pipeline
        over their shared-memory views; ``labels=None`` supports
        label-free (inference) stores.
    transfer_precision:
        The PCIe quantization policy (``"fp32"``/``"fp16"``/``"int8"``).
    """

    def __init__(self, sampler: Sampler, features: np.ndarray,
                 labels: np.ndarray | None,
                 transfer_precision: str) -> None:
        self.sampler = sampler
        self.features = features
        self.labels = labels
        self.transfer_precision = transfer_precision
        #: Serializes sampler access for callers whose stage threads
        #: sample concurrently (samplers hold a single RNG stream that
        #: is not thread-safe). Single-threaded callers never contend.
        self.sampler_lock = threading.Lock()

    # ------------------------------------------------------------------
    # One method per Fig.-5 producer stage
    # ------------------------------------------------------------------
    def sample(self, targets: np.ndarray) -> MiniBatch:
        """Sample one mini-batch (thread-safe).

        The sampler's RNG stream is shared; the lock makes each draw
        atomic so concurrent stage threads interleave whole batches,
        never corrupt the stream.
        """
        with self.sampler_lock:
            return self.sampler.sample(targets)

    def gather(self, mb: MiniBatch) -> np.ndarray:
        """Feature-gather (load) stage: host-DDR row gather, fp32/64."""
        return gather_feature_rows(self.features, mb)

    def transfer(self, x0: np.ndarray, trainer_kind: str) -> np.ndarray:
        """Transfer stage: the PCIe quantization policy for this link."""
        return apply_transfer_policy(x0, trainer_kind,
                                     self.transfer_precision)

    def load(self, mb: MiniBatch, trainer_kind: str, *,
             pool: kernels.BufferPool | None = None) -> np.ndarray:
        """The fused load + transfer chokepoint (sequential planes).

        ``pool`` is the sequential-call-site opt-in documented on
        :func:`gather_feature_rows`.
        """
        return gather_batch_features(self.features, mb, trainer_kind,
                                     self.transfer_precision, pool=pool)

    def labels_for(self, mb: MiniBatch) -> np.ndarray | None:
        """This batch's target labels (``None`` on a label-free
        store)."""
        if self.labels is None:
            return None
        return self.labels[mb.targets]

    # ------------------------------------------------------------------
    def prepare(self, targets: np.ndarray, trainer_kind: str, *,
                with_labels: bool = True,
                pool: kernels.BufferPool | None = None) -> PreparedBatch:
        """Run the whole producer chain for one work item, timed.

        The serving plane's per-micro-batch path: sample the
        computational graph, fused-gather the device-ready features
        (splitting the realized wall time between the gather and
        transfer stages is the fused kernel's business, so the fused
        cost is billed to ``gather_s`` and ``transfer_s`` reads zero
        when the policy is fp32), and fetch labels when the store has
        them. The returned :class:`StageTimings` feed the caller's
        :class:`~repro.runtime.resctl.StageMonitor`.
        """
        t0 = time.perf_counter()
        mb = self.sample(targets)
        t1 = time.perf_counter()
        if trainer_kind == "accel" and self.transfer_precision != "fp32":
            x0 = gather_batch_features(self.features, mb, trainer_kind,
                                       self.transfer_precision,
                                       pool=pool)
            t2 = time.perf_counter()
            gather_s, transfer_s = t2 - t1, 0.0
        else:
            x0 = gather_feature_rows(self.features, mb, pool=pool)
            t2 = time.perf_counter()
            x0 = self.transfer(x0, trainer_kind)
            gather_s, transfer_s = t2 - t1, time.perf_counter() - t2
        labels = self.labels_for(mb) if with_labels else None
        return PreparedBatch(
            mb=mb, x0=x0, labels=labels,
            timings=StageTimings(sample_s=t1 - t0, gather_s=gather_s,
                                 transfer_s=transfer_s))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StagePipeline {type(self.sampler).__name__} over "
                f"{self.features.shape} features, "
                f"{self.transfer_precision} transfer>")
