"""Live multi-threaded executor facade (paper §VI-B, Listing 1).

:class:`ThreadedExecutor` is a thin facade over the shared runtime core:
a :class:`~repro.runtime.core.TrainingSession` executed by the
:class:`~repro.runtime.backends.ThreadedBackend` (real Python threads
with the paper's pthread-style condition-variable handshakes).

Because execution now rides the shared core, the threaded plane supports
everything the virtual-time plane does: pass ``platform`` (and a
``sys_cfg``) to run the hybrid CPU+accelerator split, DRM re-balancing
and quantized PCIe transfer on live threads — configurations that were
previously expressible only in :class:`~repro.runtime.hybrid.HyScaleGNN`.
Without a platform the executor keeps its historical shape: ``num_trainers``
replicas fed by one producer thread, functional training only.

Epoch semantics follow the shared :class:`~repro.runtime.core.BatchPlan`:
each epoch is one permutation of the train set consumed cursor-wise
(matching ``HyScaleGNN.train_epoch``), rolling into a fresh permutation
when ``run(iterations)`` spans epochs — the historical executor drew
i.i.d. batches every iteration and never covered the train set.
"""

from __future__ import annotations

from ..config import SystemConfig, TrainingConfig
from ..errors import ProtocolError
from ..graph.datasets import GraphDataset
from ..hw.topology import PlatformSpec
from .backends.threaded import ExecutorReport, ThreadedBackend
from .core import TrainingSession

__all__ = ["ExecutorReport", "ThreadedExecutor"]


class ThreadedExecutor:
    """Run hybrid synchronous-SGD training on real threads.

    Parameters
    ----------
    dataset / train_cfg:
        Workload description; all trainers share one sampler stream.
    num_trainers:
        Trainer thread count for platform-less sessions (the modelled
        CPU + accelerators; placement does not matter functionally).
        Ignored when ``platform`` is given — the trainer set then comes
        from the platform (CPU trainer when hybrid + one per
        accelerator).
    prefetch_depth:
        Mini-batches of look-ahead per trainer. When an explicit
        ``sys_cfg`` is passed its ``prefetch_depth`` governs both the
        live buffers and the modelled pipeline (one depth for both
        planes); this argument then has no effect.
    timeout_s:
        Watchdog for every blocking wait — a protocol deadlock fails fast
        instead of hanging the suite.
    sys_cfg:
        System feature flags. Defaults to hybrid trainers with DRM off
        and full-precision transfer (the historical executor semantics).
    platform:
        Optional node description; enables the timing plane (stage
        times, DRM, workload split) on the threaded run.
    profile_probes:
        Sampling-profile probes for platform sessions (must match the
        virtual-plane system for cross-backend reproducibility).
    """

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 num_trainers: int = 3, prefetch_depth: int = 2,
                 timeout_s: float = 60.0,
                 sys_cfg: SystemConfig | None = None,
                 platform: PlatformSpec | None = None,
                 profile_probes: int = 6) -> None:
        if num_trainers < 1:
            raise ProtocolError("need at least one trainer")
        if sys_cfg is None:
            sys_cfg = SystemConfig(hybrid=True, drm=False, prefetch=True,
                                   prefetch_depth=prefetch_depth)
        self.session = TrainingSession(
            dataset, train_cfg, sys_cfg, platform,
            num_trainers=num_trainers, profile_probes=profile_probes)
        # One depth for both planes: the live buffers and the modelled
        # pipeline must agree, so an explicit sys_cfg's prefetch_depth
        # wins over the convenience argument.
        depth = sys_cfg.prefetch_depth
        self.backend = ThreadedBackend(self.session,
                                       prefetch_depth=depth,
                                       timeout_s=timeout_s)
        self.prefetch_depth = depth
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Session delegation (the public surface predating the core split)
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> GraphDataset:
        return self.session.dataset

    @property
    def train_cfg(self) -> TrainingConfig:
        return self.session.train_cfg

    @property
    def num_trainers(self) -> int:
        return self.session.num_trainers

    @property
    def sampler(self):
        return self.session.sampler

    @property
    def trainers(self):
        return self.session.trainers

    @property
    def synchronizer(self):
        return self.session.synchronizer

    @property
    def optimizers(self):
        return self.session.optimizers

    @property
    def split(self):
        return self.session.split

    @split.setter
    def split(self, value) -> None:
        self.session.split = value

    @property
    def drm(self):
        return self.session.drm

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> ExecutorReport:
        """Execute ``iterations`` synchronized iterations."""
        return self.backend.run(iterations)

    def run_epoch(self, max_iterations: int | None = None
                  ) -> ExecutorReport:
        """Execute one epoch over the shared batch plan."""
        return self.backend.run_epoch(max_iterations)
