"""Live multi-threaded executor (paper §VI-B, Listing 1).

The virtual-time engine in :mod:`repro.runtime.hybrid` models the
protocol; this module *runs* it, with real Python threads and
condition-variable handshakes structured exactly like the paper's pthread
implementation:

* a producer thread plays Mini-batch Sampler + Feature Loader, filling
  bounded :class:`~repro.runtime.prefetch.PrefetchBuffer` queues (the
  two-stage prefetch look-ahead);
* one thread per GNN Trainer trains its replica, then increments the
  shared ``DONE`` counter under the mutex and signals the condition
  (Listing 1's ``Trainer_threads`` block);
* the synchronizer (the ``run`` caller's thread) waits for
  ``DONE == n``, performs the all-reduce, broadcasts, and waits for every
  trainer's ``ACK`` before releasing the next iteration (Listing 1's
  ``Synchronizer_thread`` block).

Every handshake is recorded in a :class:`ProtocolLog`; tests validate the
ordering invariants and that training results match the single-threaded
engine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import TrainingConfig, layer_dims
from ..errors import ProtocolError
from ..graph.datasets import GraphDataset
from ..nn.models import build_model
from ..nn.optim import SGD
from ..sampling.neighbor import NeighborSampler
from .prefetch import PrefetchBuffer
from .protocol import ProtocolLog, Signal
from .synchronizer import GradientSynchronizer
from .trainer import TrainerNode


@dataclass
class ExecutorReport:
    """Outcome of a threaded run."""

    iterations: int
    losses: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    protocol_log: ProtocolLog = field(default_factory=ProtocolLog)
    replicas_consistent: bool = False
    prefetch_high_water: int = 0


class ThreadedExecutor:
    """Run hybrid synchronous-SGD training on real threads.

    Parameters
    ----------
    dataset / train_cfg:
        Workload description; all trainers share one sampler stream.
    num_trainers:
        Trainer thread count (the modelled CPU + accelerators; placement
        does not matter functionally).
    timeout_s:
        Watchdog for every blocking wait — a protocol deadlock fails fast
        instead of hanging the suite.
    """

    def __init__(self, dataset: GraphDataset, train_cfg: TrainingConfig,
                 num_trainers: int = 3, prefetch_depth: int = 2,
                 timeout_s: float = 60.0) -> None:
        if num_trainers < 1:
            raise ProtocolError("need at least one trainer")
        self.dataset = dataset
        self.train_cfg = train_cfg
        self.num_trainers = num_trainers
        self.prefetch_depth = prefetch_depth
        self.timeout_s = timeout_s

        dims = layer_dims(dataset.spec.feature_dim, train_cfg.hidden_dim,
                          dataset.spec.num_classes, train_cfg.num_layers)
        self.sampler = NeighborSampler(
            dataset.graph, dataset.train_ids, train_cfg.fanouts,
            dataset.spec.feature_dim, seed=train_cfg.seed)
        self.trainers = [
            TrainerNode(f"trainer{i}", "accel" if i else "cpu",
                        build_model(train_cfg.model, dims,
                                    train_cfg.seed),
                        None, dims, train_cfg.model)
            for i in range(num_trainers)]
        self.synchronizer = GradientSynchronizer(
            [t.model for t in self.trainers], weighting="batch")
        self.optimizers = [SGD(t.model, lr=train_cfg.learning_rate)
                           for t in self.trainers]
        self._degrees = dataset.graph.out_degrees

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> ExecutorReport:
        """Execute ``iterations`` synchronized iterations."""
        if iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        report = ExecutorReport(iterations=iterations)
        log = report.protocol_log
        n = self.num_trainers

        mutex = threading.Lock()
        cond = threading.Condition(mutex)
        state = {
            "done": 0,           # Listing 1's DONE counter
            "acks": 0,
            "sync_iter": -1,     # last iteration whose all-reduce finished
            "release_iter": 0,   # iteration trainers may work on
            "losses": {},        # (iteration, trainer) -> (loss, size)
            "error": None,
        }
        buffers = [PrefetchBuffer(self.prefetch_depth) for _ in range(n)]

        # ---- producer: Sampler + Feature Loader ----
        def producer() -> None:
            try:
                rng = np.random.default_rng(self.train_cfg.seed + 99)
                ids = self.dataset.train_ids
                mb_size = max(8, min(self.train_cfg.minibatch_size,
                                     ids.size // n or 8))
                for it in range(iterations):
                    for t in range(n):
                        take = min(mb_size, ids.size)
                        targets = rng.choice(ids, size=take,
                                             replace=False)
                        mb = self.sampler.sample(targets)
                        x0 = self.dataset.features[
                            mb.input_nodes].astype(np.float64)
                        labels = self.dataset.labels[mb.targets]
                        buffers[t].put((it, mb, x0, labels),
                                       timeout=self.timeout_s)
                for b in buffers:
                    b.close()
            except BaseException as exc:  # propagate to the main thread
                with cond:
                    state["error"] = exc
                    cond.notify_all()
                for b in buffers:
                    b.close()

        # ---- trainer threads (Listing 1, Trainer_threads) ----
        def trainer_loop(idx: int) -> None:
            try:
                node = self.trainers[idx]
                opt = self.optimizers[idx]
                while True:
                    item = buffers[idx].get(timeout=self.timeout_s)
                    if item is None:
                        return
                    it, mb, x0, labels = item
                    with cond:
                        while state["release_iter"] < it and \
                                state["error"] is None:
                            if not cond.wait(self.timeout_s):
                                raise ProtocolError(
                                    f"trainer{idx} release wait timeout")
                        if state["error"] is not None:
                            return
                    rep = node.train_minibatch(mb, x0, labels,
                                               self._degrees)
                    with cond:
                        state["losses"][(it, idx)] = (rep.loss,
                                                      rep.batch_targets)
                        state["done"] += 1
                        log.record(it, Signal.DONE, node.name)
                        cond.notify_all()
                        # Wait for the synchronizer's broadcast.
                        while state["sync_iter"] < it and \
                                state["error"] is None:
                            if not cond.wait(self.timeout_s):
                                raise ProtocolError(
                                    f"trainer{idx} sync wait timeout")
                        if state["error"] is not None:
                            return
                    opt.step()
                    with cond:
                        state["acks"] += 1
                        log.record(it, Signal.ACK, node.name)
                        cond.notify_all()
            except BaseException as exc:
                with cond:
                    if state["error"] is None:
                        state["error"] = exc
                    cond.notify_all()

        threads = [threading.Thread(target=producer, daemon=True,
                                    name="producer")]
        threads += [threading.Thread(target=trainer_loop, args=(i,),
                                     daemon=True, name=f"trainer{i}")
                    for i in range(n)]
        start = time.perf_counter()
        for t in threads:
            t.start()

        # ---- synchronizer loop (Listing 1, Synchronizer_thread) ----
        try:
            for it in range(iterations):
                with cond:
                    while state["done"] < n and state["error"] is None:
                        if not cond.wait(self.timeout_s):
                            raise ProtocolError(
                                f"synchronizer wait timeout at {it}")
                    if state["error"] is not None:
                        raise state["error"]
                    sizes = [state["losses"][(it, i)][1]
                             for i in range(n)]
                    self.synchronizer.all_reduce(sizes, it)
                    log.record(it, Signal.SYNC, "synchronizer")
                    state["done"] = 0
                    state["sync_iter"] = it
                    cond.notify_all()
                    while state["acks"] < n and state["error"] is None:
                        if not cond.wait(self.timeout_s):
                            raise ProtocolError(
                                f"ACK wait timeout at {it}")
                    if state["error"] is not None:
                        raise state["error"]
                    state["acks"] = 0
                    state["release_iter"] = it + 1
                    log.record(it, Signal.ITER_START, "runtime")
                    cond.notify_all()
                losses = [state["losses"][(it, i)][0] for i in range(n)]
                report.losses.append(float(np.mean(losses)))
        finally:
            for b in buffers:
                b.close()
            for t in threads:
                t.join(timeout=self.timeout_s)

        report.wall_time_s = time.perf_counter() - start
        report.replicas_consistent = \
            self.synchronizer.replicas_consistent()
        report.prefetch_high_water = max(b.high_water for b in buffers)
        return report
