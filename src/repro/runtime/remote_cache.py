"""Degree-aware cache of hot *remote* feature rows (PaGraph-style).

:mod:`repro.baselines.pagraph` models the policy analytically — cache
the highest-out-degree vertices, and neighbor sampling (which touches
vertices roughly proportionally to degree) hits the cumulative degree
mass of the cached fraction (:func:`repro.baselines.common.degree_ordered_hit_ratio`).
This module promotes that closed form into a real lookup structure the
sharded training plane serves remote gathers from: each worker admits
the hottest vertices of its **halo** (the remote vertices its batches
can touch, per :meth:`repro.graph.shard_map.ShardMap.halo`) once at
startup, copies their feature rows out of the interconnect-side store,
and answers per-batch lookups with hit/miss/byte counters the
backend's report and the kit's conservation tests audit:

* ``hits + misses == lookups`` — every looked-up row is classified
  exactly once;
* ``served_bytes == hits * row_bytes`` and
  ``missed_bytes == misses * row_bytes`` where ``row_bytes`` is
  ``feature_dim * dtype.itemsize`` — byte accounting is dtype-exact.

The cache is static by design (PaGraph's is too): admission happens
once, before training, so lookups are wait-free reads and the hit rate
against degree-proportional traffic matches the analytic model the
baselines charge PCIe traffic with.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class RemoteFeatureCache:
    """A static, degree-ordered cache of remote feature rows.

    Parameters
    ----------
    capacity_rows:
        Maximum rows the cache may hold. Zero is legal (an always-miss
        cache — the "no cache" ablation arm with live counters).
    """

    def __init__(self, capacity_rows: int) -> None:
        if capacity_rows < 0:
            raise ConfigError("capacity_rows must be non-negative")
        self.capacity_rows = int(capacity_rows)
        self._ids = np.zeros(0, dtype=np.int64)     # sorted cached ids
        self._rows: np.ndarray | None = None        # aligned with _ids
        self._row_bytes = 0
        # Counters (the conservation invariants the tests pin).
        self.hits = 0
        self.misses = 0
        self.served_bytes = 0
        self.missed_bytes = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, candidates: np.ndarray, degrees: np.ndarray,
              features: np.ndarray,
              rows_of: np.ndarray | None = None) -> np.ndarray:
        """Fill the cache with the hottest candidates, once.

        Ranks ``candidates`` (global vertex ids) by descending
        ``degrees[candidate]`` — ties broken by ascending id, so
        admission is deterministic — keeps the top ``capacity_rows``,
        and copies their rows out of ``features``. ``rows_of`` maps a
        global id to its row in ``features`` (the shard-major
        ``shard_row`` translation); ``None`` means features are in
        global order. Returns the admitted ids (sorted).
        """
        if self._rows is not None:
            raise ConfigError("cache already admitted (static policy)")
        candidates = np.unique(np.asarray(candidates, dtype=np.int64))
        take = min(self.capacity_rows, candidates.size)
        if take > 0:
            rank = np.lexsort(
                (candidates, -np.asarray(degrees)[candidates]))
            chosen = np.sort(candidates[rank[:take]])
        else:
            chosen = np.zeros(0, dtype=np.int64)
        src_rows = chosen if rows_of is None \
            else np.asarray(rows_of)[chosen]
        self._ids = chosen
        self._rows = np.ascontiguousarray(features[src_rows])
        self._row_bytes = int(self._rows.dtype.itemsize
                              * int(np.prod(self._rows.shape[1:],
                                            dtype=np.int64)))
        return chosen

    @property
    def size_rows(self) -> int:
        return int(self._ids.size)

    @property
    def cached_ids(self) -> np.ndarray:
        """The admitted global ids (sorted, read-only view)."""
        return self._ids

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, ids: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a batch of global ids.

        Returns ``(hit_mask, hit_rows)``: a boolean mask over ``ids``
        and the cached rows for the hits, in ``ids[hit_mask]`` order.
        Updates the hit/miss/byte counters; callers fetch the misses
        from the remote store themselves (and bill the remote bytes).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._ids.size == 0:
            hit_mask = np.zeros(ids.size, dtype=bool)
        else:
            pos = np.searchsorted(self._ids, ids)
            pos_c = np.minimum(pos, self._ids.size - 1)
            hit_mask = self._ids[pos_c] == ids
        n_hit = int(hit_mask.sum())
        n_miss = int(ids.size - n_hit)
        self.hits += n_hit
        self.misses += n_miss
        self.served_bytes += n_hit * self._row_bytes
        self.missed_bytes += n_miss * self._row_bytes
        if n_hit and self._rows is not None:
            pos = np.searchsorted(self._ids, ids[hit_mask])
            hit_rows = self._rows[pos]
        else:
            shape = (0,) + (self._rows.shape[1:]
                            if self._rows is not None else ())
            dtype = self._rows.dtype if self._rows is not None \
                else np.float64
            hit_rows = np.zeros(shape, dtype=dtype)
        return hit_mask, hit_rows

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def row_bytes(self) -> int:
        """Bytes per cached row (``feature_dim * dtype.itemsize``)."""
        return self._row_bytes

    def stats(self) -> dict[str, int]:
        """Counter snapshot in the ``kernel_stats`` key dialect."""
        return {
            "remote_cache_rows": self.size_rows,
            "remote_cache_hits": self.hits,
            "remote_cache_misses": self.misses,
            "remote_cache_served_bytes": self.served_bytes,
        }
