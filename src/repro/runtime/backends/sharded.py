"""Partition-mapped sharded training plane (multi-node, simulated).

The worker-sampling plane (:mod:`.process_sampling`) parallelizes the
sample stage but still treats the feature store as one flat address
space: any worker gathers any row at host-memory cost. A multi-node
deployment cannot — DistDGL (Zheng et al., "Distributed Hybrid CPU and
GPU Training for GNNs on Billion-Scale Graphs") partitions the graph
across machines, trains each partition's target vertices on the machine
that owns them, and pays network cost for every feature row that lives
on another partition. This backend reproduces that execution structure
on one host, with the interconnect *accounted* rather than physical:

* the graph is partitioned up front (``hash_partition`` — P3-style
  random assignment, the worst case for locality — or
  ``bfs_partition``, the METIS stand-in) into one shard per trainer
  replica;
* the :class:`~repro.runtime.shm.SharedFeatureStore` is **shard-
  sliced**: features and labels are laid out in shard-major order
  (per-shard contiguous slices + the
  :class:`~repro.graph.shard_map.ShardMap` translation arrays travel
  in the segment), so worker ``k``'s local gathers stay inside its own
  slice and every other row is a remote fetch it must bill;
* the parent deals each shard **only the targets it owns**:
  :class:`ShardPlan` mirrors the shared
  :class:`~repro.runtime.core.BatchPlan` epoch-for-epoch (same RNG
  stream, same bookkeeping) but filters each epoch permutation by the
  partition map and apportions every iteration's target budget across
  shards proportionally to the work each has left (largest-remainder
  rounding) — iteration counts, epoch coverage and per-iteration
  budget conservation stay *exact*, which is what lets the statistical
  conformance tier (plus its cross-node shard-partition assertion)
  hold this plane to the same matrix as every other backend;
* each worker resolves a minibatch's input rows three ways — local
  slice, :class:`~repro.runtime.remote_cache.RemoteFeatureCache` hit
  (a PaGraph-style static cache of its halo's hottest vertices), or
  remote miss (read from the owning shard's slice, billed as remote
  bytes) — and ships per-minibatch local/remote gather bytes with
  every result (SNIPPETS' DistDGL accounting);
* gradient sync stays the per-iteration all-reduce barrier via the
  existing :class:`~repro.runtime.synchronizer.GradientSynchronizer`,
  and DRM keeps being adjudicated in the parent per iteration — the
  engine is reused per shard exactly as the single-node planes reuse
  it per trainer.

Per-run local/remote byte totals and the cache hit rate flow into
``report.kernel_stats`` (``shard_local_bytes`` / ``shard_remote_bytes``
/ ``remote_cache_*`` keys ride the existing ``kstats`` pipe round
trip) and the wall-clock bench's ``shard io`` column; per-minibatch
records land in :attr:`ShardedReport.shard_io`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ... import kernels
from ...errors import ConfigError, ProtocolError, WorkerError
from ...graph.partition import bfs_partition, hash_partition
from ...graph.shard_map import ShardMap
from ..core import PlannedIteration
from ..stage_pipeline import apply_transfer_policy
from .options import ShardedOptions
from .process_pool import _run_worker, _WorkerReplica, _WorkerSpec
from .process_sampling import (
    ProcessSamplingBackend,
    ProcessSamplingReport,
)

#: The partitioners a sharded backend can be constructed with.
PARTITIONERS = {
    "hash": hash_partition,
    "bfs": bfs_partition,
}


# ---------------------------------------------------------------------------
# Parent-side dealing
# ---------------------------------------------------------------------------

class ShardPlan:
    """Partition-mapped dealing over the session's own epoch stream.

    The shared :class:`~repro.runtime.core.BatchPlan` slices each epoch
    permutation by a quota cursor, so a trainer's batch is an arbitrary
    mix of vertices. A sharded plane must instead deal every target to
    the shard that *owns* it, while preserving the plan's exact
    arithmetic — the statistical tier asserts iteration count, epoch
    coverage and per-iteration budget conservation with no tolerance.
    This dealer threads that needle:

    * each epoch draws **one** permutation from the session plan's own
      RNG and increments its ``epochs_started`` — the sharded run
      consumes the plan's stream exactly like every other backend, so
      the kit's epoch bookkeeping holds unchanged;
    * the permutation is filtered per shard by the partition map
      (keeping permutation order within each shard: batch composition
      stays a fresh draw every epoch);
    * every iteration reads the live per-trainer quotas once (so DRM
      moves keep applying next-iteration, like everywhere else), takes
      their total ``T``, and apportions ``min(T, remaining)`` targets
      across shards **proportionally to the work each shard has
      left**, largest-remainder rounding, ties to the lower shard
      index. Proportional apportionment is what makes unbalanced
      partitions exhaust together: every iteration trains exactly
      ``min(T, remaining)`` targets, so a full epoch takes exactly
      ``ceil(train_size / T)`` iterations — the reference count.

    Empty shards (legal for ``num_parts > num_vertices`` partitions)
    simply receive ``None`` assignments and their trainers idle through
    the run.
    """

    def __init__(self, plan, parts: np.ndarray,
                 num_shards: int) -> None:
        self.plan = plan
        self.parts = np.asarray(parts, dtype=np.int64)
        self.num_shards = int(num_shards)

    # -- one epoch -----------------------------------------------------
    def start_epoch(self) -> Iterator[PlannedIteration]:
        """Yield one epoch of shard-owned :class:`PlannedIteration`.

        Mirrors ``BatchPlan.start_epoch``: the permutation is drawn
        eagerly off the *session plan's* RNG (one draw per epoch — the
        stream stays in lock-step with every other backend) and the
        plan's ``epochs_started`` advances, so full-epoch bookkeeping
        assertions see an identical plan state.
        """
        plan = self.plan
        epoch = plan.epochs_started
        plan.epochs_started += 1
        perm = plan.rng.permutation(plan.train_ids)
        owned = [perm[self.parts[perm] == k]
                 for k in range(self.num_shards)]
        return self._iterate(epoch, owned)

    def _iterate(self, epoch: int, owned: list[np.ndarray]
                 ) -> Iterator[PlannedIteration]:
        cursors = np.zeros(self.num_shards, dtype=np.int64)
        sizes = np.array([o.size for o in owned], dtype=np.int64)
        index = 0
        while True:
            remaining = sizes - cursors
            total_left = int(remaining.sum())
            if total_left == 0:
                return
            budget = sum(max(0, int(c))
                         for c in self.plan.counts_fn())
            take = min(budget, total_left)
            if take <= 0:
                return    # zero total quota: nobody can make progress
            quotas = _apportion(take, remaining)
            assignments: list[np.ndarray | None] = []
            for k in range(self.num_shards):
                q = int(quotas[k])
                if q <= 0:
                    assignments.append(None)
                    continue
                assignments.append(
                    owned[k][cursors[k]:cursors[k] + q])
                cursors[k] += q
            yield PlannedIteration(epoch=epoch, index=index,
                                   assignments=tuple(assignments))
            index += 1

    # -- many iterations -----------------------------------------------
    def iterate(self, iterations: int
                ) -> Iterator[tuple[int, PlannedIteration]]:
        """Yield ``(global_iteration, planned)`` for exactly
        ``iterations`` iterations, rolling into fresh epoch
        permutations at epoch boundaries — the same numbering and
        no-progress guard as ``BatchPlan.iterate``."""
        produced = 0
        while produced < iterations:
            before = produced
            for planned in self.start_epoch():
                yield produced, planned
                produced += 1
                if produced >= iterations:
                    return
            if produced == before:
                raise ProtocolError(
                    "shard plan yielded no work for an epoch")


def _apportion(take: int, remaining: np.ndarray) -> np.ndarray:
    """Split ``take`` targets across shards ∝ work left.

    Largest-remainder (Hamilton) apportionment over integer arithmetic:
    ``quota_k = floor(take * remaining_k / R)`` plus one for the
    largest fractional remainders until the total is ``take``. Because
    ``take <= R = sum(remaining)``, every quota satisfies
    ``quota_k <= remaining_k``; ties break to the lower shard index, so
    dealing is deterministic.
    """
    remaining = remaining.astype(np.int64)
    total = int(remaining.sum())
    if take >= total:
        return remaining.copy()
    base = (take * remaining) // total
    rem = take * remaining - base * total
    leftover = take - int(base.sum())
    if leftover > 0:
        # argsort is stable, so equal remainders keep index order.
        top = np.argsort(-rem, kind="stable")[:leftover]
        base[top] += 1
    return base


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _ShardedReplica(_WorkerReplica):
    """One shard's trainer replica: the shard-sliced store mapping plus
    the local/cache/remote gather resolver."""

    def __init__(self, store, spec: _WorkerSpec) -> None:
        super().__init__(store, spec)
        from ..remote_cache import RemoteFeatureCache

        self.shard = spec.index
        smap = store.shard_map()
        # Views into the segment (released before close, like
        # features/labels); degrees is already a private copy.
        self.parts = smap.parts
        self.shard_row = smap.shard_row
        shard_cfg = store.manifest.shard
        self.cache = None
        if shard_cfg.remote_cache_rows > 0:
            halo = smap.halo(store.csr_graph(), self.shard)
            cache = RemoteFeatureCache(shard_cfg.remote_cache_rows)
            cache.admit(halo, self.degrees, self.features,
                        rows_of=self.shard_row)
            self.cache = cache
        self._row_bytes = int(
            self.features.dtype.itemsize
            * int(np.prod(self.features.shape[1:], dtype=np.int64)))
        self.last_io: dict[str, int] = {}

    def train(self, spec: _WorkerSpec, mb):
        """Resolve the batch's rows local/cache/remote, then the
        session's exact widen + transfer policy and one
        forward/backward.

        The assembled source rows are bit-identical to a flat gather
        (cache rows are copies of the same store rows), so the math
        stays inside the statistical tier's tolerances exactly like the
        other worker-sampling planes; only the *accounting* knows which
        interconnect each row crossed.
        """
        t0 = time.perf_counter()
        ids = np.asarray(mb.input_nodes, dtype=np.int64)
        rows = self.shard_row[ids]
        local_mask = self.parts[ids] == self.shard
        local_idx = np.flatnonzero(local_mask)
        remote_idx = np.flatnonzero(~local_mask)

        src = np.empty((ids.size,) + self.features.shape[1:],
                       dtype=self.features.dtype)
        src[local_idx] = self.features[rows[local_idx]]
        cache_hits = 0
        if remote_idx.size:
            if self.cache is not None:
                hit_mask, hit_rows = self.cache.lookup(ids[remote_idx])
                src[remote_idx[hit_mask]] = hit_rows
                miss_idx = remote_idx[~hit_mask]
                cache_hits = int(hit_mask.sum())
            else:
                miss_idx = remote_idx
            # The remote fetch: rows read out of *other shards'*
            # slices — on a real deployment this is the network RPC;
            # here it is the same segment, but billed as remote.
            src[miss_idx] = self.features[rows[miss_idx]]
        remote_rows = int(remote_idx.size - cache_hits)
        io = {
            "local_rows": int(local_idx.size),
            "remote_rows": remote_rows,
            "cache_hits": cache_hits,
            "local_bytes": int(local_idx.size) * self._row_bytes,
            "remote_bytes": remote_rows * self._row_bytes,
        }
        self.last_io = io
        x0 = apply_transfer_policy(src.astype(np.float64), spec.kind,
                                   spec.transfer_precision)
        # Shard-io keys plus the standard gather keys the "kernel io"
        # bench column reads — this resolver replaces the registry's
        # gather dispatch, so it must keep the same books.
        kernels.record(
            shard_local_bytes=io["local_bytes"],
            shard_remote_bytes=io["remote_bytes"],
            shard_local_rows=io["local_rows"],
            shard_remote_rows=io["remote_rows"],
            remote_cache_hits=cache_hits,
            remote_cache_misses=remote_rows,
            gather_calls=1, gather_rows=ids.size,
            gather_src_bytes=src.nbytes, gather_out_bytes=x0.nbytes)
        self.note_stage("load", time.perf_counter() - t0)

        t0 = time.perf_counter()
        labels = self.labels[self.shard_row[np.asarray(
            mb.targets, dtype=np.int64)]]
        rep = self.node.train_minibatch(mb, x0, labels, self.degrees)
        self.note_stage("train", time.perf_counter() - t0)
        return rep

    def release_views(self) -> None:
        self.parts = self.shard_row = None
        super().release_views()


def _train_shard_targets(replica: _ShardedReplica, spec: _WorkerSpec,
                         msg):
    """Handle one owned-target shard: sample locally, resolve rows
    local/cache/remote, train, and ship the io record with the
    result."""
    _, it, targets = msg
    t0 = time.perf_counter()
    mb = replica.sampler.sample(targets)
    replica.note_stage("sample", time.perf_counter() - t0)
    rep = replica.train(spec, mb)
    return ("result", it, rep.loss, rep.accuracy, mb.stats(),
            np.asarray(mb.targets), replica.model.get_flat_grads(),
            dict(replica.last_stage_s), dict(replica.last_io))


def _setup_sharded(store, spec: _WorkerSpec):
    from ...sampling import build_worker_sampler
    replica = _ShardedReplica(store, spec)
    replica.sampler = build_worker_sampler(store, spec.index)
    return replica, _train_shard_targets


def _worker_main(conn, manifest, spec: _WorkerSpec) -> None:
    """One shard replica (module-level: picklable under ``spawn``)."""
    _run_worker(conn, manifest, spec, _setup_sharded)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

@dataclass
class ShardedReport(ProcessSamplingReport):
    """A :class:`ProcessSamplingReport` plus the partition evidence and
    the interconnect accounting the sharded plane owes its tier.

    ``shard_parts`` is the partition map the run trained under — the
    conformance kit's cross-node assertion keys off it: every target a
    worker echoed must be owned by that worker's shard.
    ``shard_io`` holds one record per (iteration, worker) minibatch:
    ``{iteration, worker, local_rows, remote_rows, cache_hits,
    local_bytes, remote_bytes}``. The aggregate properties below read
    the same totals off ``kernel_stats`` (the workers' counter deltas),
    so per-minibatch records and per-run totals are independently
    sourced and cross-checkable.
    """

    shard_parts: np.ndarray | None = None
    shard_io: list[dict] = field(default_factory=list)

    @property
    def local_gather_bytes(self) -> int:
        return int(self.kernel_stats.get("shard_local_bytes", 0))

    @property
    def remote_gather_bytes(self) -> int:
        return int(self.kernel_stats.get("shard_remote_bytes", 0))

    @property
    def remote_cache_hit_rate(self) -> float:
        hits = self.kernel_stats.get("remote_cache_hits", 0)
        misses = self.kernel_stats.get("remote_cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0


# ---------------------------------------------------------------------------
# Parent-side backend
# ---------------------------------------------------------------------------

class ShardedBackend(ProcessSamplingBackend):
    """Worker-replica sessions over per-shard slices of the store.

    Parameters
    ----------
    session:
        The shared runtime core; one worker process *and one graph
        shard* per trainer replica.
    timeout_s / mp_context:
        As on every process plane.
    partitioner:
        ``"hash"`` (random assignment — P3-style, worst-case locality)
        or ``"bfs"`` (locality-aware region growing, the METIS
        stand-in; the default).
    partition_seed:
        Seed of the partitioner's RNG — partition maps are
        deterministic per (graph, partitioner, seed).
    remote_cache_rows:
        Per-worker :class:`~repro.runtime.remote_cache.RemoteFeatureCache`
        capacity in feature rows; ``0`` (default) disables the cache —
        every remote row is billed at full interconnect cost.
    """

    name = "sharded"
    conformance_tier = "statistical"
    options_cls = ShardedOptions
    overlaps_transfer = False

    def __init__(self, session, timeout_s: float = 120.0,
                 mp_context: str | None = None,
                 partitioner: str = "bfs",
                 partition_seed: int = 0,
                 remote_cache_rows: int = 0) -> None:
        super().__init__(session, timeout_s=timeout_s,
                         mp_context=mp_context)
        if partitioner not in PARTITIONERS:
            raise ConfigError(
                f"unknown partitioner {partitioner!r}; expected one of "
                f"{sorted(PARTITIONERS)}")
        if remote_cache_rows < 0:
            raise ConfigError("remote_cache_rows must be non-negative")
        self.partitioner = partitioner
        self.partition_seed = int(partition_seed)
        self.remote_cache_rows = int(remote_cache_rows)
        parts = PARTITIONERS[partitioner](
            session.dataset.graph, session.num_trainers,
            seed=self.partition_seed)
        self.shard_map = ShardMap.from_partition(
            parts, num_shards=session.num_trainers)
        self.shard_plan = ShardPlan(session.plan, parts,
                                    session.num_trainers)

    # -- subclass hooks ------------------------------------------------
    def _worker_entry(self):
        return _worker_main

    def _create_store(self):
        from ..shm import SharedFeatureStore, SharedShardSpec
        return SharedFeatureStore.create(
            self.session.dataset,
            sampler_spec=self.session.shared_sampler_spec(),
            shard_map=self.shard_map,
            shard_spec=SharedShardSpec(
                num_shards=self.shard_map.num_shards,
                partitioner=self.partitioner,
                partition_seed=self.partition_seed,
                remote_cache_rows=self.remote_cache_rows))

    def _make_report(self, iterations: int, n: int) -> ShardedReport:
        return ShardedReport(iterations=iterations, num_workers=n,
                             worker_targets=[[] for _ in range(n)],
                             shard_parts=self.shard_map.parts)

    def _drive(self, iterations: int, conns, report, rows) -> None:
        """Drive the loop off the partition-mapped dealer instead of
        the quota-cursor plan — everything downstream (dispatch,
        collect, the shared sync tail, DRM adjudication) is inherited
        unchanged."""
        for it, planned in self.shard_plan.iterate(iterations):
            self._run_iteration(it, planned, conns, report, rows)

    def _collect(self, it: int, busy, conns, report, stats_by_idx,
                 losses, accs) -> None:
        """The worker-sampling collect plus the per-minibatch shard-io
        record every result now carries."""
        from ..protocol import Signal

        s = self.session
        self._iter_stage_s: dict[int, dict] = {}
        for idx in busy:
            msg = self._recv(conns, idx)
            tag, rit, loss, acc, st, echoed, grads, stage_s, io = msg
            if tag != "result" or rit != it:
                raise WorkerError(
                    f"worker {idx} answered {tag!r} for iteration "
                    f"{rit}, expected result for {it}")
            s.trainers[idx].model.set_flat_grads(grads)
            stats_by_idx[idx] = st
            self._iter_stage_s[idx] = stage_s
            report.total_edges += st.total_edges
            report.worker_targets[idx].append(echoed)
            report.shard_io.append(
                {"iteration": it, "worker": idx, **io})
            losses.append(loss)
            accs.append(acc)
            report.protocol_log.record(it, Signal.DONE,
                                       s.trainers[idx].name)
