"""Multi-process execution backend (GIL-free trainer replicas).

The threaded backend realizes the paper's Listing-1 protocol but every
NumPy forward/backward still serializes behind the GIL, so trainer
concurrency never turns into wall-clock speedup. This backend runs each
GNN Trainer in a :mod:`multiprocessing` worker process instead —
the DistDGL-style recipe: process-level parallel trainers over a shared
feature store — while keeping results loss-for-loss **bit-identical** to
the virtual-time plane.

Division of labor per iteration:

* the **parent** owns the session and drives the exact virtual-plane
  order: it slices per-trainer targets off the shared
  :class:`~repro.runtime.core.BatchPlan`, samples every mini-batch
  through ``session.sampler`` (all stochastic draws — epoch
  permutations, neighbor sampling — stay in the parent's single RNG
  stream, which is what makes the trajectory reproducible across every
  backend), ships each worker its batch as compact pickled index arrays,
  runs the :class:`~repro.runtime.synchronizer.GradientSynchronizer`
  all-reduce over the returned gradients, records modelled stage times,
  and applies the DRM adjustment;
* each **worker** holds one model replica, synced once at startup to
  the parent's current parameters (so a session that already trained —
  under any backend — resumes bit-identically), gathers its batch's
  features zero-copy from the
  :class:`~repro.runtime.shm.SharedFeatureStore`,
  applies the transfer-quantization policy for accelerator replicas,
  runs forward/backward, and returns ``(loss, accuracy, gradients)``;
  after the all-reduce it receives the averaged gradient and steps its
  local SGD — the same in-place update the parent applies to its mirror
  replicas, keeping all copies bit-equal without pickling parameters
  during steady state (parameters cross the pipe exactly twice per
  worker per run: the startup sync down, the parity audit up).

Only mini-batches (int64 index arrays) and gradients (one flat float64
vector each way) cross process boundaries; features never do.

``tests/integration/backend_conformance.py`` holds this backend to the
full parity matrix against the virtual reference, including hybrid +
DRM + int8 transfer; the shared-memory segment is torn down in a
``finally`` so no segment survives a run (clean or failed).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ...errors import ProtocolError, StageTimeoutError, WorkerError
from ...perfmodel.model import StageTimes, WorkloadSplit
from ...sim.trace import Timeline
from ..protocol import ProtocolLog, Signal
from ..resctl import map_worker_totals
from .base import ExecutionBackend
from .options import ProcessOptions


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to rebuild its trainer (picklable)."""

    index: int
    name: str
    kind: str                  # "cpu" | "accel"
    model_name: str
    dims: tuple[int, ...]
    seed: int
    learning_rate: float
    transfer_precision: str


@dataclass
class ProcessReport:
    """Outcome of a multi-process run.

    Field-compatible with the threaded plane's ``ExecutorReport`` (the
    conformance kit reads both generically). ``wall_time_s`` is real
    elapsed *training* time — clocked from all workers reporting ready
    to the last synchronized iteration, so it excludes process spawn
    and the shared-memory copy (reported separately as
    ``startup_time_s``), the final parity audit, and teardown;
    ``virtual_time_s`` is the modelled makespan when the session
    carries a timing plane. ``kernel_stats`` sums every worker's
    kernel-traffic counters (:mod:`repro.kernels.stats` — bytes
    gathered, quantized payload bytes, buffer-pool hits/misses),
    collected over the pipes after the training clock stops.
    """

    iterations: int
    num_workers: int = 0
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    startup_time_s: float = 0.0
    protocol_log: ProtocolLog = field(default_factory=ProtocolLog)
    replicas_consistent: bool = False
    stage_history: list[StageTimes] = field(default_factory=list)
    split_history: list[WorkloadSplit] = field(default_factory=list)
    total_edges: float = 0.0
    virtual_time_s: float = 0.0
    timeline: Timeline = field(default_factory=Timeline)
    kernel_stats: dict[str, int] = field(default_factory=dict)
    #: Realized worker-side stage accounting summed over the pool,
    #: ``{canonical_stage: (count, total_s)}`` — the ``wstats``
    #: round trip (sibling of ``kernel_stats``), attributed onto
    #: the model's stage columns by each worker's trainer kind.
    stage_seconds: dict[str, tuple[int, float]] = field(
        default_factory=dict)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _rebuild_minibatch(node_ids, blocks_raw, feature_dim):
    """Re-materialize a MiniBatch from its wire form (validates)."""
    from ...sampling.base import LayerBlock, MiniBatch
    blocks = tuple(LayerBlock(src_local=src, dst_local=dst,
                              num_src=int(ns), num_dst=int(nd))
                   for src, dst, ns, nd in blocks_raw)
    return MiniBatch(node_ids=tuple(node_ids), blocks=blocks,
                     feature_dim=int(feature_dim))


class _WorkerReplica:
    """One worker's in-process state: the store mapping plus its model
    replica, trainer node and optimizer (built inside the worker, never
    pickled)."""

    def __init__(self, store, spec: _WorkerSpec) -> None:
        from ...kernels import BufferPool
        from ...nn.models import build_model
        from ...nn.optim import SGD
        from ..trainer import TrainerNode

        self.store = store
        self.features = store.features
        self.labels = store.labels
        self.degrees = store.degrees     # private copy, outlives views
        self.model = build_model(spec.model_name, spec.dims, spec.seed)
        self.node = TrainerNode(spec.name, spec.kind, self.model, None,
                                spec.dims, spec.model_name)
        self.opt = SGD(self.model, lr=spec.learning_rate)
        self.sampler = None    # set by the worker-sampling plane
        # Lock-step workers train each batch to completion before
        # gathering the next, so the x0 buffer can be pooled: after
        # the first few iterations the gather/quantize hot path
        # allocates nothing. The fused overlapped plane keeps batches
        # in flight on stage threads and must NOT use this pool — its
        # serve loop bypasses `train` (see docs/kernels.md).
        self.pool = BufferPool()
        # Realized stage accounting: cumulative (count, total seconds)
        # per raw stage name for the ``wstats`` pipe reply, plus the
        # most recent per-batch durations (the worker-sampling plane
        # echoes those with each result so the parent can fold a
        # per-iteration realized StageTimes).
        self.stage_totals: dict[str, list] = {}
        self.last_stage_s: dict[str, float] = {}

    def note_stage(self, stage: str, seconds: float) -> None:
        """Accumulate one realized stage duration (wstats + snapshot)."""
        entry = self.stage_totals.setdefault(stage, [0, 0.0])
        entry[0] += 1
        entry[1] += seconds
        self.last_stage_s[stage] = seconds

    def wstats(self) -> dict[str, tuple[int, float]]:
        """The cumulative ``{raw_stage: (count, total_s)}`` payload."""
        return {stage: (int(c), float(t))
                for stage, (c, t) in self.stage_totals.items()}

    def train(self, spec: _WorkerSpec, mb):
        """The session's exact feature path (gather, float64 widen,
        accel quantization — fused on the fast kernel tier) against the
        shared store, then one forward/backward."""
        from ..core import gather_batch_features
        t0 = time.perf_counter()
        x0 = gather_batch_features(self.features, mb, spec.kind,
                                   spec.transfer_precision,
                                   pool=self.pool)
        self.note_stage("load", time.perf_counter() - t0)
        t0 = time.perf_counter()
        rep = self.node.train_minibatch(mb, x0,
                                        self.labels[mb.targets],
                                        self.degrees)
        self.note_stage("train", time.perf_counter() - t0)
        return rep

    def release_views(self) -> None:
        """Drop shm-backed views before unmapping, else ``close()``
        raises BufferError on the exported buffers. Clears the
        worker-side sampler too (its CSR graph views the segment)."""
        self.features = self.labels = None
        self.sampler = None


def _serve(conn, replica: _WorkerReplica, spec: _WorkerSpec,
           handle_train) -> None:
    """The worker message loop both process planes share.

    ``handle_train(replica, spec, msg)`` answers one ``"train"``
    message with the reply tuple; everything else — the ready
    handshake, the parameter init/audit, the synchronized ``apply`` +
    local SGD step that keeps the replica bit-equal to the parent
    mirror — is plane-independent. Runs until ``("stop",)`` or EOF.

    ``kstats`` replies are deltas from a baseline taken here: under
    the fork start method the worker's :data:`~repro.kernels.COUNTERS`
    inherits whatever the *parent* accumulated before spawning, which
    must not be re-reported as worker traffic.
    """
    from ...kernels import COUNTERS
    counters_baseline = COUNTERS.snapshot()
    conn.send(("ready", spec.index))
    while True:
        msg = conn.recv()
        tag = msg[0]
        if tag == "train":
            conn.send(handle_train(replica, spec, msg))
        elif tag == "apply":
            _, _, avg = msg
            replica.model.set_flat_grads(avg)
            replica.opt.step()
        elif tag == "init":
            replica.model.set_flat_params(msg[1])
        elif tag == "params":
            conn.send(("params", replica.model.get_flat_params()))
        elif tag == "kstats":
            conn.send(("kstats", COUNTERS.delta(counters_baseline)))
        elif tag == "wstats":
            conn.send(("wstats", replica.wstats()))
        elif tag == "stop":
            return
        else:
            raise ProtocolError(f"unknown message tag {tag!r}")


def _run_worker(conn, manifest, spec: _WorkerSpec, setup,
                serve=None) -> None:
    """Worker-process scaffolding: attach the store, delegate to
    ``setup(store, spec) -> (replica, handle_train)``, serve, and tear
    down (close-never-unlink) no matter how the loop ends.

    ``serve`` is the message loop (default :func:`_serve`, the shared
    lock-step request/response loop); the fused process × pipeline
    plane swaps in its overlapped loop — receive-routing plus stage
    threads — while inheriting the attach/teardown scaffolding here.
    """
    store = None
    replica = None
    if serve is None:
        serve = _serve
    try:
        from ..shm import SharedFeatureStore

        store = SharedFeatureStore.attach(manifest)
        replica, handle_train = setup(store, spec)
        serve(conn, replica, spec, handle_train)
    except EOFError:
        pass                              # parent went away: just exit
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        if store is not None:
            if replica is not None:
                replica.release_views()
            try:
                store.close()             # never unlink: parent owns it
            except Exception:
                pass
        conn.close()


def _train_wire_batch(replica: _WorkerReplica, spec: _WorkerSpec, msg):
    """Handle a parent-sampled batch shipped in wire form."""
    _, it, node_ids, blocks_raw, feature_dim = msg
    mb = _rebuild_minibatch(node_ids, blocks_raw, feature_dim)
    rep = replica.train(spec, mb)
    return ("result", it, rep.loss, rep.accuracy, rep.batch_targets,
            replica.model.get_flat_grads())


def _setup_parent_sampling(store, spec: _WorkerSpec):
    return _WorkerReplica(store, spec), _train_wire_batch


def _worker_main(conn, manifest, spec: _WorkerSpec) -> None:
    """One trainer replica: map the store, train on request, mirror the
    synchronized update. Runs until ``("stop",)`` or pipe EOF."""
    _run_worker(conn, manifest, spec, _setup_parent_sampling)


# ---------------------------------------------------------------------------
# Parent-side backend
# ---------------------------------------------------------------------------

class ProcessPoolBackend(ExecutionBackend):
    """Run synchronous-SGD training on worker *processes*.

    Parameters
    ----------
    session:
        The shared runtime core; one worker process is spawned per
        trainer replica (hybrid platform sessions: CPU + one per
        accelerator).
    timeout_s:
        Watchdog on every cross-process wait — a dead or wedged worker
        fails the run fast instead of hanging the suite.
    mp_context:
        ``multiprocessing`` start method (``"fork"`` where available —
        workers inherit the imported library for near-instant startup —
        else ``"spawn"``). Pass explicitly to override.
    """

    name = "process"
    options_cls = ProcessOptions

    def __init__(self, session, timeout_s: float = 120.0,
                 mp_context: str | None = None) -> None:
        super().__init__(session)
        if timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive")
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.timeout_s = timeout_s
        self.mp_context = mp_context

    # ------------------------------------------------------------------
    def run_epoch(self, max_iterations: int | None = None
                  ) -> ProcessReport:
        """Execute one epoch (or ``max_iterations``, whichever is less)."""
        iters = self.session.iterations_per_epoch()
        if max_iterations is not None:
            iters = min(iters, max_iterations)
        return self.run(iters)

    def run(self, iterations: int) -> ProcessReport:
        """Execute ``iterations`` synchronized iterations.

        Workers and the shared-memory store live exactly as long as this
        call: both are torn down in a ``finally`` (terminate + unlink),
        so neither processes nor segments can leak past a run.
        """
        if iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        s = self.session
        n = s.num_trainers
        report = self._make_report(iterations, n)
        rows: list[list[float]] = []

        setup_start = time.perf_counter()
        # Resolve the context before creating the segment: an invalid
        # start method must not leak a dataset-sized /dev/shm block.
        ctx = mp.get_context(self.mp_context)
        store = self._create_store()
        worker_entry = self._worker_entry()
        conns = []
        procs = []
        try:
            for idx, trainer in enumerate(s.trainers):
                spec = _WorkerSpec(
                    index=idx, name=trainer.name, kind=trainer.kind,
                    model_name=trainer.model_name, dims=trainer.dims,
                    seed=s.train_cfg.seed,
                    learning_rate=s.train_cfg.learning_rate,
                    transfer_precision=s.sys_cfg.transfer_precision)
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_entry,
                    args=(child_conn, store.manifest, spec),
                    name=f"repro-{trainer.name}", daemon=True)
                proc.start()
                child_conn.close()        # parent keeps its end only
                conns.append(parent_conn)
                procs.append(proc)

            # Wait for every worker to finish mapping the store and
            # building its replica, then sync each to the parent's
            # *current* parameters — a session that already trained
            # (under any backend) resumes bit-identically instead of
            # silently restarting workers from the init seed. Only then
            # start the training clock: wall_time_s measures the
            # synchronized loop, not spawn or the one-time broadcast.
            for idx in range(n):
                tag, widx = self._recv(conns, idx)
                if tag != "ready" or widx != idx:
                    raise WorkerError(
                        f"worker {idx} sent {tag!r}/{widx} instead of "
                        "its ready handshake")
                self._send(conns, idx,
                           ("init",
                            s.trainers[idx].model.get_flat_params()))
            report.startup_time_s = time.perf_counter() - setup_start
            start = time.perf_counter()

            self._drive(iterations, conns, report, rows)
            report.wall_time_s = time.perf_counter() - start

            self._finalize(conns, report)
            report.replicas_consistent = self._check_parity(conns)
        finally:
            self._shutdown(conns, procs, store)
        if s.has_timing and rows:
            timeline = s.make_pipeline().run(rows)
            report.timeline = timeline
            report.virtual_time_s = timeline.makespan
        return report

    # ------------------------------------------------------------------
    # Subclass hooks (the worker-sampling backend swaps exactly these
    # three, inheriting spawn / handshake / shutdown / parity intact).
    # ------------------------------------------------------------------
    def _worker_entry(self):
        """Module-level worker entry point (picklable under spawn)."""
        return _worker_main

    def _create_store(self):
        """Create the shared-memory store the workers will attach."""
        from ..shm import SharedFeatureStore
        return SharedFeatureStore.create(self.session.dataset)

    def _make_report(self, iterations: int, n: int) -> ProcessReport:
        return ProcessReport(iterations=iterations, num_workers=n)

    # ------------------------------------------------------------------
    def _drive(self, iterations: int, conns, report, rows) -> None:
        """Drive the synchronized training loop (between handshake and
        parity audit). The default is the lock-step loop every
        request/response process plane shares; the fused
        process × pipeline plane overrides this with its bounded
        look-ahead dealing loop while inheriting spawn / handshake /
        parity audit / teardown from :meth:`run`."""
        for it, planned in self.session.work_source.iterate(iterations):
            self._run_iteration(it, planned, conns, report, rows)

    def _finalize(self, conns, report) -> None:
        """Post-training hook, run *after* ``wall_time_s`` is stamped
        and before the parity audit — accounting round trips here
        (the fused plane drains worker pipelines and collects their
        stage stats) never skew the measured training time that the
        wall-clock benches compare across backends.

        The base hook collects each worker's kernel-traffic counters
        (gather/quantize bytes, buffer-pool hits) and sums them into
        ``report.kernel_stats``; subclasses that override this chain
        ``super()._finalize(conns, report)`` after their own round
        trips."""
        from ...kernels import merge_counts
        for idx in range(len(conns)):
            self._send(conns, idx, ("kstats",))
        for idx in range(len(conns)):
            tag, counts = self._recv(conns, idx)
            if tag != "kstats":
                raise ProtocolError(
                    f"worker {idx} sent {tag!r} instead of its kernel "
                    "counter snapshot")
            merge_counts(report.kernel_stats, counts)
        # Realized stage accounting, same round-trip discipline: ask
        # everyone, then drain in order. Raw worker stage names map
        # onto the model's canonical columns by trainer kind before
        # summing, so the report (and the monitor) speak StageTimes.
        s = self.session
        for idx in range(len(conns)):
            self._send(conns, idx, ("wstats",))
        for idx in range(len(conns)):
            tag, totals = self._recv(conns, idx)
            if tag != "wstats":
                raise ProtocolError(
                    f"worker {idx} sent {tag!r} instead of its stage "
                    "wall-time accounting")
            mapped = map_worker_totals(s.trainers[idx].kind, totals)
            for stage, (count, total_s) in mapped.items():
                c, t = report.stage_seconds.get(stage, (0, 0.0))
                report.stage_seconds[stage] = (c + count, t + total_s)
            self.monitor.merge_totals(mapped)

    def _run_iteration(self, it: int, planned, conns, report,
                       rows) -> None:
        """One Fig.-5 iteration: scatter work (:meth:`_dispatch`),
        gather gradients (:meth:`_collect`), then the shared tail
        (:meth:`_sync_tail`) in exactly the virtual-plane order.
        Subclasses override only the dispatch/collect halves; the sync
        tail (and therefore the trajectory semantics) exists once."""
        stats_by_idx: dict[int, object] = {}
        busy = self._dispatch(it, planned, conns, report, stats_by_idx)

        losses: list[float] = []
        accs: list[float] = []
        self._collect(it, busy, conns, report, stats_by_idx, losses,
                      accs)
        self._sync_tail(it, planned, conns, report, rows, stats_by_idx,
                        losses, accs)

    def _sync_tail(self, it: int, planned, conns, report, rows,
                   stats_by_idx, losses, accs):
        """The shared iteration tail: all-reduce, broadcast the
        averaged update, optimizer steps, timing/DRM bookkeeping — in
        exactly the virtual-plane order. Returns the modelled
        :class:`StageTimes` when the session carries a timing plane
        (the fused plane feeds them to its adaptive look-ahead), else
        ``None``. This exists once, so the trajectory semantics can
        never drift between process planes."""
        s = self.session
        sync_start = time.perf_counter()
        avg = s.synchronizer.all_reduce(list(planned.batch_sizes), it)
        report.protocol_log.record(it, Signal.SYNC, "synchronizer")
        for idx in range(len(conns)):
            self._send(conns, idx, ("apply", it, avg))
        for opt in s.optimizers:
            opt.step()
        sync_s = time.perf_counter() - sync_start
        report.protocol_log.record(it, Signal.ITER_START, "runtime")

        report.losses.append(float(np.mean(losses)))
        report.accuracies.append(float(np.mean(accs)))
        realized = self._realized_stage_times(sync_s)
        if realized:
            self.monitor.observe_times(realized)
        if not s.has_timing:
            return None
        # Realized batch stats in trainer order (idle trainers hold
        # a None placeholder), then one timing/DRM step — the DRM
        # engine is adjudicated here, in the parent, on every
        # process plane.
        stats_cpu = None
        stats_accel: list = []
        for idx, trainer in enumerate(s.trainers):
            st = stats_by_idx.get(idx)
            if trainer.kind == "cpu":
                stats_cpu = st
            else:
                stats_accel.append(st)
        times, row, split = s.timing_step(
            stats_cpu, stats_accel, it,
            estimator=self._timing_estimator(),
            realized=realized,
            calibrate=self._timing_calibrate(),
            overlapped=self.overlaps_transfer)
        rows.append(row)
        report.stage_history.append(times)
        report.split_history.append(split)
        return times

    # ------------------------------------------------------------------
    # resctl hooks — the lock-step defaults keep this plane's timing
    # step byte-equal to PR7 (no estimator, no realized feed, no
    # calibration); the worker-sampling planes override the first,
    # the fused overlapped plane all three.
    # ------------------------------------------------------------------
    def _realized_stage_times(self, sync_s: float):
        """Per-iteration realized stage map (canonical keys) for the
        iteration just synchronized, or ``None`` when this plane ships
        no per-batch timings (the parent-sampling plane only learns
        worker stage times from the end-of-run ``wstats`` totals)."""
        return None

    def _timing_estimator(self):
        """The :class:`OnlineEstimator` fed by :meth:`_sync_tail`, or
        ``None`` on planes that never calibrate."""
        return None

    def _timing_calibrate(self) -> bool:
        """Whether the timing step should *apply* the estimator's
        corrections (``depth_source == "realized"`` on the fused
        plane) rather than just observe."""
        return False

    def _dispatch(self, it: int, planned, conns, report,
                  stats_by_idx) -> list[int]:
        """Scatter one iteration's work: sample each busy trainer's
        batch in the parent (the single RNG stream that makes this
        plane bit-identical to the virtual reference) and ship it in
        wire form. Returns the busy worker indices."""
        s = self.session
        busy: list[int] = []
        sample_s = 0.0
        for idx, trainer in enumerate(s.trainers):
            targets = planned.assignments[idx]
            if targets is None:
                # Idle replica: zero gradients, weight zero in the
                # all-reduce (parent mirrors; worker just applies the
                # averaged update when it arrives).
                trainer.model.zero_grad()
                continue
            t0 = time.perf_counter()
            mb = s.sampler.sample(targets)
            sample_s += time.perf_counter() - t0
            st = mb.stats()
            report.total_edges += st.total_edges
            stats_by_idx[idx] = st
            self._send(conns, idx, (
                "train", it, mb.node_ids,
                [(b.src_local, b.dst_local, b.num_src, b.num_dst)
                 for b in mb.blocks],
                mb.feature_dim))
            busy.append(idx)
        if busy:
            # Sampling is parent-side CPU work on this plane — feed the
            # monitor directly (observability only; never the timing
            # step, which stays bit-equal to the virtual reference).
            self.monitor.observe("sample_cpu", sample_s)
        return busy

    def _collect(self, it: int, busy, conns, report, stats_by_idx,
                 losses, accs) -> None:
        """Gather one iteration's results into the parent mirrors."""
        s = self.session
        for idx in busy:
            msg = self._recv(conns, idx)
            tag, rit, loss, acc, ntargets, grads = msg
            if tag != "result" or rit != it:
                raise WorkerError(
                    f"worker {idx} answered {tag!r} for iteration "
                    f"{rit}, expected result for {it}")
            s.trainers[idx].model.set_flat_grads(grads)
            losses.append(loss)
            accs.append(acc)
            report.protocol_log.record(it, Signal.DONE,
                                       s.trainers[idx].name)

    # ------------------------------------------------------------------
    def _send(self, conns, idx: int, msg) -> None:
        """Send one message to worker ``idx``; a dead worker surfaces
        as the backend's documented failure type, like ``_recv``."""
        try:
            conns[idx].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerError(
                f"worker {idx} died before {msg[0]!r} could be "
                f"delivered: {exc!r}") from exc

    def _recv(self, conns, idx: int):
        """Receive one message from worker ``idx`` under the watchdog.

        Failures surface as the typed infra errors (`StageTimeoutError`
        for a wedged worker, `WorkerError` for a dead or crashed one),
        so CI logs can tell them apart from conformance failures.
        """
        conn = conns[idx]
        try:
            if not conn.poll(self.timeout_s):
                raise StageTimeoutError(
                    f"worker {idx} recv timeout after {self.timeout_s}s")
            msg = conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerError(
                f"worker {idx} died mid-iteration: {exc!r}") from exc
        if msg[0] == "error":
            raise WorkerError(
                f"worker {idx} failed:\n{msg[1]}")
        return msg

    def _check_parity(self, conns) -> bool:
        """Worker replicas must match the parent mirrors bit for bit."""
        s = self.session
        if not s.synchronizer.replicas_consistent():
            return False
        for idx in range(len(conns)):
            self._send(conns, idx, ("params",))
            tag, flat = self._recv(conns, idx)
            if tag != "params":
                raise WorkerError(
                    f"worker {idx} answered {tag!r} to a params request")
            if not np.array_equal(flat,
                                  s.trainers[idx].model.get_flat_params()):
                return False
        return True

    def _shutdown(self, conns, procs, store) -> None:
        """Stop workers and destroy the shared segment. Never raises."""
        for conn in conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass
        try:
            store.close()
        finally:
            store.unlink()
