"""Virtual-time execution backend (the paper's modelled-hardware plane).

Resolves the training protocol sequentially in one thread while
accounting *virtual* (modelled-hardware) time for every pipeline stage:

* :meth:`VirtualTimeBackend.run_epoch` — *functional* training over the
  shared :class:`~repro.runtime.core.BatchPlan`: real sampling, real
  forward/backward, real gradient all-reduce, with stage times derived
  from the realized batch statistics.
* :meth:`VirtualTimeBackend.simulate_epoch` — *timing-only* simulation,
  optionally at the full paper dataset scale (projected batch statistics
  with measured per-batch jitter). This is what the figure benches
  sweep; it includes the effects the analytic model omits (kernel-launch
  overheads, pipeline fill/flush, per-batch workload variation, DRM
  transients) — the paper's predicted-vs-actual gap (Fig. 8) arises
  here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import ConfigError
from ...kernels import BufferPool, scoped_counters
from ...perfmodel.model import StageTimes, WorkloadSplit
from ...sampling.base import MiniBatchStats
from ...sim.trace import Timeline
from .base import ExecutionBackend


@dataclass
class EpochReport:
    """Everything one epoch produced.

    ``epoch_time_s`` is *virtual* (modelled-hardware) time; functional
    quality metrics are populated only by functional training.
    ``kernel_stats`` (functional epochs only) is the epoch's delta of
    the backend's session-scoped kernel-traffic counters
    (``backend.counters``, fed via
    :func:`repro.kernels.scoped_counters`).
    """

    mode: str                                  # "functional" | "simulated"
    iterations: int
    epoch_time_s: float
    timeline: Timeline
    stage_history: list[StageTimes] = field(default_factory=list)
    split_history: list[WorkloadSplit] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    total_edges: float = 0.0
    kernel_stats: dict[str, int] = field(default_factory=dict)

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses)) if self.losses else float("nan")

    @property
    def throughput_mteps(self) -> float:
        """Eq. 5 over the whole epoch."""
        if self.epoch_time_s <= 0:
            return 0.0
        return self.total_edges / self.epoch_time_s / 1e6

    def bottleneck_stage(self) -> str | None:
        """Dominant pipeline stage over the epoch."""
        return self.timeline.bottleneck_stage()


class VirtualTimeBackend(ExecutionBackend):
    """Sequential execution with virtual-time accounting."""

    name = "virtual"

    # ------------------------------------------------------------------
    # Functional training
    # ------------------------------------------------------------------
    def run_epoch(self, max_iterations: int | None = None) -> EpochReport:
        """One epoch of real training with virtual-time accounting.

        Every trainer with a non-zero quota samples a real batch, loads
        real features, computes real gradients; the synchronizer averages
        them (batch-size weighted) and every optimizer steps. Stage times
        for the same iteration come from the realized batch statistics.
        """
        # Route this (single-threaded) epoch's kernel traffic into the
        # session-scoped handle so the report counts only this
        # backend's dispatches even under concurrent co-tenants.
        counters_before = self.counters.snapshot()
        with scoped_counters(self.counters):
            report = self._functional_epoch(max_iterations)
        report.kernel_stats = self.counters.delta(counters_before)
        return report

    def _functional_epoch(self,
                          max_iterations: int | None) -> EpochReport:
        s = self.session
        rows: list[list[float]] = []
        report = EpochReport(mode="functional", iterations=0,
                             epoch_time_s=0.0, timeline=Timeline())

        # Sequential resolution trains each batch to completion before
        # loading the next, so feature loads can reuse one pooled
        # buffer set: the gather/quantize hot path stops allocating
        # after the largest batch has been seen.
        pool = BufferPool()
        iteration = 0
        for planned in s.plan.start_epoch():
            stats_cpu: MiniBatchStats | None = None
            stats_accel: list[MiniBatchStats | None] = []
            batch_sizes: list[int] = []
            losses_iter: list[float] = []
            accs_iter: list[float] = []
            edges_iter = 0.0

            for idx, trainer in enumerate(s.trainers):
                targets = planned.assignments[idx]
                if targets is None:
                    batch_sizes.append(0)
                    if trainer.kind == "accel":
                        stats_accel.append(None)
                    continue
                mb = s.sampler.sample(targets)
                st = mb.stats()
                edges_iter += st.total_edges
                if trainer.kind == "cpu":
                    stats_cpu = st
                else:
                    stats_accel.append(st)
                x0 = s.load_features(mb, trainer.kind, pool=pool)
                rep = trainer.train_minibatch(
                    mb, x0, s.labels_for(mb), s.degrees)
                s.synchronizer.signal_done(trainer.name, iteration)
                batch_sizes.append(int(targets.size))
                losses_iter.append(rep.loss)
                accs_iter.append(rep.accuracy)

            # Trainers that got no work this iteration still participate
            # in the all-reduce with zero gradients and weight zero.
            if not any(b > 0 for b in batch_sizes):
                break
            for idx, b in enumerate(batch_sizes):
                if b == 0:
                    s.trainers[idx].model.zero_grad()
                    s.synchronizer.signal_done(
                        s.trainers[idx].name, iteration)
            s.reduce_and_step(batch_sizes, iteration)

            report.losses.append(float(np.mean(losses_iter)))
            report.accuracies.append(float(np.mean(accs_iter)))
            report.total_edges += edges_iter
            if s.has_timing:
                times, row, split = s.timing_step(stats_cpu,
                                                  stats_accel,
                                                  iteration)
                rows.append(row)
                report.stage_history.append(times)
                report.split_history.append(split)

            iteration += 1
            if max_iterations is not None and iteration >= max_iterations:
                break

        report.iterations = iteration
        if s.has_timing:
            timeline = s.make_pipeline().run(rows)
            report.timeline = timeline
            report.epoch_time_s = timeline.makespan
        return report

    def train(self, epochs: int | None = None,
              max_iterations: int | None = None) -> list[EpochReport]:
        """Run several functional epochs."""
        n = epochs if epochs is not None else self.session.train_cfg.epochs
        return [self.run_epoch(max_iterations) for _ in range(n)]

    # ------------------------------------------------------------------
    # Timing-only simulation
    # ------------------------------------------------------------------
    def simulate_epoch(self, full_scale: bool | None = None,
                       iterations: int | None = None,
                       jitter: bool = True) -> EpochReport:
        """Simulate one epoch's timing without functional training.

        Parameters
        ----------
        full_scale:
            Use the paper-scale train-set size for the iteration count
            (defaults to the session's construction-time setting; batch
            statistics always come from the session's profile, which is
            projection-based iff the session was built full-scale).
        iterations:
            Override the iteration count (e.g. short sweeps).
        jitter:
            Apply the measured per-batch size variation so iterations
            are not identical (stragglers + DRM noise — part of the
            predicted-vs-actual gap).
        """
        s = self.session
        s._require_timing()
        if full_scale is None:
            full_scale = s.full_scale
        base = s.train_cfg.minibatch_size
        base_stats = s.profile.expected_stats(base)
        if full_scale:
            train_count = s.dataset.spec.train_count
        else:
            train_count = int(s.dataset.train_ids.size)

        report = EpochReport(mode="simulated", iterations=0,
                             epoch_time_s=0.0, timeline=Timeline())
        rows: list[list[float]] = []
        remaining = train_count
        it = 0
        while remaining > 0:
            if iterations is not None and it >= iterations:
                break
            counts = s.split_target_counts()
            total = sum(counts)
            if total <= 0:
                raise ConfigError("split trains no targets")
            take_total = min(total, remaining)
            frac = take_total / total

            stats_cpu = None
            stats_accel: list[MiniBatchStats | None] = []
            k = 0
            for trainer in s.trainers:
                want = counts[k] if k < len(counts) else 0
                k += 1
                eff = int(round(want * frac))
                # Independent per-trainer batch-size variation: the
                # iteration barrier waits for the straggler, part of
                # the predicted-vs-actual gap (paper Fig. 5 barriers).
                scale_j = 1.0
                if jitter and s.profile.rel_std > 0:
                    scale_j = float(np.exp(s.rng.normal(
                        0.0, s.profile.rel_std)))
                st = base_stats.scaled(scale_j * eff / base) \
                    if eff > 0 else None
                if trainer.kind == "cpu":
                    stats_cpu = st
                else:
                    stats_accel.append(st)
                if st is not None:
                    report.total_edges += st.total_edges
            remaining -= take_total

            times, row, split = s.timing_step(stats_cpu, stats_accel,
                                              it)
            rows.append(row)
            report.stage_history.append(times)
            report.split_history.append(split)
            it += 1

        report.iterations = it
        timeline = s.make_pipeline().run(rows)
        report.timeline = timeline
        report.epoch_time_s = timeline.makespan
        return report
