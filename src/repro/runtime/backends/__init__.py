"""Pluggable execution backends for the shared runtime core.

A backend realizes the training protocol of a
:class:`~repro.runtime.core.TrainingSession` on a concrete execution
substrate. Three ship with the library:

* ``"virtual"`` — :class:`VirtualTimeBackend`: sequential execution with
  modelled-hardware (virtual-time) accounting; the paper-figure plane.
* ``"threaded"`` — :class:`ThreadedBackend`: live Python threads with
  the paper's Listing-1 condition-variable handshakes.
* ``"process"`` — :class:`ProcessPoolBackend`: one worker *process* per
  trainer replica over a shared-memory feature store
  (:class:`~repro.runtime.shm.SharedFeatureStore`) — GIL-free NumPy
  training, DistDGL-style.

All consume the same :class:`~repro.runtime.core.BatchPlan` and session,
so every feature flag — hybrid CPU+accelerator split, DRM, two-stage
prefetch, transfer quantization, pluggable samplers — behaves identically
on each; ``tests/integration/backend_conformance.py`` holds every
registered backend (third-party ones included) to bit-identical parity
with the virtual reference. Future executors (async prefetch pipeline,
multi-node sharding) plug in through :func:`register_backend` and
inherit that suite for free.
"""

from __future__ import annotations

from ...errors import ConfigError
from .base import ExecutionBackend
from .virtual import EpochReport, VirtualTimeBackend
from .threaded import ExecutorReport, ThreadedBackend
from .process_pool import ProcessPoolBackend, ProcessReport

#: name -> backend class. Mutated only through :func:`register_backend`.
BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]
                     ) -> type[ExecutionBackend]:
    """Register an execution backend under ``cls.name``.

    Usable as a class decorator; returns ``cls`` unchanged.
    """
    if not getattr(cls, "name", ""):
        raise ConfigError(
            f"backend class needs a non-empty `name`; registered: "
            f"{sorted(BACKENDS)}")
    BACKENDS[cls.name] = cls
    return cls


def get_backend(name: str) -> type[ExecutionBackend]:
    """Look up a backend class by registry key."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown execution backend {name!r}; registered: "
            f"{sorted(BACKENDS)}") from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


register_backend(VirtualTimeBackend)
register_backend(ThreadedBackend)
register_backend(ProcessPoolBackend)

__all__ = [
    "ExecutionBackend",
    "VirtualTimeBackend",
    "ThreadedBackend",
    "ProcessPoolBackend",
    "EpochReport",
    "ExecutorReport",
    "ProcessReport",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "available_backends",
]
