"""Pluggable execution backends for the shared runtime core.

A backend realizes the training protocol of a
:class:`~repro.runtime.core.TrainingSession` on a concrete execution
substrate. Two ship with the library:

* ``"virtual"`` — :class:`VirtualTimeBackend`: sequential execution with
  modelled-hardware (virtual-time) accounting; the paper-figure plane.
* ``"threaded"`` — :class:`ThreadedBackend`: live Python threads with
  the paper's Listing-1 condition-variable handshakes.

Both consume the same :class:`~repro.runtime.core.BatchPlan` and session,
so every feature flag — hybrid CPU+accelerator split, DRM, two-stage
prefetch, transfer quantization, pluggable samplers — behaves identically
on both; ``tests/integration/test_backend_equivalence.py`` asserts
loss-for-loss parity. Future executors (process pool, async prefetch
pipeline, multi-node sharding) plug in through
:func:`register_backend`.
"""

from __future__ import annotations

from ...errors import ConfigError
from .base import ExecutionBackend
from .virtual import EpochReport, VirtualTimeBackend
from .threaded import ExecutorReport, ThreadedBackend

#: name -> backend class. Mutated only through :func:`register_backend`.
BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]
                     ) -> type[ExecutionBackend]:
    """Register an execution backend under ``cls.name``.

    Usable as a class decorator; returns ``cls`` unchanged.
    """
    if not getattr(cls, "name", ""):
        raise ConfigError("backend class needs a non-empty `name`")
    BACKENDS[cls.name] = cls
    return cls


def get_backend(name: str) -> type[ExecutionBackend]:
    """Look up a backend class by registry key."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown execution backend {name!r}; registered: "
            f"{sorted(BACKENDS)}") from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


register_backend(VirtualTimeBackend)
register_backend(ThreadedBackend)

__all__ = [
    "ExecutionBackend",
    "VirtualTimeBackend",
    "ThreadedBackend",
    "EpochReport",
    "ExecutorReport",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "available_backends",
]
