"""Pluggable execution backends for the shared runtime core.

A backend realizes the training protocol of a
:class:`~repro.runtime.core.TrainingSession` on a concrete execution
substrate. Seven ship with the library:

* ``"virtual"`` — :class:`VirtualTimeBackend`: sequential execution with
  modelled-hardware (virtual-time) accounting; the paper-figure plane.
* ``"threaded"`` — :class:`ThreadedBackend`: live Python threads with
  the paper's Listing-1 condition-variable handshakes.
* ``"process"`` — :class:`ProcessPoolBackend`: one worker *process* per
  trainer replica over a shared-memory feature store
  (:class:`~repro.runtime.shm.SharedFeatureStore`) — GIL-free NumPy
  training, DistDGL-style.
* ``"pipelined"`` — :class:`PipelinedBackend`: per-trainer
  sample → gather → transfer stage threads over backpressured
  :class:`~repro.runtime.prefetch.PrefetchBuffer` queues feeding the
  train stage, with an adaptive look-ahead driven by the performance
  model — the paper's §IV-B overlap made live.
* ``"process_sampling"`` — :class:`ProcessSamplingBackend`: worker
  processes that additionally run the **sample stage locally** over
  the shared CSR, each with an independent ``SeedSequence``-derived
  RNG stream; the parent deals only target-id shards of the plan and
  keeps adjudicating DRM — the last lock-step stage made parallel.
* ``"process_pipelined"`` — :class:`ProcessPipelinedBackend`: the
  **fusion** of the two statistical planes. The parent deals plan
  shards *ahead* through a bounded, adaptively-sized look-ahead
  window; each worker overlaps its local sample → gather → quantized
  transfer chain with train+sync on ``PrefetchBuffer``-backed stage
  threads over the shared store — process-level parallelism *and*
  per-worker stage overlap at once (paper §IV composed).
* ``"sharded"`` — :class:`ShardedBackend`: the multi-node plane. The
  graph is partitioned (``hash``/``bfs``) one shard per trainer; the
  feature store is shard-sliced, the parent deals each shard only the
  targets it owns, and every worker resolves feature rows as local
  gather vs. **remote** gather (optionally through a degree-aware
  :class:`~repro.runtime.remote_cache.RemoteFeatureCache`) with
  per-minibatch byte accounting — DistDGL's distributed layout with
  the interconnect accounted rather than physical.

All consume the same :class:`~repro.runtime.core.BatchPlan` and session,
so every feature flag — hybrid CPU+accelerator split, DRM, two-stage
prefetch, transfer quantization, pluggable samplers — behaves identically
on each; ``tests/integration/backend_conformance.py`` holds every
registered backend (third-party ones included) to the conformance tier
its :attr:`~ExecutionBackend.conformance_tier` flag declares: ``strict``
backends must match the virtual reference bit for bit, ``statistical``
backends (pipelined, process_sampling and process_pipelined — whose
overlap or per-worker RNG streams preclude bit-parity by design) must
preserve exact epoch coverage, per-worker shard disjointness, work
conservation and loss/parameter closeness. Future executors
(multi-node sharding) plug in through :func:`register_backend` and
inherit the right tier for free. The full author guide — stage hooks,
tiers, shm manifest, worker RNG streams, registration — lives in
``docs/backends.md``.
"""

from __future__ import annotations

from ...errors import ConfigError
from ...registry import Registry
from .base import ExecutionBackend
from .options import (
    BackendOptions,
    LiveOptions,
    OverlapOptions,
    ProcessOptions,
    ProcessOverlapOptions,
    ShardedOptions,
    ThreadedOptions,
    build_backend,
    resolve_options,
    validate_options_cls,
)
from .virtual import EpochReport, VirtualTimeBackend
from .threaded import ExecutorReport, ThreadedBackend
from .process_pool import ProcessPoolBackend, ProcessReport
from .process_sampling import (
    ProcessSamplingBackend,
    ProcessSamplingReport,
)
from .pipelined import (
    PipelinedBackend,
    PipelinedReport,
    StageStats,
    adaptive_depth,
)
from .process_pipelined import (
    LookaheadDealer,
    ProcessPipelinedBackend,
    ProcessPipelinedReport,
)
from .sharded import ShardedBackend, ShardedReport, ShardPlan

#: name -> backend class. A :class:`~repro.registry.Registry` (the
#: unified registry discipline), dict-compatible for legacy call sites;
#: mutated only through :func:`register_backend`.
BACKENDS: Registry = Registry("execution backend")


def register_backend(cls: type[ExecutionBackend]
                     ) -> type[ExecutionBackend]:
    """Register an execution backend under ``cls.name``.

    Usable as a class decorator; returns ``cls`` unchanged. Validates
    the class contract eagerly: a non-empty ``name`` and an
    ``options_cls`` declaration whose every field the constructor
    accepts (see :mod:`~repro.runtime.backends.options`), so knob
    drift fails at registration rather than first use.
    """
    if not getattr(cls, "name", ""):
        raise ConfigError(
            f"backend class needs a non-empty `name`; registered: "
            f"{sorted(BACKENDS)}")
    validate_options_cls(cls)
    BACKENDS.register(cls.name, cls)
    return cls


def get_backend(name: str) -> type[ExecutionBackend]:
    """Look up a backend class by registry key (unknown names raise
    :class:`~repro.errors.ConfigError` listing the registry)."""
    return BACKENDS.get(name)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return BACKENDS.available()


register_backend(VirtualTimeBackend)
register_backend(ThreadedBackend)
register_backend(ProcessPoolBackend)
register_backend(ProcessSamplingBackend)
register_backend(PipelinedBackend)
register_backend(ProcessPipelinedBackend)
register_backend(ShardedBackend)

__all__ = [
    "ExecutionBackend",
    "BackendOptions",
    "LiveOptions",
    "ThreadedOptions",
    "ProcessOptions",
    "OverlapOptions",
    "ProcessOverlapOptions",
    "ShardedOptions",
    "build_backend",
    "resolve_options",
    "VirtualTimeBackend",
    "ThreadedBackend",
    "ProcessPoolBackend",
    "ProcessSamplingBackend",
    "PipelinedBackend",
    "ProcessPipelinedBackend",
    "ShardedBackend",
    "EpochReport",
    "ExecutorReport",
    "ProcessReport",
    "ProcessSamplingReport",
    "PipelinedReport",
    "ProcessPipelinedReport",
    "ShardedReport",
    "ShardPlan",
    "LookaheadDealer",
    "StageStats",
    "adaptive_depth",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "available_backends",
]
