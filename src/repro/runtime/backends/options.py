"""Typed backend construction options (the former ad-hoc ``**kwargs``).

Backend-specific knobs — look-ahead depths, ``depth_source``, the
resctl allocator, process start methods, stage timeouts — historically
travelled as untyped keyword arguments: a misspelled knob surfaced as a
``TypeError`` deep inside ``__init__``, and nothing checked that a
backend's declared knobs matched its constructor until the first call.
This module collapses that split:

* each :class:`~repro.runtime.backends.base.ExecutionBackend` subclass
  declares its knob set as a frozen dataclass (``options_cls``), every
  field defaulting to ``None`` = "use the backend's built-in default";
* :func:`repro.runtime.backends.register_backend` validates the
  declaration **at registration time**: ``options_cls`` must be a
  frozen :class:`BackendOptions` dataclass and every field must be a
  keyword the backend's ``__init__`` actually accepts — a drifted knob
  fails when the backend registers, not when a user first passes it;
* :func:`resolve_options` turns user kwargs (or an options instance)
  into a validated options object, and an unknown knob raises a
  :class:`~repro.errors.ConfigError` **naming the backend** and
  listing its known options;
* :func:`build_backend` is the one-stop constructor the conformance
  kit and the benches use: ``build_backend(name, session, **knobs)``.

Direct construction (``PipelinedBackend(session, max_depth=4)``) keeps
working — the options layer is the validated front door, not a new
obligation.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resctl import NodeAllocator


@dataclass(frozen=True)
class BackendOptions:
    """Base options type: a backend with no construction knobs.

    Every field of a subclass must default to ``None`` ("use the
    backend's built-in default"): :meth:`to_kwargs` forwards only the
    knobs a caller actually set, so defaults live in exactly one place
    — the backend constructor.
    """

    def to_kwargs(self) -> dict:
        """The explicitly-set knobs as constructor kwargs."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if getattr(self, f.name) is not None}

    @classmethod
    def known_options(cls) -> tuple[str, ...]:
        return tuple(sorted(f.name for f in dataclasses.fields(cls)))


@dataclass(frozen=True)
class LiveOptions(BackendOptions):
    """Knobs every live (non-virtual) plane shares."""

    #: Watchdog on blocking stage handoffs / worker round trips.
    timeout_s: float | None = None


@dataclass(frozen=True)
class ThreadedOptions(LiveOptions):
    """The threaded plane's knobs."""

    #: Producer look-ahead of the Listing-1 prefetch buffer.
    prefetch_depth: int | None = None


@dataclass(frozen=True)
class ProcessOptions(LiveOptions):
    """Knobs of the lock-step process planes."""

    #: Multiprocessing start method (``"fork"``/``"spawn"``); ``None``
    #: picks fork where available.
    mp_context: str | None = None


@dataclass(frozen=True)
class ShardedOptions(ProcessOptions):
    """The sharded (partition-mapped) plane's knobs."""

    #: ``"hash"`` (random assignment) or ``"bfs"`` (locality-aware).
    partitioner: str | None = None
    #: Seed of the partitioner's RNG.
    partition_seed: int | None = None
    #: Per-worker remote-feature-cache capacity in rows (0 = off).
    remote_cache_rows: int | None = None


@dataclass(frozen=True)
class OverlapOptions(LiveOptions):
    """Knobs of the overlapped (adaptive look-ahead) planes."""

    #: Look-ahead every stage buffer starts with.
    initial_depth: int | None = None
    #: Hard cap the adaptive policy can never exceed.
    max_depth: int | None = None
    #: ``"realized"`` (calibrated) or ``"model"`` (analytic) depth
    #: steering — see :func:`~.pipelined.resolve_depth_source`.
    depth_source: str | None = None
    #: Node-level depth arbitration across concurrent sessions.
    allocator: "NodeAllocator | None" = None


@dataclass(frozen=True)
class ProcessOverlapOptions(OverlapOptions):
    """The fused process plane: overlap knobs + process knobs."""

    mp_context: str | None = None


def validate_options_cls(backend_cls) -> None:
    """Registration-time check that a backend's declared options match
    its constructor (called by ``register_backend``)."""
    opts_cls = getattr(backend_cls, "options_cls", None)
    name = getattr(backend_cls, "name", backend_cls.__name__)
    if opts_cls is None:
        raise ConfigError(
            f"backend {name!r} declares no options_cls; use "
            f"BackendOptions for a knob-free backend")
    if not (isinstance(opts_cls, type)
            and issubclass(opts_cls, BackendOptions)
            and dataclasses.is_dataclass(opts_cls)):
        raise ConfigError(
            f"backend {name!r}: options_cls must be a BackendOptions "
            f"dataclass, got {opts_cls!r}")
    params = inspect.signature(backend_cls.__init__).parameters
    accepts_var_kw = any(p.kind is inspect.Parameter.VAR_KEYWORD
                         for p in params.values())
    for field in dataclasses.fields(opts_cls):
        if field.default is not None:
            raise ConfigError(
                f"backend {name!r}: option {field.name!r} must default "
                f"to None (constructor owns the real default)")
        if field.name not in params and not accepts_var_kw:
            raise ConfigError(
                f"backend {name!r} declares option {field.name!r} its "
                f"constructor does not accept")


def resolve_options(name: str, options: BackendOptions | None = None,
                    **kwargs) -> BackendOptions:
    """A validated options object for backend ``name``.

    ``options`` (an instance of the backend's ``options_cls``) and/or
    bare kwargs; kwargs layer on top of the instance. Unknown knobs
    raise a :class:`~repro.errors.ConfigError` naming the backend and
    listing what it understands.
    """
    from . import get_backend
    cls = get_backend(name)
    opts_cls: type[BackendOptions] = cls.options_cls
    if options is None:
        options = opts_cls()
    if not isinstance(options, opts_cls):
        raise ConfigError(
            f"backend {name!r} takes {opts_cls.__name__} options, got "
            f"{type(options).__name__} (known options: "
            f"{list(opts_cls.known_options())})")
    known = set(opts_cls.known_options())
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ConfigError(
            f"unknown option(s) {unknown} for backend {name!r}; known "
            f"options: {sorted(known)}")
    if kwargs:
        options = dataclasses.replace(options, **kwargs)
    return options


def build_backend(name: str, session,
                  options: BackendOptions | None = None, **kwargs):
    """Construct backend ``name`` over ``session`` with validated,
    typed options — the single front door the conformance kit and the
    benches use (misspelled knobs fail with the backend's name and its
    option list, not a bare ``TypeError``)."""
    from . import get_backend
    cls = get_backend(name)
    opts = resolve_options(name, options, **kwargs)
    return cls(session, **opts.to_kwargs())
